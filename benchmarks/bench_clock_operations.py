"""Ablation — cost of the individual kernel operations per clock type.

DESIGN.md calls out the server-side kernel (update / sync / join) as the part
of the design whose cost determines the per-request overhead of each
mechanism.  This benchmark measures those operations in isolation, so the
end-to-end latency differences seen in E4 can be attributed: is it the bytes
on the wire, the clock computation, or both?
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import (
    CausalHistory,
    DVVSet,
    Dot,
    DottedVersionVector,
    VersionVector,
)
from repro.core.dvv import join as dvv_join, sync as dvv_sync, update as dvv_update

SIBLING_COUNT = 8
SERVERS = [f"S{i}" for i in range(3)]


def build_dvv_siblings(count=SIBLING_COUNT):
    past = VersionVector({server: 5 for server in SERVERS})
    return [
        DottedVersionVector(Dot(SERVERS[index % len(SERVERS)], 6 + index // len(SERVERS)), past)
        for index in range(count)
    ]


def build_dvvset(count=SIBLING_COUNT):
    clock = DVVSet.empty()
    for index in range(count):
        clock = DVVSet.new("value-%d" % index).update(clock, SERVERS[index % len(SERVERS)])
    return clock


def build_histories(count=SIBLING_COUNT, depth=50):
    shared = [Dot("S0", n) for n in range(1, depth)]
    return [
        CausalHistory(Dot(SERVERS[index % len(SERVERS)], depth + index), shared)
        for index in range(count)
    ]


class TestBenchmarkDVVKernel:
    def test_benchmark_dvv_update(self, benchmark):
        siblings = build_dvv_siblings()
        context = dvv_join(siblings)
        clock = benchmark(dvv_update, context, siblings, "S0")
        assert clock.dot.actor == "S0"

    def test_benchmark_dvv_sync(self, benchmark):
        left = build_dvv_siblings()
        right = build_dvv_siblings()
        merged = benchmark(dvv_sync, left, right)
        assert merged

    def test_benchmark_dvv_join(self, benchmark):
        siblings = build_dvv_siblings()
        context = benchmark(dvv_join, siblings)
        assert len(context) == len(SERVERS)


class TestBenchmarkDVVSet:
    def test_benchmark_dvvset_update(self, benchmark):
        stored = build_dvvset()
        incoming = DVVSet.new_with_context(stored.join(), "new-value")
        result = benchmark(incoming.update, stored, "S0")
        assert result.counter("S0") > stored.counter("S0")

    def test_benchmark_dvvset_sync(self, benchmark):
        left = build_dvvset()
        right = build_dvvset()
        merged = benchmark(left.sync, right)
        assert merged.entry_count() == len(SERVERS)

    def test_benchmark_dvvset_join(self, benchmark):
        stored = build_dvvset()
        context = benchmark(stored.join)
        assert len(context) == len(SERVERS)


class TestBenchmarkBaselines:
    def test_benchmark_vv_merge(self, benchmark):
        left = VersionVector({f"client-{i}": i + 1 for i in range(64)})
        right = VersionVector({f"client-{i}": 65 - i for i in range(64)})
        merged = benchmark(left.merge, right)
        assert len(merged) == 64

    def test_benchmark_causal_history_merge(self, benchmark):
        histories = build_histories()
        merged = benchmark(histories[0].merge, histories[1])
        assert len(merged) > 0

    def test_benchmark_causal_history_compare(self, benchmark):
        histories = build_histories()
        result = benchmark(histories[0].compare, histories[1])
        assert result is not None


def test_report_kernel_costs(publish):
    """One consolidated table of per-operation costs (microseconds)."""
    import time

    def cost(callable_, *args, iterations=3000):
        start = time.perf_counter()
        for _ in range(iterations):
            callable_(*args)
        return (time.perf_counter() - start) / iterations * 1e6

    dvv_siblings = build_dvv_siblings()
    dvv_context = dvv_join(dvv_siblings)
    dvvset_stored = build_dvvset()
    dvvset_incoming = DVVSet.new_with_context(dvvset_stored.join(), "v")
    histories = build_histories()
    client_vv = VersionVector({f"client-{i}": i + 1 for i in range(64)})

    rows = [
        ["dvv update", round(cost(dvv_update, dvv_context, dvv_siblings, "S0"), 2)],
        ["dvv sync", round(cost(dvv_sync, dvv_siblings, dvv_siblings), 2)],
        ["dvv join", round(cost(dvv_join, dvv_siblings), 2)],
        ["dvvset update", round(cost(dvvset_incoming.update, dvvset_stored, "S0"), 2)],
        ["dvvset sync", round(cost(dvvset_stored.sync, dvvset_stored), 2)],
        ["client VV merge (64 entries)", round(cost(client_vv.merge, client_vv), 2)],
        ["causal history merge", round(cost(histories[0].merge, histories[1]), 2)],
        ["causal history compare", round(cost(histories[0].compare, histories[1]), 2)],
    ]
    table = render_table(["operation", "cost (us)"], rows,
                         title="Ablation — kernel operation costs")
    publish("ablation_kernel_costs", table)
    assert rows


# --------------------------------------------------------------------------- #
# Smoke mode: wire-codec costs per mechanism, persisted for the dashboard
# --------------------------------------------------------------------------- #
def _representative_clocks():
    """One representative stored clock per mechanism, as shipped on the wire."""
    histories = build_histories()
    return {
        "dvv": build_dvv_siblings()[0],
        "dvvset": build_dvvset(),
        "server_vv": VersionVector({server: 40 for server in SERVERS}),
        "client_vv": VersionVector({f"client-{i}": i + 1 for i in range(64)}),
        "causal_history": histories[0].merge(histories[1]),
    }


#: Perf gate (CI): the fresh smoke numbers for this mechanism may not regress
#: more than 2x against the checked-in baseline JSON.  Sub-microsecond cached
#: timings are noisy on shared runners, so the limit never drops below the
#: floor — a genuine cache regression (back to O(entries) walks) overshoots
#: both bounds by orders of magnitude.
PERF_GATE_MECHANISM = "dvvset"
PERF_GATE_METRICS = ("encode_ns", "fingerprint_ns")
PERF_GATE_FLOOR_NS = 2000.0


def check_perf_gate(baseline: dict, fresh: dict) -> list:
    """Regressions of the gated metrics vs the checked-in baseline, if any."""
    base = (baseline or {}).get("mechanisms", {}).get(PERF_GATE_MECHANISM, {})
    new = fresh["mechanisms"][PERF_GATE_MECHANISM]
    failures = []
    for metric in PERF_GATE_METRICS:
        reference = base.get(metric)
        if reference is None:
            continue  # pre-gate baseline (or first run): nothing to compare
        limit = max(2.0 * reference, PERF_GATE_FLOOR_NS)
        if new[metric] > limit:
            failures.append(
                f"{PERF_GATE_MECHANISM} {metric} regressed: "
                f"{new[metric]:.1f}ns > limit {limit:.1f}ns "
                f"(baseline {reference:.1f}ns)")
    return failures


def run_smoke(results_path: str, iterations: int = 2000) -> int:
    """Measure encode/fingerprint/decode cost and encoded size per clock type.

    Encode and fingerprint run against one representative instance per
    mechanism, so after the first (cold) iteration every call is served from
    the canonical-bytes memo — exactly the store's steady state, where the
    same stored clocks are re-encoded per request.  ``cache_hit_ratio``
    reports encodes served from cache / total for the measured loop.
    """
    import json
    import pathlib
    import sys
    import time

    from repro.core import codec
    from repro.core.serialization import decode, encode, encoded_size, entry_count

    def cost_ns(callable_, *args):
        start = time.perf_counter()
        for _ in range(iterations):
            callable_(*args)
        return (time.perf_counter() - start) / iterations * 1e9

    baseline = None
    baseline_path = pathlib.Path(results_path)
    if baseline_path.exists():
        try:
            baseline = json.loads(baseline_path.read_text())
        except ValueError:
            baseline = None

    results = {"benchmark": "clock_operations", "iterations": iterations,
               "mechanisms": {}}
    rows = []
    for name, clock in sorted(_representative_clocks().items()):
        encoded = encode(clock)
        if type(decode(encoded)) is not type(clock):
            print(f"FAIL: {name} does not round-trip through the wire codec",
                  file=sys.stderr)
            return 1
        codec.reset_codec_stats()
        encode_ns = cost_ns(encode, clock)
        fingerprint_ns = cost_ns(codec.fingerprint, clock)
        stats = codec.codec_stats()
        measured = {
            "encode_ns": round(encode_ns, 1),
            "fingerprint_ns": round(fingerprint_ns, 1),
            "decode_ns": round(cost_ns(decode, encoded), 1),
            "encoded_bytes": encoded_size(clock),
            "entries": entry_count(clock),
            "cache_hit_ratio": round(codec.cache_hit_ratio(stats, "encode"), 4),
        }
        results["mechanisms"][name] = measured
        rows.append([name, measured["encode_ns"], measured["fingerprint_ns"],
                     measured["decode_ns"], measured["encoded_bytes"],
                     measured["entries"], measured["cache_hit_ratio"]])
    print(render_table(
        ["mechanism", "encode (ns)", "fingerprint (ns)", "decode (ns)",
         "bytes", "entries", "hit ratio"],
        rows, title="Clock wire-codec smoke"))

    failures = check_perf_gate(baseline, results)
    pathlib.Path(results_path).write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {results_path}")
    if failures:
        for failure in failures:
            print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="measure wire-codec encode/decode costs and sizes")
    parser.add_argument("--iterations", type=int, default=2000)
    parser.add_argument("--out", default="BENCH_clock_operations.json",
                        help="where --smoke writes its measured numbers as JSON")
    args = parser.parse_args()
    if not args.smoke:
        parser.error("run under pytest for the full benchmark, or pass --smoke")
    raise SystemExit(run_smoke(results_path=args.out, iterations=args.iterations))
