"""Experiment E5 — sibling counts under concurrent client writes.

Section 2's storage discussion: per-server VVs cannot represent versions
written concurrently through the same server, so they either falsely order
them (losing siblings) or would have to keep everything; DVVs keep exactly the
concurrent versions.  This benchmark runs the concurrent-writers scenario for
a sweep of writer counts and compares each mechanism's surviving sibling count
against the ground-truth number of concurrent versions.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_store, render_table
from repro.clocks import create
from repro.workloads import concurrent_writers_trace, replay_trace

WRITER_COUNTS = [2, 4, 8, 16, 32]
MECHANISMS = ["dvv", "dvvset", "client_vv", "server_vv", "causal_history"]


def surviving_siblings(mechanism_name: str, writers: int) -> dict:
    trace = concurrent_writers_trace(writers=writers)
    replay = replay_trace(trace, create(mechanism_name))
    replay.store.converge()
    replica = replay.store.replicas_for("contested")[0]
    report = check_store(replay.store)
    return {
        "siblings": len(replay.store.siblings("contested", replica)),
        "expected": len(replay.store.write_log.latest_frontier("contested")),
        "lost": report.total_lost_updates,
        "false_concurrency": report.total_false_concurrency,
    }


@pytest.fixture(scope="module")
def sibling_sweep():
    return {
        (writers, name): surviving_siblings(name, writers)
        for writers in WRITER_COUNTS
        for name in MECHANISMS
    }


def test_report_sibling_counts(sibling_sweep, publish):
    rows = []
    for writers in WRITER_COUNTS:
        for name in MECHANISMS:
            outcome = sibling_sweep[(writers, name)]
            rows.append([
                writers,
                name,
                outcome["expected"],
                outcome["siblings"],
                outcome["lost"],
                outcome["false_concurrency"],
            ])
    table = render_table(
        ["writers", "mechanism", "ground-truth siblings", "surviving siblings",
         "lost updates", "false concurrency"],
        rows,
        title="E5 — concurrent writers racing on one key (after convergence)",
    )
    publish("e5_siblings", table)

    for writers in WRITER_COUNTS:
        expected = sibling_sweep[(writers, "dvv")]["expected"]
        assert expected == writers
        # Exact mechanisms keep exactly the concurrent versions.
        for name in ("dvv", "dvvset", "client_vv", "causal_history"):
            assert sibling_sweep[(writers, name)]["siblings"] == expected, name
            assert sibling_sweep[(writers, name)]["lost"] == 0
        # Per-server VVs lose siblings as soon as more than one client races
        # through the same coordinator.
        if writers > len(("A", "B", "C")):
            assert sibling_sweep[(writers, "server_vv")]["siblings"] < expected
            assert sibling_sweep[(writers, "server_vv")]["lost"] > 0


@pytest.mark.parametrize("mechanism_name", MECHANISMS)
def test_benchmark_concurrent_writers(benchmark, mechanism_name):
    result = benchmark(surviving_siblings, mechanism_name, 16)
    assert result["expected"] == 16
