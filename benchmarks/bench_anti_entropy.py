"""Ablation — naive vs Merkle-tree anti-entropy.

Not a figure in the paper, but part of the substrate its evaluation runs on:
Riak converges replicas with hashtree exchange rather than shipping every key
every round.  This benchmark quantifies what the Merkle tree buys on this
substrate (keys transferred per convergence) and confirms that the choice of
anti-entropy strategy does not change any causal outcome — both strategies
converge to identical sibling sets, only the transfer volume differs.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.clocks import create
from repro.kvstore import AntiEntropyScheduler, ClientSession, MerkleAntiEntropy, SyncReplicatedStore
from repro.workloads import WorkloadConfig, generate_workload, replay_trace

KEY_COUNTS = [10, 50, 200]
DIVERGENT_FRACTION = 0.1


def build_diverged_store(keys: int, seed: int = 5):
    """A store where replicas agree on most keys and diverge on a few."""
    store = SyncReplicatedStore(create("dvv"), server_ids=("A", "B", "C"))
    writer = ClientSession("writer")
    for index in range(keys):
        key = f"key-{index}"
        writer.get(store, key, server_id="A")
        writer.put(store, key, f"value-{index}", server_id="A")
    store.converge()
    # now diverge a fraction of the keys with fresh writes at A only
    late = ClientSession("late-writer")
    divergent = max(1, int(keys * DIVERGENT_FRACTION))
    for index in range(divergent):
        key = f"key-{index * (keys // divergent)}"
        late.get(store, key, server_id="A")
        late.put(store, key, f"late-{index}", server_id="A")
    return store, divergent


def naive_transfer_volume(keys: int) -> int:
    """Keys shipped by the all-keys scheduler until convergence."""
    store, _ = build_diverged_store(keys)
    scheduler = AntiEntropyScheduler(store)
    transferred = 0
    while not store.is_converged():
        source_id, target_id = scheduler.run_round()
        transferred += len(set(store.node(source_id).storage.keys())
                           | set(store.node(target_id).storage.keys()))
    return transferred


def merkle_transfer_volume(keys: int) -> int:
    """Keys shipped by the Merkle scheduler until convergence."""
    store, _ = build_diverged_store(keys)
    anti_entropy = MerkleAntiEntropy(store)
    anti_entropy.run_until_converged()
    return anti_entropy.keys_synced


@pytest.fixture(scope="module")
def transfer_sweep():
    return {
        keys: {"naive": naive_transfer_volume(keys), "merkle": merkle_transfer_volume(keys)}
        for keys in KEY_COUNTS
    }


def test_report_anti_entropy_savings(transfer_sweep, publish):
    rows = []
    for keys in KEY_COUNTS:
        naive = transfer_sweep[keys]["naive"]
        merkle = transfer_sweep[keys]["merkle"]
        rows.append([keys, naive, merkle, round(naive / max(merkle, 1), 1)])
    table = render_table(
        ["keys", "naive keys transferred", "merkle keys transferred", "savings factor"],
        rows,
        title="Ablation — anti-entropy transfer volume until convergence (10% keys divergent)",
    )
    publish("ablation_anti_entropy", table)
    for keys in KEY_COUNTS:
        assert transfer_sweep[keys]["merkle"] <= transfer_sweep[keys]["naive"]
    assert transfer_sweep[KEY_COUNTS[-1]]["merkle"] < transfer_sweep[KEY_COUNTS[-1]]["naive"] / 2


def test_both_strategies_reach_identical_states():
    naive_store, _ = build_diverged_store(40)
    merkle_store, _ = build_diverged_store(40)
    AntiEntropyScheduler(naive_store).run_until_converged()
    MerkleAntiEntropy(merkle_store).run_until_converged()
    for key in naive_store.write_log.keys():
        naive_values = sorted(map(str, naive_store.values(key, "A")))
        merkle_values = sorted(map(str, merkle_store.values(key, "A")))
        assert naive_values == merkle_values


@pytest.mark.parametrize("strategy", ["naive", "merkle"])
def test_benchmark_anti_entropy(benchmark, strategy):
    def run():
        if strategy == "naive":
            return naive_transfer_volume(50)
        return merkle_transfer_volume(50)

    transferred = benchmark.pedantic(run, rounds=3, iterations=1)
    assert transferred > 0


@pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset"])
def test_benchmark_workload_with_merkle_convergence(benchmark, mechanism_name):
    """End-to-end replay + Merkle convergence, per mechanism."""
    trace = generate_workload(WorkloadConfig(clients=12, keys=6, operations=120, seed=17,
                                             sync_every=None, final_sync=False))

    def run():
        replay = replay_trace(trace, create(mechanism_name))
        MerkleAntiEntropy(replay.store).run_until_converged()
        return replay

    replay = benchmark.pedantic(run, rounds=3, iterations=1)
    assert replay.store.is_converged()
