"""Ablation — naive vs Merkle-tree anti-entropy.

Not a figure in the paper, but part of the substrate its evaluation runs on:
Riak converges replicas with hashtree exchange rather than shipping every key
every round.  This benchmark quantifies what the Merkle tree buys on this
substrate (keys transferred per convergence on the synchronous store, and
bytes of sync traffic on the simulated message-passing cluster) and confirms
that the choice of anti-entropy strategy does not change any causal outcome —
both strategies converge to identical sibling sets, only the transfer volume
differs.

Besides the pytest benchmarks, the module runs standalone as a smoke check
for CI::

    PYTHONPATH=src python benchmarks/bench_anti_entropy.py --smoke

which fails (non-zero exit) if the Merkle-delta protocol stops transferring
strictly fewer bytes than the full-state exchange on a mostly-synced store.
"""

from __future__ import annotations

import json
import pathlib
import sys

try:  # pragma: no cover - trivial import guard (script mode)
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover - only on uninstalled checkouts
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.analysis import render_table
from repro.clocks import create
from repro.kvstore import AntiEntropyScheduler, ClientSession, MerkleAntiEntropy, SimulatedCluster, SyncReplicatedStore
from repro.network import FixedLatency
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    replay_trace,
    run_sloppy_partition_scenario,
)

KEY_COUNTS = [10, 50, 200]
DIVERGENT_FRACTION = 0.1


def build_diverged_store(keys: int, seed: int = 5):
    """A store where replicas agree on most keys and diverge on a few."""
    store = SyncReplicatedStore(create("dvv"), server_ids=("A", "B", "C"))
    writer = ClientSession("writer")
    for index in range(keys):
        key = f"key-{index}"
        writer.get(store, key, server_id="A")
        writer.put(store, key, f"value-{index}", server_id="A")
    store.converge()
    # now diverge a fraction of the keys with fresh writes at A only
    late = ClientSession("late-writer")
    divergent = max(1, int(keys * DIVERGENT_FRACTION))
    for index in range(divergent):
        key = f"key-{index * (keys // divergent)}"
        late.get(store, key, server_id="A")
        late.put(store, key, f"late-{index}", server_id="A")
    return store, divergent


def naive_transfer_volume(keys: int) -> int:
    """Keys shipped by the all-keys scheduler until convergence."""
    store, _ = build_diverged_store(keys)
    scheduler = AntiEntropyScheduler(store)
    transferred = 0
    while not store.is_converged():
        source_id, target_id = scheduler.run_round()
        transferred += len(set(store.node(source_id).storage.keys())
                           | set(store.node(target_id).storage.keys()))
    return transferred


def merkle_transfer_volume(keys: int) -> int:
    """Keys shipped by the Merkle scheduler until convergence."""
    store, _ = build_diverged_store(keys)
    anti_entropy = MerkleAntiEntropy(store)
    anti_entropy.run_until_converged()
    return anti_entropy.keys_synced


@pytest.fixture(scope="module")
def transfer_sweep():
    return {
        keys: {"naive": naive_transfer_volume(keys), "merkle": merkle_transfer_volume(keys)}
        for keys in KEY_COUNTS
    }


def test_report_anti_entropy_savings(transfer_sweep, publish):
    rows = []
    for keys in KEY_COUNTS:
        naive = transfer_sweep[keys]["naive"]
        merkle = transfer_sweep[keys]["merkle"]
        rows.append([keys, naive, merkle, round(naive / max(merkle, 1), 1)])
    table = render_table(
        ["keys", "naive keys transferred", "merkle keys transferred", "savings factor"],
        rows,
        title="Ablation — anti-entropy transfer volume until convergence (10% keys divergent)",
    )
    publish("ablation_anti_entropy", table)
    for keys in KEY_COUNTS:
        assert transfer_sweep[keys]["merkle"] <= transfer_sweep[keys]["naive"]
    assert transfer_sweep[KEY_COUNTS[-1]]["merkle"] < transfer_sweep[KEY_COUNTS[-1]]["naive"] / 2


def test_both_strategies_reach_identical_states():
    naive_store, _ = build_diverged_store(40)
    merkle_store, _ = build_diverged_store(40)
    AntiEntropyScheduler(naive_store).run_until_converged()
    MerkleAntiEntropy(merkle_store).run_until_converged()
    for key in naive_store.write_log.keys():
        naive_values = sorted(map(str, naive_store.values(key, "A")))
        merkle_values = sorted(map(str, merkle_store.values(key, "A")))
        assert naive_values == merkle_values


@pytest.mark.parametrize("strategy", ["naive", "merkle"])
def test_benchmark_anti_entropy(benchmark, strategy):
    def run():
        if strategy == "naive":
            return naive_transfer_volume(50)
        return merkle_transfer_volume(50)

    transferred = benchmark.pedantic(run, rounds=3, iterations=1)
    assert transferred > 0


@pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset"])
def test_benchmark_workload_with_merkle_convergence(benchmark, mechanism_name):
    """End-to-end replay + Merkle convergence, per mechanism."""
    trace = generate_workload(WorkloadConfig(clients=12, keys=6, operations=120, seed=17,
                                             sync_every=None, final_sync=False))

    def run():
        replay = replay_trace(trace, create(mechanism_name))
        MerkleAntiEntropy(replay.store).run_until_converged()
        return replay

    replay = benchmark.pedantic(run, rounds=3, iterations=1)
    assert replay.store.is_converged()


# --------------------------------------------------------------------------- #
# Message-passing cluster: full-state vs Merkle-delta sync traffic (bytes)
# --------------------------------------------------------------------------- #
def build_diverged_cluster(keys: int, strategy: str = "merkle",
                           maintenance: str = "incremental", seed: int = 9):
    """A mostly-synced simulated cluster, ready for one convergence.

    Builds a 3-server cluster, fully converges it, diverges ~10% of the keys
    behind a partition, then heals — the state every sweep below starts from.
    """
    cluster = SimulatedCluster(
        create("dvv"),
        server_ids=("A", "B", "C"),
        latency=FixedLatency(0.5),
        anti_entropy_interval_ms=None,
        hint_replay_interval_ms=None,
        anti_entropy_strategy=strategy,
        merkle_maintenance=maintenance,
        seed=seed,
    )
    client = cluster.client("writer")
    for index in range(keys):
        client.put(f"key-{index}", f"value-{index}")
        cluster.simulation.run_until_idle()
    cluster.converge()

    # Diverge ~10% of the keys behind a partition so only the majority side
    # sees the late writes.  Keys coordinated by the isolated node C are
    # skipped: a GET through C could not reach its R=2 quorum and would stall
    # without ever issuing the divergence write.
    majority_keys = [key for key in cluster.key_universe()
                     if cluster.placement.coordinator_for(key) != "C"]
    divergent = max(1, keys // 10)
    step = max(1, len(majority_keys) // divergent)
    cluster.partitions.partition({"A", "B"}, {"C"})
    for key in majority_keys[::step][:divergent]:
        client.get(key, lambda result, k=key: client.put(k, f"late-{k}"))
        cluster.simulation.run_until_idle()
    cluster.partitions.heal()
    return cluster


def cluster_sync_bytes(keys: int, strategy: str, seed: int = 9):
    """Bytes of sync traffic one convergence costs under a sync strategy."""
    cluster = build_diverged_cluster(keys, strategy=strategy, seed=seed)
    before = cluster.sync_bytes()
    rounds = cluster.converge()
    return cluster.sync_bytes() - before, rounds, cluster


# --------------------------------------------------------------------------- #
# Hash-tree maintenance: incremental index vs per-exchange rebuilds
# --------------------------------------------------------------------------- #
TREE_WORK_STATS = ("keys_hashed", "buckets_rehashed", "full_rebuilds")

MAINTENANCE_MODES = ("rebuild", "incremental")


def tree_work_totals(cluster) -> dict:
    """The cluster-wide hash-tree maintenance counters."""
    totals = cluster.stat_totals()
    return {name: totals.get(name, 0) for name in TREE_WORK_STATS}


def cluster_tree_work(keys: int, maintenance: str, seed: int = 9):
    """Hash-tree work (key fingerprints hashed, buckets re-hashed, full
    rebuilds) one convergence costs under a maintenance mode.

    With ``"rebuild"`` every exchange re-fingerprints the whole key space on
    both sides — O(total keys) per exchange.  With ``"incremental"`` the
    write-maintained index only re-hashes what the convergence merges
    actually dirtied — O(divergent buckets) — which is the scaling the
    incremental-index subsystem exists to provide.
    """
    cluster = build_diverged_cluster(keys, maintenance=maintenance, seed=seed)
    before = tree_work_totals(cluster)
    rounds = cluster.converge()
    after = tree_work_totals(cluster)
    delta = {name: after[name] - before[name] for name in TREE_WORK_STATS}
    return delta, rounds, cluster


def handoff_tree_work(keys: int, seed: int = 9) -> dict:
    """Hash-tree work a whole-vnode handoff costs (join of an empty node).

    Builds a converged cluster, joins a fresh node ``D`` (the ring rebalances
    and the moved ranges' keys are pushed via KEY_HANDOFF with their
    maintained fingerprints riding along), and returns the deltas of the
    relevant counters.  The vnode-scoped contract: the receiver *imports*
    the sender's digests, so the handoff hashes ~zero new fingerprints no
    matter how many keys move.
    """
    cluster = build_diverged_cluster(keys, seed=seed)
    cluster.converge()
    totals = cluster.stat_totals()
    hashed_before = totals.get("keys_hashed", 0)
    imported_before = totals.get("fingerprints_imported", 0)
    handed_off = cluster.join_node("D")
    cluster.simulation.run_until_idle()
    totals = cluster.stat_totals()
    return {
        "keys_moved": handed_off,
        "keys_hashed": totals.get("keys_hashed", 0) - hashed_before,
        "fingerprints_imported": totals.get("fingerprints_imported", 0) - imported_before,
    }


def per_range_exchange_stats(keys: int, seed: int = 9) -> dict:
    """Range-comparison counters one convergence costs with per-vnode trees."""
    cluster = build_diverged_cluster(keys, seed=seed)
    compared_before = cluster.merkle_stats.partitions_compared
    differing_before = cluster.merkle_stats.partitions_differing
    transferred_before = cluster.merkle_stats.keys_transferred
    rounds = cluster.converge()
    return {
        "rounds": rounds,
        "partitions_compared": cluster.merkle_stats.partitions_compared - compared_before,
        "partitions_differing": cluster.merkle_stats.partitions_differing - differing_before,
        "keys_transferred": cluster.merkle_stats.keys_transferred - transferred_before,
        "partition_count": len(cluster.partition_map),
    }


CLUSTER_KEY_COUNTS = [20, 60, 150]


@pytest.fixture(scope="module")
def cluster_byte_sweep():
    return {
        keys: {strategy: cluster_sync_bytes(keys, strategy)[0]
               for strategy in ("full", "merkle")}
        for keys in CLUSTER_KEY_COUNTS
    }


def test_report_cluster_sync_bytes(cluster_byte_sweep, publish):
    rows = []
    for keys in CLUSTER_KEY_COUNTS:
        full = cluster_byte_sweep[keys]["full"]
        merkle = cluster_byte_sweep[keys]["merkle"]
        rows.append([keys, full, merkle, round(full / max(merkle, 1), 1)])
    table = render_table(
        ["keys", "full-state sync bytes", "merkle-delta sync bytes", "savings factor"],
        rows,
        title="Simulated cluster — sync bytes until convergence (10% keys divergent)",
    )
    publish("cluster_sync_bytes", table)
    for keys in CLUSTER_KEY_COUNTS:
        assert cluster_byte_sweep[keys]["merkle"] < cluster_byte_sweep[keys]["full"]


@pytest.fixture(scope="module")
def tree_work_sweep():
    return {
        keys: {mode: cluster_tree_work(keys, mode)[0]
               for mode in MAINTENANCE_MODES}
        for keys in CLUSTER_KEY_COUNTS
    }


def test_report_tree_maintenance_cost(tree_work_sweep, publish):
    """Build-cost series: hash-tree work per convergence, rebuild vs index."""
    rows = []
    for keys in CLUSTER_KEY_COUNTS:
        rebuild = tree_work_sweep[keys]["rebuild"]
        incremental = tree_work_sweep[keys]["incremental"]
        rows.append([
            keys,
            rebuild["keys_hashed"], rebuild["full_rebuilds"],
            incremental["keys_hashed"], incremental["buckets_rehashed"],
            round(rebuild["keys_hashed"] / max(incremental["keys_hashed"], 1), 1),
        ])
    table = render_table(
        ["keys", "rebuild: keys hashed", "rebuild: tree builds",
         "incremental: keys hashed", "incremental: buckets rehashed",
         "savings factor"],
        rows,
        title="Simulated cluster — hash-tree work until convergence (10% keys divergent)",
    )
    publish("cluster_tree_maintenance", table)
    for keys in CLUSTER_KEY_COUNTS:
        rebuild = tree_work_sweep[keys]["rebuild"]
        incremental = tree_work_sweep[keys]["incremental"]
        # The subsystem's contract: exchange-time tree work scales with the
        # divergence, not the key space, so the incremental index must hash
        # strictly fewer key fingerprints — and never rebuild — while the
        # rebuild mode pays O(keys) per exchange.
        assert incremental["keys_hashed"] < rebuild["keys_hashed"]
        assert incremental["full_rebuilds"] == 0
        assert rebuild["full_rebuilds"] >= 2   # both sides of >= 1 exchange
        # Divergence-proportional, not keyspace-proportional: with ~10% of
        # keys diverged, converging must re-fingerprint fewer keys than the
        # store holds, while a single rebuild already hashes all of them.
        assert incremental["keys_hashed"] < keys


def test_report_per_range_exchange(publish):
    """Per-vnode series: range comparisons confine descents to dirty ranges."""
    sweep = {keys: per_range_exchange_stats(keys) for keys in CLUSTER_KEY_COUNTS}
    table = render_table(
        ["keys", "ranges compared", "ranges descended", "keys transferred", "rounds"],
        [[keys, stats["partitions_compared"], stats["partitions_differing"],
          stats["keys_transferred"], stats["rounds"]]
         for keys, stats in sweep.items()],
        title="Simulated cluster — per-range exchange work until convergence "
              "(10% keys divergent)",
    )
    publish("cluster_per_range_exchange", table)
    for keys, stats in sweep.items():
        # only divergent ranges are descended, and there is always at least
        # one (the divergence exists) but never all of them (90% is synced)
        assert 0 < stats["partitions_differing"] < stats["partitions_compared"]


def test_report_handoff_tree_work(publish):
    """Handoff series: moving a vnode's keys imports digests, hashes ~nothing."""
    sweep = {keys: handoff_tree_work(keys) for keys in CLUSTER_KEY_COUNTS}
    table = render_table(
        ["keys", "keys moved", "keys hashed", "fingerprints imported"],
        [[keys, stats["keys_moved"], stats["keys_hashed"],
          stats["fingerprints_imported"]]
         for keys, stats in sweep.items()],
        title="Simulated cluster — hash-tree work per join handoff",
    )
    publish("cluster_handoff_tree_work", table)
    for keys, stats in sweep.items():
        assert stats["keys_moved"] > 0
        assert stats["fingerprints_imported"] >= stats["keys_moved"]
        # O(1), not O(keys moved): the receiver adopts maintained digests
        assert stats["keys_hashed"] == 0


def test_maintenance_modes_reach_identical_states():
    _, _, rebuild_cluster = cluster_tree_work(40, "rebuild")
    _, _, incremental_cluster = cluster_tree_work(40, "incremental")
    assert rebuild_cluster.is_converged() and incremental_cluster.is_converged()
    for key in rebuild_cluster.key_universe():
        rebuilt = sorted(map(repr, rebuild_cluster.servers["A"].node.values_of(key)))
        indexed = sorted(map(repr, incremental_cluster.servers["A"].node.values_of(key)))
        assert rebuilt == indexed


def test_cluster_strategies_reach_identical_states():
    _, _, full_cluster = cluster_sync_bytes(40, "full")
    _, _, merkle_cluster = cluster_sync_bytes(40, "merkle")
    assert full_cluster.is_converged() and merkle_cluster.is_converged()
    for key in full_cluster.key_universe():
        full_values = sorted(map(repr, full_cluster.servers["A"].node.values_of(key)))
        merkle_values = sorted(map(repr, merkle_cluster.servers["A"].node.values_of(key)))
        assert full_values == merkle_values


# --------------------------------------------------------------------------- #
# Sloppy vs strict quorums: availability and latency under a partition
# --------------------------------------------------------------------------- #
def availability_under_partition(quorum_mode: str, seed: int = 13):
    """Run the sloppy-partition scenario and reduce it to availability numbers.

    Returns ``(report, mean_put_latency_ms)``: the scenario's ChurnReport
    (requests completed vs failed, convergence) and the mean latency of the
    *successful* writes.  Byte series built on the cluster's transport stats
    count only delivered bytes — traffic eaten by the partition is accounted
    separately — so the two modes are compared on what actually crossed the
    wire.
    """
    report = run_sloppy_partition_scenario(create("dvv"), seed=seed,
                                           quorum_mode=quorum_mode)
    records = [record for record in report.cluster.all_request_records()
               if record.ok and record.operation == "put"]
    mean_put_ms = (sum(record.latency_ms for record in records) / len(records)
                   if records else 0.0)
    return report, mean_put_ms


QUORUM_MODES = ("strict", "sloppy")


@pytest.fixture(scope="module")
def availability_sweep():
    return {mode: availability_under_partition(mode) for mode in QUORUM_MODES}


def test_report_sloppy_availability(availability_sweep, publish):
    rows = []
    for mode in QUORUM_MODES:
        report, mean_put_ms = availability_sweep[mode]
        rows.append([mode, report.requests_completed, report.requests_failed,
                     round(mean_put_ms, 2), report.converged,
                     report.stats.get("hints_stored", 0)])
    table = render_table(
        ["quorum mode", "completed", "failed", "mean put ms", "converged", "hints"],
        rows,
        title="Async request mode — availability under partition (strict vs sloppy)",
    )
    publish("sloppy_availability", table)
    strict_report, _ = availability_sweep["strict"]
    sloppy_report, _ = availability_sweep["sloppy"]
    # The whole point of sloppy quorums: keep accepting writes during the
    # partition that strict quorums reject.
    assert strict_report.requests_failed > 0
    assert sloppy_report.requests_failed < strict_report.requests_failed
    assert sloppy_report.requests_completed > strict_report.requests_completed
    for mode in QUORUM_MODES:
        assert availability_sweep[mode][0].converged


def run_smoke(keys: int = 60,
              results_path: str = "BENCH_anti_entropy.json") -> int:
    """Quick regression gate for CI.

    Four checks: (1) merkle-delta anti-entropy must transfer fewer bytes
    than the full-state exchange; (2) on a large keyspace, the incremental
    Merkle index must do less hash-tree work per convergence than rebuilding
    the trees per exchange; (3) a whole-vnode join handoff must import the
    sender's maintained fingerprints instead of re-hashing the moved states
    (O(1) fresh fingerprints, not O(keys moved)); (4) under a partition, the
    async request mode's sloppy quorums must complete writes that strict
    quorums fail, and still converge after healing.  The measured numbers are
    written to ``results_path`` as JSON for CI artifacts.
    """
    results: dict = {"keys": keys}
    full_bytes, full_rounds, _ = cluster_sync_bytes(keys, "full")
    merkle_bytes, merkle_rounds, merkle_cluster = cluster_sync_bytes(keys, "merkle")
    print(render_table(
        ["strategy", "sync bytes", "rounds"],
        [["full", full_bytes, full_rounds], ["merkle", merkle_bytes, merkle_rounds]],
        title=f"Anti-entropy smoke ({keys} keys, 10% divergent)",
    ))
    if not merkle_cluster.is_converged():
        print("FAIL: merkle strategy did not converge", file=sys.stderr)
        return 1
    if merkle_bytes >= full_bytes:
        print("FAIL: merkle-delta sync no longer transfers fewer bytes than "
              f"full-state exchange ({merkle_bytes} >= {full_bytes})", file=sys.stderr)
        return 1
    print(f"OK: merkle-delta saves {full_bytes - merkle_bytes} bytes "
          f"({full_bytes / max(merkle_bytes, 1):.1f}x)")
    results["sync_bytes"] = {"full": full_bytes, "merkle": merkle_bytes,
                             "full_rounds": full_rounds,
                             "merkle_rounds": merkle_rounds}
    results["per_range_exchange"] = per_range_exchange_stats(keys)

    # Incremental hash-tree maintenance: a large keyspace so the O(keys)
    # rebuild cost is unmistakable against the O(divergence) index cost.
    tree_keys = max(keys, 200)
    work = {mode: cluster_tree_work(tree_keys, mode) for mode in MAINTENANCE_MODES}
    print(render_table(
        ["maintenance", "keys hashed", "buckets rehashed", "full rebuilds", "rounds"],
        [[mode, delta["keys_hashed"], delta["buckets_rehashed"],
          delta["full_rebuilds"], rounds]
         for mode, (delta, rounds, _cluster) in work.items()],
        title=f"Hash-tree maintenance smoke ({tree_keys} keys, 10% divergent)",
    ))
    for mode, (_delta, _rounds, cluster) in work.items():
        if not cluster.is_converged():
            print(f"FAIL: {mode} maintenance did not converge", file=sys.stderr)
            return 1
    rebuild_hashed = work["rebuild"][0]["keys_hashed"]
    incremental_hashed = work["incremental"][0]["keys_hashed"]
    if incremental_hashed >= rebuild_hashed:
        print("FAIL: incremental Merkle maintenance no longer beats full "
              f"rebuilds on tree work per exchange ({incremental_hashed} >= "
              f"{rebuild_hashed} key fingerprints hashed)", file=sys.stderr)
        return 1
    if work["incremental"][0]["full_rebuilds"] != 0:
        print("FAIL: incremental maintenance fell back to full tree rebuilds "
              f"({work['incremental'][0]['full_rebuilds']} during convergence)",
              file=sys.stderr)
        return 1
    print(f"OK: incremental index hashed {incremental_hashed} key fingerprints "
          f"vs {rebuild_hashed} for per-exchange rebuilds "
          f"({rebuild_hashed / max(incremental_hashed, 1):.1f}x less tree work)")
    results["tree_work"] = {mode: dict(delta, rounds=rounds)
                            for mode, (delta, rounds, _c) in work.items()}

    # Whole-vnode handoff: the moved keys' digests must travel with them.
    handoff = handoff_tree_work(keys)
    print(render_table(
        ["keys moved", "keys hashed", "fingerprints imported"],
        [[handoff["keys_moved"], handoff["keys_hashed"],
          handoff["fingerprints_imported"]]],
        title=f"Vnode handoff smoke (join of an empty node, {keys} keys held)",
    ))
    results["handoff"] = handoff
    if handoff["keys_moved"] <= 0:
        print("FAIL: the join handoff moved no keys (the scenario stopped "
              "exercising rebalancing)", file=sys.stderr)
        return 1
    if handoff["keys_hashed"] > max(2, handoff["keys_moved"] // 10):
        print("FAIL: vnode handoff re-hashes the moved states instead of "
              f"importing maintained fingerprints ({handoff['keys_hashed']} "
              f"hashed for {handoff['keys_moved']} keys moved)", file=sys.stderr)
        return 1
    print(f"OK: handoff moved {handoff['keys_moved']} keys, imported "
          f"{handoff['fingerprints_imported']} fingerprints, hashed "
          f"{handoff['keys_hashed']} fresh ones")

    sweeps = {mode: availability_under_partition(mode) for mode in QUORUM_MODES}
    print(render_table(
        ["quorum mode", "completed", "failed", "mean put ms", "converged"],
        [[mode, report.requests_completed, report.requests_failed,
          round(mean_put_ms, 2), report.converged]
         for mode, (report, mean_put_ms) in sweeps.items()],
        title="Sloppy-quorum smoke (availability under partition)",
    ))
    strict_report = sweeps["strict"][0]
    sloppy_report = sweeps["sloppy"][0]
    if not (strict_report.converged and sloppy_report.converged):
        print("FAIL: a quorum mode did not converge after healing", file=sys.stderr)
        return 1
    if strict_report.requests_failed == 0:
        print("FAIL: strict quorums no longer fail writes under the partition "
              "(the scenario stopped exercising the fallback path)", file=sys.stderr)
        return 1
    if sloppy_report.requests_failed >= strict_report.requests_failed:
        print("FAIL: sloppy quorums no longer improve availability "
              f"({sloppy_report.requests_failed} >= {strict_report.requests_failed} "
              "failed writes)", file=sys.stderr)
        return 1
    print(f"OK: sloppy quorums completed {sloppy_report.requests_completed} requests "
          f"({sloppy_report.requests_failed} failed) vs strict "
          f"{strict_report.requests_completed} ({strict_report.requests_failed} failed)")
    results["availability"] = {
        mode: {"completed": report.requests_completed,
               "failed": report.requests_failed,
               "mean_put_ms": round(mean_put_ms, 3),
               "converged": report.converged}
        for mode, (report, mean_put_ms) in sweeps.items()
    }
    pathlib.Path(results_path).write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {results_path}")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the quick full-vs-merkle byte regression check")
    parser.add_argument("--keys", type=int, default=60)
    parser.add_argument("--out", default="BENCH_anti_entropy.json",
                        help="where --smoke writes its measured numbers as JSON")
    args = parser.parse_args()
    if not args.smoke:
        parser.error("run under pytest for the full benchmark, or pass --smoke")
    raise SystemExit(run_smoke(keys=args.keys, results_path=args.out))
