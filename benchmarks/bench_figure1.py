"""Figure 1 (panels a, b, c): the paper's running example, regenerated.

For each causality mechanism this benchmark replays the exact Figure 1
interaction trace and reports the figure's qualitative content: which versions
are visible after the concurrent client writes, what survives the server
synchronisation, and whether the concurrent update was lost.  The timing side
of the benchmark measures the cost of the whole replay per mechanism.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.clocks import create
from repro.workloads import run_figure1_by_name

MECHANISMS = ["causal_history", "server_vv", "dvv", "dvvset", "client_vv", "dotted_vve"]

PANEL = {
    "causal_history": "Fig 1a",
    "server_vv": "Fig 1b",
    "dvv": "Fig 1c",
}


@pytest.fixture(scope="module")
def figure1_results():
    return {name: run_figure1_by_name(name) for name in MECHANISMS}


def test_report_figure1(figure1_results, publish):
    rows = []
    for name, result in figure1_results.items():
        rows.append([
            f"{name} ({PANEL.get(name, '-')})",
            ",".join(result.values_after_concurrent_writes),
            ",".join(result.values_at_b_after_sync),
            result.concurrency_preserved,
            result.lost_update,
            ",".join(result.final_values),
        ])
    table = render_table(
        ["mechanism (panel)", "at A after racing writes", "at B after sync",
         "concurrency kept", "lost update", "final"],
        rows,
        title="Figure 1 — two servers, two racing clients, one resolver",
    )
    publish("figure1", table)

    assert figure1_results["dvv"].concurrency_preserved
    assert figure1_results["causal_history"].concurrency_preserved
    assert figure1_results["server_vv"].lost_update
    for result in figure1_results.values():
        assert result.final_values == ["v4"]


@pytest.mark.parametrize("mechanism_name", MECHANISMS)
def test_benchmark_figure1_replay(benchmark, mechanism_name):
    """Cost of the full Figure 1 replay under each mechanism."""
    result = benchmark(run_figure1_by_name, mechanism_name)
    assert result.final_values == ["v4"]
