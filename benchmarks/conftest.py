"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index).  Besides the pytest-benchmark timings, each
module renders the paper-style table with :func:`repro.analysis.render_table`
and stores it under ``benchmarks/results/`` so EXPERIMENTS.md can be updated
from the artefacts of a run.  Run with ``-s`` to also see the tables inline.
"""

from __future__ import annotations

import pathlib
import sys

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover - only on uninstalled checkouts
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benchmark report tables are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def publish(results_dir):
    """Callable that prints a report table and persists it to the results dir."""

    def _publish(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _publish
