"""Experiment E4 — request latency under each mechanism.

The brief announcement cites the Riak evaluation: DVVs gave "a significant
reduction in the size of metadata, and better latency when serving requests".
The absolute Riak numbers are not reproducible without the original testbed;
what is reproducible is the causal chain behind them — smaller causality
metadata means fewer bytes serialised, shipped and parsed per request.  The
simulated cluster charges transmission time per byte (see
``repro.network.latency.SizeDependentLatency``), so replaying the same
closed-loop workload under each mechanism isolates exactly that effect.
"""

from __future__ import annotations

import pytest

from repro.analysis import LatencyReport, analyze_requests, measure_simulated_cluster, render_table
from repro.clocks import create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster
from repro.network import FixedLatency, SizeDependentLatency
from repro.workloads import ClosedLoopConfig, run_closed_loop_workload

MECHANISMS = ["dvvset", "dvv", "client_vv", "causal_history"]
CLIENT_COUNTS = [4, 16, 48]


def run_cluster(mechanism_name: str, client_count: int, stop_at_ms: float = 600.0):
    cluster = SimulatedCluster(
        create(mechanism_name),
        server_ids=("n1", "n2", "n3"),
        quorum=QuorumConfig(n=3, r=2, w=2),
        latency=SizeDependentLatency(base=FixedLatency(0.25), bytes_per_ms=600.0),
        anti_entropy_interval_ms=50.0,
        seed=1000 + client_count,
    )
    config = ClosedLoopConfig(keys=("hot-key",), think_time_ms=4.0,
                              write_fraction=0.6, stop_at_ms=stop_at_ms)
    run_closed_loop_workload(cluster, client_count=client_count, config=config)
    report = analyze_requests(mechanism_name, cluster.all_request_records(),
                              duration_ms=stop_at_ms)
    metadata = measure_simulated_cluster(cluster)
    return report, metadata, cluster


@pytest.fixture(scope="module")
def latency_sweep():
    results = {}
    for client_count in CLIENT_COUNTS:
        for name in MECHANISMS:
            results[(client_count, name)] = run_cluster(name, client_count)
    return results


def test_report_latency(latency_sweep, publish):
    rows = []
    for client_count in CLIENT_COUNTS:
        for name in MECHANISMS:
            report, metadata, _cluster = latency_sweep[(client_count, name)]
            rows.append([
                client_count,
                name,
                report.requests,
                round(report.overall.mean, 3),
                round(report.overall.p95, 3),
                round(report.mean_context_bytes, 1),
                metadata.total_bytes,
            ])
    table = render_table(
        ["clients", "mechanism", "requests", "mean ms", "p95 ms",
         "context bytes/req", "stored metadata bytes"],
        rows,
        title="E4 — request latency and on-the-wire metadata (same workload, same seed)",
    )
    publish("e4_latency", table)

    # Shape assertions at the highest concurrency level: DVV-family requests
    # carry less metadata and are faster than per-client VVs and far faster
    # than explicit causal histories.
    many = CLIENT_COUNTS[-1]
    dvv_report, dvv_meta, _ = latency_sweep[(many, "dvv")]
    dvvset_report, dvvset_meta, _ = latency_sweep[(many, "dvvset")]
    client_report, client_meta, _ = latency_sweep[(many, "client_vv")]
    history_report, history_meta, _ = latency_sweep[(many, "causal_history")]

    assert dvv_meta.total_bytes < client_meta.total_bytes < history_meta.total_bytes
    assert dvv_report.mean_context_bytes < client_report.mean_context_bytes
    assert dvv_report.overall.mean < client_report.overall.mean
    assert dvvset_report.overall.mean <= client_report.overall.mean
    assert dvv_report.overall.mean < history_report.overall.mean


@pytest.mark.parametrize("mechanism_name", MECHANISMS)
def test_benchmark_cluster_run(benchmark, mechanism_name):
    """End-to-end simulated-cluster run cost per mechanism (16 clients)."""
    def run():
        report, _metadata, _cluster = run_cluster(mechanism_name, 16, stop_at_ms=250.0)
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert isinstance(report, LatencyReport)
    assert report.requests > 0
