"""Sibling explosion under Zipfian hot-key skew, per causality mechanism.

The paper's mechanisms differ most visibly when many clients hammer one key
with stale contexts: exact mechanisms keep every concurrent version as a
sibling (and collapse them again once readers resolve), per-server version
vectors silently drop frontier writes (Figure 1b), and aggressively pruned
client vectors resurrect causally ordered writes as bogus siblings.  This
benchmark drives :func:`repro.workloads.run_hot_key_scenario` — Zipf-skewed
closed-loop traffic, stale write contexts, a primary of the hot key crashing
and recovering mid-run — and reports, per mechanism, the sibling-count and
metadata-size series over simulated time plus the write-log oracle's verdict.

Besides the pytest benchmarks, the module runs standalone as a smoke check
for CI::

    PYTHONPATH=src python benchmarks/bench_hot_key.py --smoke --out BENCH_hot_key.json

which fails (non-zero exit) if any mechanism stops converging, an exact
mechanism loses a frontier write, the workload stops generating sibling
pressure, or the two baseline pathologies (server_vv losing updates,
client_vv_pruned_5 fabricating concurrency) stop reproducing.  The JSON is
checked in and picked up by ``tools/render_dashboard.py``.
"""

from __future__ import annotations

import json
import pathlib
import sys

try:  # pragma: no cover - trivial import guard (script mode)
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover - only on uninstalled checkouts
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.analysis import render_table
from repro.clocks import create
from repro.workloads import run_hot_key_scenario

#: The mechanisms the skew sweep compares: the paper's exact ones, the
#: Figure 1b per-server baseline, and a pruned client vector.
MECHANISMS = ["dvv", "dvvset", "causal_history", "dotted_vve",
              "server_vv", "client_vv_pruned_5"]
EXACT = ("dvv", "dvvset", "causal_history", "dotted_vve")

SEED = 17


def hot_key_run(mechanism_name: str, seed: int = SEED):
    """One skewed run; returns the scenario's ChurnReport."""
    return run_hot_key_scenario(create(mechanism_name), seed=seed)


def summarize(report) -> dict:
    """The dashboard-facing scalars plus the raw per-run series."""
    series = [list(row) for row in report.sibling_series]
    final_metadata = series[-1][2] if series else 0
    peak_metadata = max((row[2] for row in series), default=0)
    return {
        "converged": report.converged,
        "max_sibling_count": report.max_sibling_count,
        "final_sibling_count": series[-1][1] if series else 0,
        "peak_metadata_bytes": peak_metadata,
        "final_metadata_bytes": final_metadata,
        "lost_updates": report.lost_updates,
        "false_concurrency": report.false_concurrency,
        "requests_completed": report.requests_completed,
        "requests_failed": report.requests_failed,
        # (t_ms, hot-key max siblings, cluster metadata bytes) samples;
        # ignored by the dashboard's numeric flattener, kept for plotting.
        "series": series,
    }


@pytest.fixture(scope="module")
def skew_sweep():
    return {name: summarize(hot_key_run(name)) for name in MECHANISMS}


def test_report_hot_key_sibling_pressure(skew_sweep, publish):
    rows = [[name,
             sweep["max_sibling_count"], sweep["final_sibling_count"],
             sweep["peak_metadata_bytes"],
             sweep["lost_updates"], sweep["false_concurrency"],
             sweep["converged"]]
            for name, sweep in skew_sweep.items()]
    table = render_table(
        ["mechanism", "peak siblings", "final siblings", "peak metadata B",
         "lost updates", "false concurrency", "converged"],
        rows,
        title="Hot-key skew — sibling pressure and oracle verdict per mechanism",
    )
    publish("hot_key_sibling_pressure", table)
    for name, sweep in skew_sweep.items():
        assert sweep["converged"], name
    for name in EXACT:
        assert skew_sweep[name]["lost_updates"] == 0, name
        assert skew_sweep[name]["false_concurrency"] == 0, name
        # skew really bit: concurrent versions piled up at some point
        assert skew_sweep[name]["max_sibling_count"] >= 2, name
    # The two pathologies the paper contrasts against:
    assert skew_sweep["server_vv"]["lost_updates"] > 0
    assert skew_sweep["client_vv_pruned_5"]["false_concurrency"] > 0


def test_report_exact_mechanisms_resolve_siblings(skew_sweep, publish):
    """Read-modify-write traffic eventually collapses the pile-up: the
    settled frontier is far below the in-flight peak for exact mechanisms."""
    rows = []
    for name in EXACT:
        sweep = skew_sweep[name]
        rows.append([name, sweep["max_sibling_count"],
                     sweep["final_sibling_count"]])
        assert sweep["final_sibling_count"] <= sweep["max_sibling_count"]
    table = render_table(
        ["mechanism", "peak siblings", "settled siblings"],
        rows,
        title="Hot-key skew — peak vs settled sibling counts (exact mechanisms)",
    )
    publish("hot_key_sibling_resolution", table)


@pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset"])
def test_benchmark_hot_key_scenario(benchmark, mechanism_name):
    report = benchmark.pedantic(lambda: hot_key_run(mechanism_name),
                                rounds=3, iterations=1)
    assert report.converged


def run_smoke(results_path: str = "BENCH_hot_key.json",
              seed: int = SEED) -> int:
    """Quick regression gate for CI.

    Four checks: (1) every mechanism converges under hot-key skew; (2) exact
    mechanisms keep the generalized lost-update invariant (oracle: zero lost,
    zero false concurrency) while actually under sibling pressure; (3) the
    per-server VV baseline still loses frontier writes — the Figure 1b
    pathology the scenario exists to expose; (4) the pruned client VV still
    fabricates false concurrency.  The per-mechanism series and verdicts are
    written to ``results_path`` for the dashboard and CI artifacts.
    """
    results: dict = {"seed": seed, "mechanisms": {}}
    for name in MECHANISMS:
        results["mechanisms"][name] = summarize(hot_key_run(name, seed=seed))
    sweeps = results["mechanisms"]

    print(render_table(
        ["mechanism", "peak siblings", "final siblings", "peak metadata B",
         "lost", "false conc", "converged"],
        [[name, sweep["max_sibling_count"], sweep["final_sibling_count"],
          sweep["peak_metadata_bytes"], sweep["lost_updates"],
          sweep["false_concurrency"], sweep["converged"]]
         for name, sweep in sweeps.items()],
        title=f"Hot-key skew smoke (seed={seed})",
    ))

    for name, sweep in sweeps.items():
        if not sweep["converged"]:
            print(f"FAIL: {name} did not converge under hot-key skew",
                  file=sys.stderr)
            return 1
    for name in EXACT:
        if sweeps[name]["lost_updates"] != 0 or sweeps[name]["false_concurrency"] != 0:
            print(f"FAIL: exact mechanism {name} broke the lost-update "
                  f"invariant (lost={sweeps[name]['lost_updates']}, "
                  f"false={sweeps[name]['false_concurrency']})", file=sys.stderr)
            return 1
        if sweeps[name]["max_sibling_count"] < 2:
            print(f"FAIL: {name} saw no sibling pressure — the skewed "
                  "workload went soft and the invariant is vacuous",
                  file=sys.stderr)
            return 1
    if sweeps["server_vv"]["lost_updates"] <= 0:
        print("FAIL: server_vv no longer loses updates under skew "
              "(the scenario stopped reproducing Figure 1b)", file=sys.stderr)
        return 1
    if sweeps["client_vv_pruned_5"]["false_concurrency"] <= 0:
        print("FAIL: client_vv_pruned_5 no longer shows false concurrency "
              "under skew", file=sys.stderr)
        return 1
    exact_losses = sum(sweeps[name]["lost_updates"] for name in EXACT)
    print(f"OK: exact mechanisms kept every frontier write ({exact_losses} "
          f"lost) at peak sibling counts "
          f"{[sweeps[name]['max_sibling_count'] for name in EXACT]}; "
          f"server_vv lost {sweeps['server_vv']['lost_updates']}, "
          f"client_vv_pruned_5 fabricated "
          f"{sweeps['client_vv_pruned_5']['false_concurrency']} false pairs")
    pathlib.Path(results_path).write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {results_path}")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the quick skew regression check")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", default="BENCH_hot_key.json",
                        help="where --smoke writes its measured numbers as JSON")
    args = parser.parse_args()
    if not args.smoke:
        parser.error("run under pytest for the full benchmark, or pass --smoke")
    raise SystemExit(run_smoke(results_path=args.out, seed=args.seed))
