"""Experiment E3 — what optimistic pruning of client version vectors costs.

The paper: keeping one VV entry per client "is inefficient as VV can grow very
large.  To address this problem these systems prune VV optimistically, which
is unsafe, possibly leading to lost updates and/or to the introduction of
false concurrency."  This benchmark quantifies that trade-off: the same
many-client workload is replayed with unpruned client VVs, with size-bounded
pruning at several thresholds, and with DVVs; for each we report the metadata
bound achieved and the causal damage done (lost updates, false concurrency),
measured against the ground-truth oracle.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_store, measure_sync_store, render_table
from repro.clocks import create
from repro.workloads import WorkloadConfig, generate_workload, replay_trace

MECHANISMS = [
    "client_vv",              # exact but unbounded
    "client_vv_pruned_20",
    "client_vv_pruned_10",
    "client_vv_pruned_5",
    "dvv",                    # bounded and exact — the paper's answer
    "dvvset",
]


def build_workload(seed: int = 31):
    return generate_workload(WorkloadConfig(
        clients=48,
        servers=("A", "B", "C"),
        keys=2,
        operations=400,
        read_probability=0.4,
        stale_read_probability=0.35,
        blind_write_probability=0.05,
        seed=seed,
    ))


@pytest.fixture(scope="module")
def pruning_results():
    trace = build_workload()
    results = {}
    for name in MECHANISMS:
        replay = replay_trace(trace, create(name))
        replay.store.converge()
        results[name] = {
            "correctness": check_store(replay.store),
            "metadata": measure_sync_store(replay.store),
        }
    return results


def test_report_pruning_damage(pruning_results, publish):
    rows = []
    for name in MECHANISMS:
        correctness = pruning_results[name]["correctness"]
        metadata = pruning_results[name]["metadata"]
        rows.append([
            name,
            metadata.max_entries_per_key,
            round(metadata.per_key_bytes.mean, 1),
            correctness.total_lost_updates,
            correctness.total_false_concurrency,
            correctness.is_correct,
        ])
    table = render_table(
        ["mechanism", "entries/key (max)", "bytes/key (mean)",
         "lost updates", "false concurrency", "safe"],
        rows,
        title="E3 — pruned client version vectors: size bound vs causal damage",
    )
    publish("e3_pruning", table)

    exact = pruning_results["client_vv"]["correctness"]
    dvv = pruning_results["dvv"]["correctness"]
    aggressive = pruning_results["client_vv_pruned_5"]["correctness"]
    assert exact.is_correct
    assert dvv.is_correct
    assert not aggressive.is_correct, "aggressive pruning must cause causal damage"
    # Every pruned variant does some causal damage on this workload (the exact
    # split between lost updates and false concurrency depends on the
    # interleaving, so only the sum is asserted).
    damage = {
        name: (pruning_results[name]["correctness"].total_lost_updates
               + pruning_results[name]["correctness"].total_false_concurrency)
        for name in MECHANISMS
    }
    for name in ("client_vv_pruned_5", "client_vv_pruned_10", "client_vv_pruned_20"):
        assert damage[name] > 0, f"{name} should not get away unscathed"
    assert damage["client_vv"] == 0 and damage["dvv"] == 0 and damage["dvvset"] == 0
    # And DVV achieves a *tighter* metadata bound than any pruned variant here,
    # without any damage.
    assert (pruning_results["dvv"]["metadata"].max_entries_per_key
            <= pruning_results["client_vv_pruned_5"]["metadata"].max_entries_per_key)


@pytest.mark.parametrize("mechanism_name", ["client_vv", "client_vv_pruned_5", "dvv"])
def test_benchmark_pruned_replay(benchmark, mechanism_name):
    trace = build_workload(seed=97)

    def run():
        replay = replay_trace(trace, create(mechanism_name))
        replay.store.converge()
        return check_store(replay.store)

    report = benchmark(run)
    assert report.keys_checked > 0
