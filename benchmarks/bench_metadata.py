"""Experiment E2 — metadata size vs number of concurrent clients.

The paper (and the Riak evaluation it cites) claims DVV metadata is bounded by
the replication degree while per-client version vectors grow with the number
of clients that ever wrote a key, and the causal-history ground truth grows
with the total number of writes.  This benchmark replays the same many-client
workload under each mechanism for a sweep of client counts and reports the
per-key metadata footprint (entries and encoded bytes).
"""

from __future__ import annotations

import pytest

from repro.analysis import measure_sync_store, render_table
from repro.clocks import create
from repro.workloads import WorkloadConfig, generate_workload, replay_trace

CLIENT_COUNTS = [2, 8, 32, 96]
MECHANISMS = ["dvv", "dvvset", "client_vv", "client_vv_pruned_10", "causal_history"]


def build_workload(clients: int):
    return generate_workload(WorkloadConfig(
        clients=clients,
        servers=("A", "B", "C"),
        keys=1,
        operations=max(40, clients * 4),
        read_probability=0.4,
        stale_read_probability=0.3,
        seed=2012 + clients,
    ))


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for clients in CLIENT_COUNTS:
        trace = build_workload(clients)
        for name in MECHANISMS:
            replay = replay_trace(trace, create(name))
            replay.store.converge()
            results[(clients, name)] = measure_sync_store(replay.store)
    return results


def test_report_metadata_sweep(sweep, publish):
    rows = []
    for clients in CLIENT_COUNTS:
        for name in MECHANISMS:
            report = sweep[(clients, name)]
            rows.append([
                clients,
                name,
                round(report.per_key_entries.mean, 1),
                report.max_entries_per_key,
                round(report.per_key_bytes.mean, 1),
            ])
    table = render_table(
        ["clients", "mechanism", "entries/key (mean)", "entries/key (max)", "bytes/key (mean)"],
        rows,
        title="E2 — causality metadata per key vs number of writing clients",
    )
    publish("e2_metadata_size", table)

    # Shape assertions (who grows, who stays bounded).
    few, many = CLIENT_COUNTS[0], CLIENT_COUNTS[-1]
    client_vv_growth = (sweep[(many, "client_vv")].max_entries_per_key
                        / max(sweep[(few, "client_vv")].max_entries_per_key, 1))
    dvv_growth = (sweep[(many, "dvv")].max_entries_per_key
                  / max(sweep[(few, "dvv")].max_entries_per_key, 1))
    assert client_vv_growth > 2.0, "client VVs should grow with #clients"
    assert dvv_growth < client_vv_growth, "DVV growth must be slower than client VVs"
    # At the largest client count, DVV metadata is significantly smaller.
    assert (sweep[(many, "client_vv")].total_bytes
            > 1.5 * sweep[(many, "dvv")].total_bytes)
    # DVVSet is at least as compact as per-sibling DVVs.
    assert (sweep[(many, "dvvset")].total_entries
            <= sweep[(many, "dvv")].total_entries)
    # The causal-history ground truth is the largest exact representation.
    assert (sweep[(many, "causal_history")].total_bytes
            >= sweep[(many, "dvv")].total_bytes)


@pytest.mark.parametrize("mechanism_name", MECHANISMS)
def test_benchmark_workload_replay(benchmark, mechanism_name):
    """Replay cost of the 32-client workload under each mechanism."""
    trace = build_workload(32)

    def run():
        replay = replay_trace(trace, create(mechanism_name))
        replay.store.converge()
        return replay

    replay = benchmark(run)
    assert len(replay.store.write_log) > 0
