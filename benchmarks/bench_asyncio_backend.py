"""Wall-clock smoke of the asyncio backend — real sockets, real concurrency.

The simulator measures the protocol in virtual time; this benchmark runs the
exact same state machines over real Unix-domain sockets
(:class:`repro.kvstore.AsyncioCluster`) and reports what a wall clock sees:
a 3-node cluster, several truly concurrent clients issuing a mixed PUT/GET
workload, anti-entropy and hint replay ticking as asyncio tasks.  The checks
are about liveness and safety rather than speed: every client request must
complete, the replicas must converge once the workload stops, and the
throughput must be nonzero (the backend actually moved frames).

Besides the pytest tests, the module runs standalone as a smoke check
for CI::

    PYTHONPATH=src python benchmarks/bench_asyncio_backend.py --smoke

which exercises all three headline mechanisms (dvv, dvvset, causal_history)
and writes the measured numbers to ``BENCH_asyncio_backend.json``.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import random
import sys

try:  # pragma: no cover - trivial import guard (script mode)
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover - only on uninstalled checkouts
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.analysis import analyze_requests, render_table
from repro.clocks import create
from repro.kvstore import AsyncioCluster

MECHANISMS = ("dvv", "dvvset", "causal_history")

#: The ISSUE's acceptance floor: a real cluster must serve at least this many
#: truly concurrent clients.
CLIENT_COUNT = 4


async def _run_cluster_workload(mechanism_name: str,
                                clients: int = CLIENT_COUNT,
                                duration_s: float = 0.4,
                                keys: int = 4,
                                write_fraction: float = 0.6,
                                seed: int = 2012) -> dict:
    """Drive a 3-node asyncio cluster with a concurrent mixed workload.

    Returns the measured numbers: completed/failed requests, wall-clock
    ops/s, latency stats, convergence time and wire traffic.
    """
    cluster = AsyncioCluster(
        create(mechanism_name),
        server_ids=("A", "B", "C"),
        anti_entropy_interval_ms=50.0,
        hint_replay_interval_ms=25.0,
    )
    key_space = [f"key-{index}" for index in range(keys)]
    async with cluster:
        sessions = [await cluster.client(f"c{index}") for index in range(clients)]
        loop = asyncio.get_running_loop()
        stop_at = loop.time() + duration_s

        async def drive(client, index: int) -> None:
            rng = random.Random(seed * 1000 + index)
            while loop.time() < stop_at:
                key = key_space[rng.randrange(len(key_space))]
                if rng.random() < write_fraction:
                    await client.put(key, f"{client.client_id}-{rng.random():.6f}")
                else:
                    await client.get(key)

        started = loop.time()
        await asyncio.gather(*(drive(c, i) for i, c in enumerate(sessions)))
        elapsed_s = loop.time() - started
        convergence_s = await cluster.converge(timeout_s=30.0)
        records = cluster.all_request_records()
        latency = analyze_requests(mechanism_name, records,
                                   duration_ms=elapsed_s * 1000.0)
        wire_bytes = sum(server.endpoint.stats.bytes_sent
                         for server in cluster.servers.values())
        return {
            "mechanism": mechanism_name,
            "clients": clients,
            "requests": latency.requests,
            "failed": sum(1 for record in records if not record.ok),
            "ops_per_s": round(latency.throughput_per_s, 1),
            "mean_ms": round(latency.overall.mean, 3),
            "p95_ms": round(latency.overall.p95, 3),
            "wire_bytes": wire_bytes,
            "elapsed_s": round(elapsed_s, 3),
            "convergence_s": round(convergence_s, 3),
            "converged": cluster.is_converged(),
        }


def run_cluster_workload(mechanism_name: str, **kwargs) -> dict:
    """Synchronous wrapper so pytest and the smoke gate share one driver."""
    return asyncio.run(_run_cluster_workload(mechanism_name, **kwargs))


@pytest.mark.parametrize("mechanism_name", MECHANISMS)
def test_asyncio_backend_serves_concurrent_clients(mechanism_name):
    """4 concurrent clients over real sockets: all complete, all converge."""
    result = run_cluster_workload(mechanism_name, duration_s=0.25)
    assert result["requests"] > 0
    assert result["failed"] == 0
    assert result["ops_per_s"] > 0
    assert result["converged"]


def run_smoke(duration_s: float = 0.5,
              results_path: str = "BENCH_asyncio_backend.json") -> int:
    """CI gate: the asyncio backend must serve real concurrent traffic.

    For each headline mechanism, a 3-node Unix-socket cluster takes a mixed
    PUT/GET workload from 4 concurrent clients; the gate fails if any request
    fails, the replicas do not converge, or wall-clock throughput is zero.
    The measured numbers go to ``results_path`` as a CI artifact.
    """
    results: dict = {"duration_s": duration_s, "clients": CLIENT_COUNT}
    rows = []
    for mechanism_name in MECHANISMS:
        result = run_cluster_workload(mechanism_name, duration_s=duration_s)
        results[mechanism_name] = result
        rows.append([mechanism_name, result["requests"], result["failed"],
                     result["ops_per_s"], result["mean_ms"], result["p95_ms"],
                     result["convergence_s"], result["converged"]])
    print(render_table(
        ["mechanism", "requests", "failed", "ops/s", "mean ms", "p95 ms",
         "converge s", "converged"],
        rows,
        title=(f"Asyncio backend smoke — 3 nodes, {CLIENT_COUNT} concurrent "
               f"clients, unix sockets, {duration_s}s"),
    ))
    for mechanism_name in MECHANISMS:
        result = results[mechanism_name]
        if result["requests"] == 0 or result["ops_per_s"] <= 0:
            print(f"FAIL: {mechanism_name} served no traffic over the asyncio "
                  "backend", file=sys.stderr)
            return 1
        if result["failed"] > 0:
            print(f"FAIL: {mechanism_name} failed {result['failed']} of "
                  f"{result['requests'] + result['failed']} requests over the "
                  "asyncio backend", file=sys.stderr)
            return 1
        if not result["converged"]:
            print(f"FAIL: {mechanism_name} replicas did not converge after the "
                  "workload", file=sys.stderr)
            return 1
        print(f"OK: {mechanism_name} served {result['requests']} requests at "
              f"{result['ops_per_s']} ops/s, converged in "
              f"{result['convergence_s']}s")
    pathlib.Path(results_path).write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {results_path}")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the concurrent-clients wall-clock gate")
    parser.add_argument("--duration-s", type=float, default=0.5,
                        dest="duration_s")
    parser.add_argument("--out", default="BENCH_asyncio_backend.json",
                        help="where --smoke writes its measured numbers as JSON")
    args = parser.parse_args()
    if not args.smoke:
        parser.error("run under pytest for the test suite, or pass --smoke")
    raise SystemExit(run_smoke(duration_s=args.duration_s,
                               results_path=args.out))
