"""Experiment E6 — related-work baselines (Section 3 of the paper).

Two comparisons:

* **WinFS-style dotted VVEs** vs DVVs on the interleaved two-server workload:
  both are causally exact, but the VVE causal pasts accumulate exceptions
  under interleaving, so their metadata footprint is larger — supporting the
  paper's remark that the extra expressive power of VVEs is unnecessary for
  this storage model.
* **Wang & Amza ordered version vectors**: O(1) dominance checks like DVVs,
  but the O(1) rule breaks whenever vectors are produced by merges, and the
  representation still cannot distinguish concurrent client writes through the
  same server (it is a plain VV underneath).  We measure how often the O(1)
  path has to fall back to the full comparison on a merge-heavy history.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_store, measure_sync_store, render_table
from repro.clocks import OrderedVersionVector, create
from repro.workloads import interleaved_two_server_trace, replay_trace

MECHANISMS = ["dvv", "dvvset", "dotted_vve", "client_vv", "causal_history"]


@pytest.fixture(scope="module")
def interleaved_results():
    trace = interleaved_two_server_trace(pairs=12)
    results = {}
    for name in MECHANISMS:
        replay = replay_trace(trace, create(name))
        replay.store.converge()
        results[name] = {
            "metadata": measure_sync_store(replay.store),
            "correctness": check_store(replay.store),
        }
    return results


def test_report_related_work_metadata(interleaved_results, publish):
    rows = []
    for name in MECHANISMS:
        metadata = interleaved_results[name]["metadata"]
        correctness = interleaved_results[name]["correctness"]
        rows.append([
            name,
            metadata.total_entries,
            metadata.total_bytes,
            correctness.total_lost_updates,
            correctness.total_false_concurrency,
        ])
    table = render_table(
        ["mechanism", "entries (total)", "bytes (total)", "lost updates", "false concurrency"],
        rows,
        title="E6 — interleaved two-server workload: DVV vs WinFS-style VVE vs baselines",
    )
    publish("e6_related_work", table)

    dvv = interleaved_results["dvv"]
    vve = interleaved_results["dotted_vve"]
    assert dvv["correctness"].is_correct
    assert vve["correctness"].is_correct
    assert vve["metadata"].total_bytes >= dvv["metadata"].total_bytes


def ordered_vv_fallback_rate(chain_length: int = 200, merge_every: int = 4):
    """Fraction of dominance checks that could not use the O(1) rule."""
    versions = [OrderedVersionVector.empty().increment("A")]
    for index in range(1, chain_length):
        previous = versions[-1]
        if index % merge_every == 0:
            sibling = previous.increment(f"writer-{index % 7}")
            merged = previous.merge(sibling)
            versions.append(merged)
        else:
            versions.append(previous.increment(f"writer-{index % 7}"))
    checks = 0
    fallbacks_before = sum(v.fallback_comparisons for v in versions)
    for older, newer in zip(versions, versions[1:]):
        older.dominated_by(newer)
        checks += 1
    fallbacks_after = sum(v.fallback_comparisons for v in versions)
    return (fallbacks_after - fallbacks_before) / checks


def test_report_ordered_vv_fallbacks(publish):
    rows = []
    for merge_every in (2, 4, 8, 1000):
        rate = ordered_vv_fallback_rate(merge_every=merge_every)
        label = f"merge every {merge_every}" if merge_every < 1000 else "no merges"
        rows.append([label, round(rate, 3)])
    table = render_table(
        ["history shape", "O(1)-rule fallback rate"],
        rows,
        title="E6 — ordered version vectors: how often the O(1) comparison degrades",
    )
    publish("e6_ordered_vv_fallbacks", table)

    assert ordered_vv_fallback_rate(merge_every=1000) == 0.0
    assert ordered_vv_fallback_rate(merge_every=2) > ordered_vv_fallback_rate(merge_every=8)


@pytest.mark.parametrize("mechanism_name", ["dvv", "dotted_vve"])
def test_benchmark_interleaved_replay(benchmark, mechanism_name):
    trace = interleaved_two_server_trace(pairs=12)

    def run():
        replay = replay_trace(trace, create(mechanism_name))
        replay.store.converge()
        return replay

    replay = benchmark(run)
    assert replay.store.is_converged()
