"""Experiment E1 — "O(1) causality verification" (Section 2, first claim).

Compares the cost of deciding happens-before between two versions when the
clocks are:

* plain version vectors (component-wise comparison, O(n) in the entries),
* dotted version vectors (single dot lookup, O(1)),
* the Wang & Amza ordered version vectors (O(1) on single-increment chains).

The sweep grows the number of vector entries; the paper's claim is that the
DVV check stays flat while the VV check grows linearly.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_table
from repro.clocks import OrderedVersionVector
from repro.core import Dot, DottedVersionVector, VersionVector

SIZES = [2, 8, 32, 128, 512, 2048]


def build_version_vectors(entries: int):
    base = VersionVector({f"actor-{index}": index + 1 for index in range(entries)})
    newer = base.increment("actor-0")
    return base, newer


def build_dvvs(entries: int):
    past = VersionVector({f"actor-{index}": index + 1 for index in range(entries)})
    older = DottedVersionVector(Dot("actor-0", past.get("actor-0") + 1), past)
    newer_past = older.to_version_vector()
    newer = DottedVersionVector(Dot("actor-1", newer_past.get("actor-1") + 1), newer_past)
    return older, newer


def build_ordered(entries: int):
    clock = OrderedVersionVector.empty()
    for index in range(entries):
        clock = clock.increment(f"actor-{index}")
    newer = clock.increment("actor-0")
    return clock, newer


def time_comparisons(pairs, compare, iterations: int = 2000) -> float:
    """Average nanoseconds per comparison over ``iterations`` repetitions."""
    start = time.perf_counter()
    for _ in range(iterations):
        compare(*pairs)
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e9


def test_report_comparison_scaling(publish):
    rows = []
    for size in SIZES:
        vv_pair = build_version_vectors(size)
        dvv_pair = build_dvvs(size)
        ordered_pair = build_ordered(size)
        vv_ns = time_comparisons(vv_pair, lambda a, b: a.compare(b))
        dvv_ns = time_comparisons(dvv_pair, lambda a, b: a.happens_before(b))
        ordered_ns = time_comparisons(ordered_pair, lambda a, b: a.dominated_by(b))
        rows.append([size, round(vv_ns), round(dvv_ns), round(ordered_ns),
                     round(vv_ns / dvv_ns, 1)])
    table = render_table(
        ["entries", "VV compare (ns)", "DVV happens-before (ns)",
         "ordered-VV dominance (ns)", "VV/DVV ratio"],
        rows,
        title="E1 — causality check cost vs clock size (lower is better)",
    )
    publish("e1_comparison_scaling", table)

    # Shape assertions: the VV cost grows ~linearly with entries; the DVV cost
    # does not (allow generous noise margins — this is a wall-clock test).
    small_vv = time_comparisons(build_version_vectors(SIZES[0]), lambda a, b: a.compare(b))
    large_vv = time_comparisons(build_version_vectors(SIZES[-1]), lambda a, b: a.compare(b))
    small_dvv = time_comparisons(build_dvvs(SIZES[0]), lambda a, b: a.happens_before(b))
    large_dvv = time_comparisons(build_dvvs(SIZES[-1]), lambda a, b: a.happens_before(b))
    assert large_vv > small_vv * 10
    assert large_dvv < small_dvv * 10
    assert large_vv > large_dvv * 5


@pytest.mark.parametrize("size", [8, 128, 2048])
def test_benchmark_vv_compare(benchmark, size):
    a, b = build_version_vectors(size)
    assert benchmark(a.compare, b).name == "BEFORE"


@pytest.mark.parametrize("size", [8, 128, 2048])
def test_benchmark_dvv_happens_before(benchmark, size):
    a, b = build_dvvs(size)
    assert benchmark(a.happens_before, b) is True


@pytest.mark.parametrize("size", [8, 128, 2048])
def test_benchmark_ordered_vv_dominance(benchmark, size):
    a, b = build_ordered(size)
    assert benchmark(a.dominated_by, b) is True
