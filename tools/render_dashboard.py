#!/usr/bin/env python3
"""Render a static HTML dashboard from the checked-in ``BENCH_*.json`` files.

Every benchmark smoke run persists its measured numbers as a ``BENCH_*.json``
at the repository root (``bench_anti_entropy.py --smoke``,
``bench_clock_operations.py --smoke``, ...).  This tool turns all of them into
one self-contained HTML page — inline SVG, no external assets, no
dependencies — with:

* a bar chart per top-level section of each file (current values), and
* a *trajectory* sparkline per metric, read from the git history of the same
  file, so regressions and wins across the PR sequence are visible at a
  glance.  Trajectories degrade gracefully: without git (or with a single
  recorded version) only the current values render.

Usage::

    python tools/render_dashboard.py                 # writes dashboard.html
    python tools/render_dashboard.py --root . --out site/dashboard.html
"""

from __future__ import annotations

import argparse
import glob
import html
import json
import os
import subprocess
import sys
from typing import Any, Dict, List, Optional, Tuple

MAX_HISTORY = 40  # trajectory points per file (newest last)


# --------------------------------------------------------------------------- #
# Data collection
# --------------------------------------------------------------------------- #
def collect_bench_files(root: str) -> List[str]:
    """The repository's ``BENCH_*.json`` files, sorted by name."""
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def flatten(value: Any, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested dict under dotted names (bools count as 0/1)."""
    out: Dict[str, float] = {}
    if isinstance(value, dict):
        for key in value:
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value[key], child_prefix))
    elif isinstance(value, bool):
        out[prefix] = 1.0 if value else 0.0
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    return out


def git_trajectory(path: str, root: str,
                   limit: int = MAX_HISTORY) -> List[Tuple[str, Dict[str, float]]]:
    """``(short_sha, flat_metrics)`` for each recorded version, oldest first.

    Includes the working-tree version last when it differs from HEAD.  Any
    git failure (not a repo, file untracked) yields an empty history.
    """
    rel = os.path.relpath(path, root)
    try:
        revs = subprocess.run(
            ["git", "log", "--format=%h", "-n", str(limit), "--", rel],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout.split()
    except (OSError, subprocess.CalledProcessError):
        return []
    points: List[Tuple[str, Dict[str, float]]] = []
    for sha in reversed(revs):
        try:
            blob = subprocess.run(
                ["git", "show", f"{sha}:{rel}"],
                cwd=root, capture_output=True, text=True, check=True,
            ).stdout
            points.append((sha, flatten(json.loads(blob))))
        except (OSError, subprocess.CalledProcessError, ValueError):
            continue
    try:
        with open(path) as fh:
            current = flatten(json.load(fh))
        if not points or points[-1][1] != current:
            points.append(("worktree", current))
    except (OSError, ValueError):
        pass
    return points


# --------------------------------------------------------------------------- #
# SVG rendering (no dependencies)
# --------------------------------------------------------------------------- #
def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.2f}"


def bar_chart(metrics: Dict[str, float], width: int = 640) -> str:
    """A horizontal bar chart of one section's metrics."""
    if not metrics:
        return ""
    bar_h, gap, label_w = 18, 6, 260
    peak = max(abs(v) for v in metrics.values()) or 1.0
    height = len(metrics) * (bar_h + gap) + gap
    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">']
    y = gap
    for name, value in metrics.items():
        length = max(2.0, (abs(value) / peak) * (width - label_w - 110))
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 5}" text-anchor="end" '
            f'class="lbl">{html.escape(name)}</text>'
            f'<rect x="{label_w}" y="{y}" width="{length:.1f}" '
            f'height="{bar_h}" class="bar"/>'
            f'<text x="{label_w + length + 6:.1f}" y="{y + bar_h - 5}" '
            f'class="val">{_fmt(value)}</text>'
        )
        y += bar_h + gap
    parts.append("</svg>")
    return "".join(parts)


def sparkline(series: List[float], width: int = 180, height: int = 36) -> str:
    """A tiny polyline of one metric's recorded history."""
    if len(series) < 2:
        return ""
    low, high = min(series), max(series)
    span = (high - low) or 1.0
    step = (width - 8) / (len(series) - 1)
    coords = []
    for index, value in enumerate(series):
        x = 4 + index * step
        y = height - 6 - ((value - low) / span) * (height - 12)
        coords.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = coords[-1].split(",")
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" class="spark" role="img">'
        f'<polyline points="{" ".join(coords)}" fill="none" class="line"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="2.5" class="dot"/></svg>'
    )


# --------------------------------------------------------------------------- #
# Page assembly
# --------------------------------------------------------------------------- #
_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 980px;
       color: #1a1a2e; background: #fafafa; padding: 0 1rem; }
h1 { font-size: 1.5rem; } h2 { margin-top: 2.2rem; border-bottom: 2px solid #ddd;
     padding-bottom: .3rem; } h3 { margin-bottom: .4rem; color: #444; }
.lbl { font: 11px monospace; fill: #333; } .val { font: 11px monospace; fill: #555; }
.bar { fill: #4c72b0; } .spark .line { stroke: #4c72b0; stroke-width: 1.5; }
.spark .dot { fill: #dd8452; }
table.traj { border-collapse: collapse; margin: .6rem 0 1rem; }
table.traj td, table.traj th { padding: 2px 12px 2px 0; text-align: left;
  font: 12px monospace; border-bottom: 1px solid #eee; }
.muted { color: #888; font-size: .85rem; }
"""


def _group_by_section(flat: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    sections: Dict[str, Dict[str, float]] = {}
    for name, value in flat.items():
        section, _, rest = name.partition(".")
        sections.setdefault(section, {})[rest or section] = value
    return sections


def render_file_section(path: str, root: str) -> str:
    title = os.path.basename(path)
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as error:
        return f"<h2>{html.escape(title)}</h2><p class='muted'>unreadable: " \
               f"{html.escape(str(error))}</p>"
    flat = flatten(data)
    pieces = [f"<h2>{html.escape(title)}</h2>"]
    for section, metrics in _group_by_section(flat).items():
        pieces.append(f"<h3>{html.escape(section)}</h3>")
        pieces.append(bar_chart(metrics))

    history = git_trajectory(path, root)
    if len(history) >= 2:
        pieces.append(f"<h3>trajectory ({len(history)} recorded versions)</h3>")
        pieces.append("<table class='traj'><tr><th>metric</th><th>history</th>"
                      "<th>first</th><th>latest</th></tr>")
        for name in sorted(flat):
            series = [point[1][name] for point in history if name in point[1]]
            if len(series) < 2:
                continue
            pieces.append(
                f"<tr><td>{html.escape(name)}</td><td>{sparkline(series)}</td>"
                f"<td>{_fmt(series[0])}</td><td>{_fmt(series[-1])}</td></tr>")
        pieces.append("</table>")
        shas = " → ".join(sha for sha, _ in history)
        pieces.append(f"<p class='muted'>versions: {html.escape(shas)}</p>")
    return "\n".join(pieces)


def render_dashboard(root: str) -> str:
    """The full dashboard page for every BENCH_*.json under ``root``."""
    files = collect_bench_files(root)
    body = [f"<h1>Benchmark dashboard</h1>",
            f"<p class='muted'>{len(files)} benchmark file(s) under "
            f"{html.escape(os.path.abspath(root))}</p>"]
    if not files:
        body.append("<p>No BENCH_*.json files found. Run a benchmark smoke "
                    "first, e.g. <code>python benchmarks/bench_anti_entropy.py "
                    "--smoke</code>.</p>")
    for path in files:
        body.append(render_file_section(path, root))
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>Benchmark dashboard</title>"
            f"<style>{_STYLE}</style></head><body>"
            + "\n".join(body) + "</body></html>\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--out", default=None,
                        help="output HTML path (default: <root>/dashboard.html)")
    args = parser.parse_args(argv)
    out = args.out or os.path.join(args.root, "dashboard.html")
    page = render_dashboard(args.root)
    with open(out, "w") as fh:
        fh.write(page)
    print(f"wrote {out} ({len(collect_bench_files(args.root))} benchmark files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
