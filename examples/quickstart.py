#!/usr/bin/env python3
"""Quickstart: dotted version vectors in five minutes.

This example walks through the paper's core ideas directly at the clock level,
with no storage system involved:

1. why plain version vectors cannot identify concurrent writes racing through
   the same server (Figure 1b's problem);
2. how a dotted version vector separates the version identifier (the *dot*)
   from the causal past and fixes that;
3. the O(1) happens-before check;
4. the server-side kernel (update / sync / join) that a storage node runs.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import Dot, DottedVersionVector, VersionVector
from repro.core.dvv import join, sync, update


def separator(title: str) -> None:
    print()
    print(f"== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    separator("1. The problem with per-server version vectors")
    # Two clients read the same version (tagged [A:1]) and both write back
    # through server A.  The server can only mint [A:2] and then [A:3] —
    # and [A:2] < [A:3], so the two *concurrent* writes look ordered.
    v1 = VersionVector({"A": 1})
    first_write = v1.increment("A")
    second_write = first_write.increment("A")
    print(f"version written by client 1: {first_write}")
    print(f"version written by client 2: {second_write}")
    print(f"compare: {first_write.compare(second_write).value}   <-- wrongly ordered!")

    separator("2. Dotted version vectors keep the writes concurrent")
    # Same story with DVVs: both clients' causal past is [A:1]; the server
    # gives each write its own dot.
    clock_client1 = DottedVersionVector(Dot("A", 2), VersionVector({"A": 1}))
    clock_client2 = DottedVersionVector(Dot("A", 3), VersionVector({"A": 1}))
    print(f"version written by client 1: {clock_client1}")
    print(f"version written by client 2: {clock_client2}")
    print(f"concurrent? {clock_client1.concurrent_with(clock_client2)}   <-- correctly concurrent")

    separator("3. O(1) causality verification")
    older = DottedVersionVector(Dot("A", 1))
    newer = DottedVersionVector(Dot("B", 1), VersionVector({"A": 1}))
    print(f"{older}  happens before  {newer} ?  "
          f"{older.happens_before(newer)}  (one dictionary lookup)")
    print(f"{newer}  happens before  {older} ?  {newer.happens_before(older)}")

    separator("4. The server-side kernel: update / sync / join")
    # A replica server stores the versions of one key as a list of DVVs.
    server_a: list[DottedVersionVector] = []

    # A client that has read nothing writes v1 through server A.
    v1_clock = update(VersionVector.empty(), server_a, "A")
    server_a = [v1_clock]
    print(f"after blind write of v1:        {[str(c) for c in server_a]}")

    # A client reads (context = join of the stored clocks) and writes v2.
    context = join(server_a)
    v2_clock = update(context, server_a, "A")
    server_a = [c for c in server_a if not context.contains_dot(c.dot)] + [v2_clock]
    print(f"after read-modify-write of v2:  {[str(c) for c in server_a]}")

    # A second client still holding the *old* context writes v3: concurrent.
    v3_clock = update(context, server_a, "A")
    server_a = [c for c in server_a if not context.contains_dot(c.dot)] + [v3_clock]
    print(f"after stale-context write of v3: {[str(c) for c in server_a]}")

    # Server B is empty; anti-entropy brings it up to date without losing
    # either concurrent version.
    server_b = sync([], server_a)
    print(f"server B after sync:            {[str(c) for c in server_b]}")

    # A client reads both siblings at B and writes v4, resolving the conflict.
    resolve_context = join(server_b)
    v4_clock = update(resolve_context, server_b, "B")
    server_b = [c for c in server_b if not resolve_context.contains_dot(c.dot)] + [v4_clock]
    print(f"server B after resolving write: {[str(c) for c in server_b]}")


if __name__ == "__main__":
    main()
