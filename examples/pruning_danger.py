#!/usr/bin/env python3
"""Why pruning client version vectors is unsafe — and what DVVs buy instead.

Systems that tag versions with one vector entry per client must bound the
vector somehow; Riak's historical answer was to prune entries once the vector
grew past a threshold.  The paper calls this "unsafe, possibly leading to lost
updates and/or to the introduction of false concurrency".  This example makes
the damage concrete: one many-client workload is replayed with

* exact per-client version vectors (safe, unbounded),
* pruned per-client version vectors at several thresholds (bounded, unsafe),
* dotted version vectors (bounded by the number of replicas *and* safe).

For each run the ground-truth oracle reports lost updates and false
concurrency, and the metadata accountant reports the footprint achieved.

Run with::

    python examples/pruning_danger.py
"""

from __future__ import annotations

from repro.analysis import check_store, measure_sync_store, render_table
from repro.clocks import create
from repro.workloads import WorkloadConfig, generate_workload, replay_trace

MECHANISMS = [
    ("client_vv", "exact per-client VV"),
    ("client_vv_pruned_20", "pruned at 20 entries"),
    ("client_vv_pruned_10", "pruned at 10 entries"),
    ("client_vv_pruned_5", "pruned at 5 entries"),
    ("dvv", "dotted version vectors"),
]


def main() -> None:
    trace = generate_workload(WorkloadConfig(
        clients=48,
        servers=("A", "B", "C"),
        keys=2,
        operations=400,
        read_probability=0.4,
        stale_read_probability=0.35,
        blind_write_probability=0.05,
        seed=41,
    ))
    print(f"workload: {len(trace)} operations, {len(trace.clients())} clients, "
          f"{len(trace.keys())} keys, 3 replica servers")
    print()

    rows = []
    for name, description in MECHANISMS:
        replay = replay_trace(trace, create(name))
        replay.store.converge()
        correctness = check_store(replay.store)
        metadata = measure_sync_store(replay.store)
        rows.append([
            description,
            metadata.max_entries_per_key,
            round(metadata.per_key_bytes.mean, 1),
            correctness.total_lost_updates,
            correctness.total_false_concurrency,
            correctness.is_correct,
        ])
    print(render_table(
        ["mechanism", "entries/key (max)", "bytes/key (mean)",
         "lost updates", "false concurrency", "safe"],
        rows,
        title="Bounding causality metadata: pruning vs dotted version vectors",
    ))
    print()
    print("Pruning does bound the vector, but the bound is bought with causal")
    print("damage that grows as the threshold shrinks.  Dotted version vectors")
    print("get a tighter bound (one entry per replica server plus the dot) with")
    print("no damage at all, because the identifier space is the small, stable")
    print("set of servers rather than the open-ended set of clients.")


if __name__ == "__main__":
    main()
