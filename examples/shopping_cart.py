#!/usr/bin/env python3
"""The Dynamo shopping cart, with dotted version vectors underneath.

The motivating workload of multi-version key-value stores: a user's shopping
cart is updated from several devices (browser, phone) that race with each
other.  The store must never silently drop an item added concurrently; when it
detects concurrent versions it keeps them as *siblings* and lets the
application merge them (here: set union).

This example runs the scenario on the synchronous replicated store with the
DVV mechanism, then repeats the decisive step under the per-server-VV baseline
to show the dropped item, mirroring the paper's Figure 1 but phrased as the
shopping-cart workload its introduction alludes to.

Run with::

    python examples/shopping_cart.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.clocks import DVVMechanism, ServerVVMechanism
from repro.kvstore import ClientSession, SyncReplicatedStore, UnionMerge, resolve_and_writeback


def run_cart(mechanism, label: str):
    store = SyncReplicatedStore(mechanism, server_ids=("A", "B"))
    laptop = ClientSession("laptop")
    phone = ClientSession("phone")
    checkout = ClientSession("checkout-service")

    # The user adds a book from the laptop.
    laptop.get(store, "cart", server_id="A")
    laptop.put(store, "cart", ["book"], server_id="A")

    # Both devices load the cart (each now holds the same causal context).
    laptop.get(store, "cart", server_id="A")
    phone.get(store, "cart", server_id="A")

    # Concurrently: the laptop adds headphones, the phone adds a charger.
    laptop.put(store, "cart", ["book", "headphones"], server_id="A")
    phone.put(store, "cart", ["book", "charger"], server_id="A")

    at_coordinator = [sorted(v) for v in store.values("cart", "A")]

    # The cart replica on server B receives the versions by anti-entropy.
    store.sync_key("cart", "A", "B")
    at_replica = [sorted(v) for v in store.values("cart", "B")]

    # The checkout service reads the cart at B, merges the siblings (set
    # union) and writes the merged cart back with the read's context.
    merged = resolve_and_writeback(store, "cart", checkout, UnionMerge())
    store.sync_key("cart", "B", "A")
    final = [sorted(v) for v in store.values("cart", "A")]

    return {
        "label": label,
        "siblings at coordinator": at_coordinator,
        "siblings at replica B": at_replica,
        "merged cart": sorted(merged) if merged else merged,
        "final value at A": final,
    }


def main() -> None:
    dvv_outcome = run_cart(DVVMechanism(), "dotted version vectors")
    server_vv_outcome = run_cart(ServerVVMechanism(), "per-server version vectors")

    rows = []
    for outcome in (dvv_outcome, server_vv_outcome):
        rows.append([
            outcome["label"],
            str(outcome["siblings at coordinator"]),
            str(outcome["siblings at replica B"]),
            str(outcome["merged cart"]),
        ])
    print(render_table(
        ["mechanism", "siblings at A", "siblings at B after sync", "cart after merge"],
        rows,
        title="Shopping cart updated concurrently from two devices",
    ))
    print()
    if "charger" in (dvv_outcome["merged cart"] or []) and \
            "headphones" in (dvv_outcome["merged cart"] or []):
        print("DVV store: both concurrently-added items survived the race.")
    missing = {"headphones", "charger"} - set(server_vv_outcome["merged cart"] or [])
    if missing:
        print(f"per-server VV store: the concurrently-added {sorted(missing)} "
              "was silently dropped when the replicas synchronised — the lost "
              "update the paper's Figure 1b illustrates.")


if __name__ == "__main__":
    main()
