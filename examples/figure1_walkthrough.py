#!/usr/bin/env python3
"""Figure 1, executed: causal histories vs per-server VVs vs DVVs.

Replays the exact client/server interaction of the paper's Figure 1 under
three causality mechanisms and prints, step by step, which versions each
server holds — the same information the figure annotates next to each event —
plus the verdict of the ground-truth oracle.

Run with::

    python examples/figure1_walkthrough.py
"""

from __future__ import annotations

from repro.analysis import check_store, render_table
from repro.clocks import create
from repro.workloads import figure1_trace, replay_trace, run_figure1_by_name

PANELS = [
    ("causal_history", "Figure 1a — causal histories (ground truth)"),
    ("server_vv", "Figure 1b — version vectors, one entry per server"),
    ("dvv", "Figure 1c — dotted version vectors"),
]


def main() -> None:
    for mechanism_name, title in PANELS:
        result = run_figure1_by_name(mechanism_name)
        rows = [
            [step.label, ",".join(step.values_at_a) or "-", ",".join(step.values_at_b) or "-"]
            for step in result.steps
        ]
        print()
        print(render_table(["step", "server A holds", "server B holds"], rows, title=title))
        print(f"  concurrent writes preserved: {result.concurrency_preserved}")
        print(f"  update lost:                 {result.lost_update}")
        print(f"  final value everywhere:      {result.final_values}")

    # The oracle's summary across all mechanisms in the library.
    print()
    rows = []
    for name in ("causal_history", "server_vv", "dvv", "dvvset", "client_vv", "dotted_vve"):
        report = check_store(replay_trace(figure1_trace(), create(name)).store)
        rows.append([name, report.total_lost_updates, report.total_false_concurrency,
                     report.is_correct])
    print(render_table(
        ["mechanism", "lost updates", "false concurrency", "correct"],
        rows,
        title="Oracle verdict on the Figure 1 trace",
    ))


if __name__ == "__main__":
    main()
