#!/usr/bin/env python3
"""A Riak-style cluster under load: metadata size and request latency.

This example reproduces, at laptop scale, the evaluation the brief
announcement cites: the same closed-loop read-modify-write workload is run
against a simulated 3-node cluster (quorum R=W=2, read repair, anti-entropy)
once for each causality mechanism, and the per-request latency plus the
causality-metadata footprint are reported.  Because the simulated network
charges transmission time per byte, the only difference between runs is the
size of the clocks each mechanism ships around — which is exactly the paper's
point.

Run with::

    python examples/riak_cluster_simulation.py
"""

from __future__ import annotations

from repro.analysis import analyze_requests, measure_simulated_cluster, render_table
from repro.clocks import create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster
from repro.network import FixedLatency, SizeDependentLatency
from repro.workloads import ClosedLoopConfig, run_closed_loop_workload

MECHANISMS = ["dvvset", "dvv", "client_vv", "causal_history"]
CLIENTS = 24
DURATION_MS = 800.0


def run_one(mechanism_name: str):
    cluster = SimulatedCluster(
        create(mechanism_name),
        server_ids=("riak1", "riak2", "riak3"),
        quorum=QuorumConfig(n=3, r=2, w=2),
        latency=SizeDependentLatency(base=FixedLatency(0.25), bytes_per_ms=600.0),
        anti_entropy_interval_ms=50.0,
        seed=2012,
    )
    config = ClosedLoopConfig(
        keys=("session:42", "cart:42"),
        think_time_ms=5.0,
        write_fraction=0.6,
        stop_at_ms=DURATION_MS,
    )
    run_closed_loop_workload(cluster, client_count=CLIENTS, config=config)
    latency = analyze_requests(mechanism_name, cluster.all_request_records(),
                               duration_ms=DURATION_MS)
    metadata = measure_simulated_cluster(cluster)
    return latency, metadata, cluster.transport.stats


def main() -> None:
    rows = []
    for name in MECHANISMS:
        latency, metadata, transport = run_one(name)
        rows.append([
            name,
            latency.requests,
            round(latency.overall.mean, 2),
            round(latency.overall.p95, 2),
            round(latency.mean_context_bytes, 1),
            metadata.total_bytes,
            transport.bytes_sent,
        ])
    print(render_table(
        ["mechanism", "requests", "mean latency ms", "p95 ms",
         "context bytes/request", "stored metadata bytes", "bytes on the wire"],
        rows,
        title=f"Simulated 3-node cluster, {CLIENTS} closed-loop clients, identical workload",
    ))
    print()
    print("Reading the table: the DVV-family mechanisms keep the causal context")
    print("bounded by the replication degree (3 servers), so requests carry and")
    print("store less metadata and finish sooner; per-client version vectors and")
    print("explicit causal histories grow with the number of clients/writes and")
    print("pay for it in latency — the effect the paper reports from Riak.")


if __name__ == "__main__":
    main()
