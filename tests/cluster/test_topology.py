"""The topology layer: DC assignment, DC-aware placement, per-DC fallbacks."""

import pytest

from repro.cluster import (
    DEFAULT_DC,
    ConsistentHashRing,
    Membership,
    PlacementService,
    QuorumConfig,
    Topology,
)
from repro.core.exceptions import ConfigurationError


class TestTopology:
    def test_assignment_and_queries(self):
        topology = Topology({"n1": "east", "n2": "east", "n3": "west"})
        assert topology.dc_of("n1") == "east"
        assert topology.dc_of("n3") == "west"
        assert topology.datacenters() == ["east", "west"]
        assert topology.nodes_in("east") == ["n1", "n2"]
        assert topology.is_local("n1", "n2")
        assert not topology.is_local("n1", "n3")
        assert topology.spans_multiple_dcs
        assert "n1" in topology and "nope" not in topology
        assert len(topology) == 3

    def test_unknown_nodes_fall_into_default_dc(self):
        topology = Topology({"n1": "east"})
        assert topology.dc_of("stranger") == DEFAULT_DC

    def test_single_dc_constructor_spans_one_dc(self):
        topology = Topology.single_dc(["a", "b", "c"])
        assert not topology.spans_multiple_dcs
        assert topology.datacenters() == [DEFAULT_DC]

    def test_striped_deals_round_robin(self):
        topology = Topology.striped(["n1", "n2", "n3", "n4"], ["east", "west"])
        assert topology.nodes_in("east") == ["n1", "n3"]
        assert topology.nodes_in("west") == ["n2", "n4"]

    def test_reassign_moves_node(self):
        topology = Topology({"n1": "east"})
        topology.assign("n1", "west")
        assert topology.dc_of("n1") == "west"
        topology.forget("n1")
        assert topology.dc_of("n1") == DEFAULT_DC

    def test_empty_ids_rejected(self):
        topology = Topology()
        with pytest.raises(ConfigurationError):
            topology.assign("", "east")
        with pytest.raises(ConfigurationError):
            topology.assign("n1", "")

    def test_describe(self):
        topology = Topology({"n1": "east", "n2": "west"})
        assert topology.describe() == {"east": ["n1"], "west": ["n2"]}


class TestRingSpread:
    def test_spread_covers_every_group(self):
        ring = ConsistentHashRing(["n1", "n2", "n3", "n4", "n5", "n6"])
        topology = Topology.striped(["n1", "n2", "n3", "n4", "n5", "n6"],
                                    ["east", "west"])
        for key in ("cart", "user", "inv", "a", "b", "c"):
            spread = ring.preference_list_spread(key, 3, topology.dc_of)
            assert len(spread) == 3
            assert len(set(spread)) == 3
            assert {topology.dc_of(node) for node in spread} == {"east", "west"}

    def test_spread_degenerates_to_plain_walk_with_one_group(self):
        ring = ConsistentHashRing(["n1", "n2", "n3", "n4"])
        for key in ("cart", "user", "inv"):
            assert (ring.preference_list_spread(key, 3, lambda _n: "dc") ==
                    ring.preference_list(key, 3))

    def test_spread_first_node_matches_plain_walk(self):
        # The key's closest node always leads, spread or not.
        ring = ConsistentHashRing(["n1", "n2", "n3", "n4", "n5", "n6"])
        topology = Topology.striped(["n1", "n2", "n3", "n4", "n5", "n6"],
                                    ["east", "west"])
        for key in ("cart", "user", "inv", "x"):
            assert (ring.preference_list_spread(key, 3, topology.dc_of)[0]
                    == ring.preference_list(key, 1)[0])

    def test_spread_with_more_slots_than_groups_fills_from_ring_order(self):
        ring = ConsistentHashRing(["n1", "n2", "n3", "n4"])
        topology = Topology.striped(["n1", "n2", "n3", "n4"], ["east", "west"])
        spread = ring.preference_list_spread("k", 4, topology.dc_of)
        assert sorted(spread) == ["n1", "n2", "n3", "n4"]


class TestDcAwarePlacement:
    def _service(self, sloppy=True):
        servers = ["n1", "n2", "n3", "n4", "n5", "n6"]
        ring = ConsistentHashRing(servers)
        topology = Topology.striped(servers, ["east", "west"])
        membership = Membership(servers, topology=topology)
        config = QuorumConfig(n=3, r=2, w=2, sloppy=sloppy)
        return PlacementService(ring, membership, config,
                                topology=topology), topology

    def test_primaries_span_both_dcs(self):
        placement, topology = self._service()
        for key in ("cart", "user", "inv", "k1", "k2"):
            primaries = placement.primary_replicas(key)
            assert len(primaries) == 3
            assert {topology.dc_of(node) for node in primaries} == {"east", "west"}

    def test_extended_list_leads_with_primaries(self):
        placement, _ = self._service()
        for key in ("cart", "user", "inv"):
            extended = placement.extended_preference_list(key)
            assert extended[:3] == placement.primary_replicas(key)
            assert sorted(extended) == ["n1", "n2", "n3", "n4", "n5", "n6"]

    def test_fallbacks_prefer_coordinator_dc(self):
        placement, topology = self._service()
        key = "cart"
        primaries = placement.primary_replicas(key)
        for near in ("n1", "n2", "n3", "n4", "n5", "n6"):
            fallbacks = placement.fallbacks_for(key, exclude=primaries, near=near)
            near_dc = topology.dc_of(near)
            dcs = [topology.dc_of(node) for node in fallbacks]
            # Same-DC candidates first, then the rest; within each half the
            # ring order is preserved (stable partition).
            first_remote = next((i for i, dc in enumerate(dcs) if dc != near_dc),
                                len(dcs))
            assert all(dc != near_dc for dc in dcs[first_remote:])

    def test_fallbacks_without_near_keep_ring_order(self):
        placement, _ = self._service()
        key = "cart"
        primaries = placement.primary_replicas(key)
        no_near = placement.fallbacks_for(key, exclude=primaries)
        extended = placement.extended_preference_list(key)
        assert no_near == [n for n in extended if n not in primaries]

    def test_no_topology_placement_unchanged(self):
        # Without a topology the service behaves exactly as before.
        servers = ["n1", "n2", "n3", "n4", "n5", "n6"]
        ring = ConsistentHashRing(servers)
        plain = PlacementService(ring, Membership(servers),
                                 QuorumConfig(n=3, r=2, w=2))
        for key in ("cart", "user", "inv"):
            assert plain.primary_replicas(key) == ring.preference_list(key, 3)
            assert (plain.fallbacks_for(key, exclude=(), near="n1")
                    == plain.fallbacks_for(key, exclude=()))

    def test_single_dc_topology_is_identity(self):
        servers = ["n1", "n2", "n3", "n4"]
        ring = ConsistentHashRing(servers)
        topology = Topology.single_dc(servers)
        service = PlacementService(ring, Membership(servers, topology=topology),
                                   QuorumConfig(n=3, r=2, w=2), topology=topology)
        for key in ("cart", "user"):
            assert service.primary_replicas(key) == ring.preference_list(key, 3)


class TestAsyncioBackendTopology:
    def test_asyncio_cluster_is_dc_aware_and_converges(self):
        """The topology threads into the asyncio backend identically: DC-spread
        primaries, and a real-socket workload still converges under it."""
        import asyncio

        from repro.clocks import create
        from repro.kvstore.asyncio_cluster import AsyncioCluster

        servers = ("n1", "n2", "n3", "n4")
        topology = Topology.striped(servers, ["east", "west"])

        async def run():
            cluster = AsyncioCluster(
                create("dvv"), server_ids=servers,
                quorum=QuorumConfig(n=3, r=2, w=2, sloppy=True),
                topology=topology,
                anti_entropy_interval_ms=40.0,
            )
            async with cluster:
                for key in ("cart", "user"):
                    primaries = cluster.placement.primary_replicas(key)
                    assert {topology.dc_of(node) for node in primaries} == \
                        {"east", "west"}
                    assert cluster.membership.dc_of(primaries[0]) == \
                        topology.dc_of(primaries[0])
                client = await cluster.client("c0")
                for index in range(4):
                    await client.put("cart", f"v{index}")
                    await client.get("cart")
                await cluster.converge(timeout_s=15.0)
                assert cluster.is_converged()
            return cluster

        asyncio.run(run())


class TestMembershipDc:
    def test_members_carry_their_dc(self):
        topology = Topology({"n1": "east", "n2": "west"})
        membership = Membership(["n1", "n2"], topology=topology)
        assert membership.dc_of("n1") == "east"
        assert membership.dc_of("n2") == "west"

    def test_explicit_dc_on_add_updates_topology(self):
        topology = Topology({"n1": "east"})
        membership = Membership(["n1"], topology=topology)
        membership.add("n9", dc="west")
        assert membership.dc_of("n9") == "west"
        assert topology.dc_of("n9") == "west"

    def test_up_nodes_in_scopes_liveness_per_dc(self):
        topology = Topology({"n1": "east", "n2": "east", "n3": "west"})
        membership = Membership(["n1", "n2", "n3"], topology=topology)
        membership.mark_down("n1")
        assert membership.up_nodes_in("east") == ["n2"]
        assert membership.up_nodes_in("west") == ["n3"]

    def test_without_topology_everyone_is_in_default_dc(self):
        membership = Membership(["n1", "n2"])
        assert membership.dc_of("n1") == DEFAULT_DC
        assert membership.up_nodes_in(DEFAULT_DC) == ["n1", "n2"]
