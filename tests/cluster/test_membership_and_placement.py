"""Unit tests for membership and the placement service (preference lists, quorums)."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ConsistentHashRing,
    Membership,
    NodeStatus,
    PlacementService,
    QuorumConfig,
)
from repro.core import ConfigurationError


class TestMembership:
    def test_add_and_status(self):
        membership = Membership(["A", "B"])
        assert membership.nodes() == ["A", "B"]
        assert membership.is_up("A")
        assert membership.status("A") is NodeStatus.UP

    def test_mark_down_and_up(self):
        membership = Membership(["A", "B"])
        membership.mark_down("B")
        assert not membership.is_up("B")
        assert membership.up_nodes() == ["A"]
        membership.mark_up("B")
        assert membership.is_up("B")

    def test_unknown_node_errors(self):
        membership = Membership(["A"])
        with pytest.raises(ConfigurationError):
            membership.mark_down("Z")
        with pytest.raises(ConfigurationError):
            membership.status("Z")

    def test_duplicate_add_rejected(self):
        membership = Membership(["A"])
        with pytest.raises(ConfigurationError):
            membership.add("A")

    def test_remove(self):
        membership = Membership(["A", "B"])
        membership.remove("A")
        assert "A" not in membership
        assert len(membership) == 1

    def test_version_bumps_on_every_mutation(self):
        membership = Membership(["A", "B"])
        version = membership.version
        membership.mark_down("A")
        assert membership.version == version + 1
        membership.mark_down("A")            # no-op: already down
        assert membership.version == version + 1
        membership.mark_up("A")
        membership.add("C")
        membership.remove("C")
        assert membership.version == version + 4

    def test_listeners_observe_churn(self):
        events = []
        membership = Membership(["A"])
        membership.subscribe(lambda node_id, event: events.append((node_id, event)))
        membership.add("B")
        membership.mark_down("B")
        membership.mark_up("B")
        membership.remove("B")
        membership.remove("B")               # no-op: already gone
        assert events == [("B", "added"), ("B", "down"), ("B", "up"), ("B", "removed")]


class TestQuorumConfig:
    def test_defaults(self):
        config = QuorumConfig()
        assert (config.n, config.r, config.w) == (3, 2, 2)
        assert config.overlapping

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuorumConfig(n=0)
        with pytest.raises(ConfigurationError):
            QuorumConfig(n=3, r=4)
        with pytest.raises(ConfigurationError):
            QuorumConfig(n=3, w=0)

    def test_non_overlapping(self):
        assert not QuorumConfig(n=3, r=1, w=1).overlapping


class TestPlacementService:
    def make(self, nodes=("A", "B", "C", "D"), sloppy=True, n=3):
        ring = ConsistentHashRing(nodes, virtual_nodes=16)
        membership = Membership(nodes)
        config = QuorumConfig(n=n, r=min(2, n), w=min(2, n), sloppy=sloppy)
        return PlacementService(ring, membership, config), membership

    def test_active_replicas_all_up(self):
        placement, _ = self.make()
        replicas = placement.active_replicas("key")
        assert len(replicas) == 3
        assert replicas == placement.primary_replicas("key")

    def test_strict_quorum_shrinks_on_failure(self):
        placement, membership = self.make(sloppy=False)
        primary = placement.primary_replicas("key")
        membership.mark_down(primary[0])
        active = placement.active_replicas("key")
        assert len(active) == 2
        assert primary[0] not in active

    def test_sloppy_quorum_substitutes_fallback(self):
        placement, membership = self.make(sloppy=True)
        primary = placement.primary_replicas("key")
        membership.mark_down(primary[0])
        active = placement.active_replicas("key")
        assert len(active) == 3
        assert primary[0] not in active
        # the fallback is a node outside the primary list
        assert any(node not in primary for node in active)

    def test_coordinator_skips_down_nodes(self):
        placement, membership = self.make()
        primary = placement.primary_replicas("key")
        membership.mark_down(primary[0])
        assert placement.coordinator_for("key") != primary[0]

    def test_no_active_replicas_errors(self):
        placement, membership = self.make(nodes=("A",), n=1)
        membership.mark_down("A")
        with pytest.raises(ConfigurationError):
            placement.coordinator_for("key")

    def test_is_replica_and_describe(self):
        placement, _ = self.make()
        key = "key"
        primary = placement.primary_replicas(key)
        assert placement.is_replica(key, primary[0])
        description = placement.describe(key)
        assert description["coordinator"] == primary[0]
        assert description["primary"] == primary
        assert description["extended"][:len(primary)] == primary

    def test_extended_preference_list_walks_whole_ring(self):
        placement, _ = self.make()
        extended = placement.extended_preference_list("key")
        assert sorted(extended) == ["A", "B", "C", "D"]
        # Primaries come first, in ring order.
        assert extended[:3] == placement.primary_replicas("key")

    def test_extended_preference_list_ignores_membership(self):
        """Async mode discovers failures by deadline, not by the detector."""
        placement, membership = self.make()
        primary = placement.primary_replicas("key")
        membership.mark_down(primary[0])
        assert placement.extended_preference_list("key")[:3] == primary

    def test_fallbacks_exclude_contacted_nodes(self):
        placement, _ = self.make()
        extended = placement.extended_preference_list("key")
        fallbacks = placement.fallbacks_for("key", exclude=extended[:3])
        assert fallbacks == extended[3:]
        assert placement.fallbacks_for("key", exclude=extended) == []
