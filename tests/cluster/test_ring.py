"""Unit tests for the consistent-hashing ring."""

from __future__ import annotations

import pytest

from repro.cluster import ConsistentHashRing, rebalance_plan
from repro.core import ConfigurationError


class TestMembership:
    def test_add_and_remove(self):
        ring = ConsistentHashRing(["A", "B"], virtual_nodes=8)
        assert set(ring.nodes()) == {"A", "B"}
        ring.add_node("C")
        assert "C" in ring
        ring.remove_node("B")
        assert set(ring.nodes()) == {"A", "C"}
        assert len(ring) == 2

    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing(["A"])
        with pytest.raises(ConfigurationError):
            ring.add_node("A")

    def test_remove_unknown_is_noop(self):
        ring = ConsistentHashRing(["A"])
        ring.remove_node("Z")
        assert ring.nodes() == ["A"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(virtual_nodes=0)
        with pytest.raises(ConfigurationError):
            ConsistentHashRing([""])


class TestPlacement:
    def test_preference_list_has_distinct_nodes(self):
        ring = ConsistentHashRing(["A", "B", "C", "D"], virtual_nodes=16)
        for key in ("cart", "user:7", "another-key"):
            preference = ring.preference_list(key, 3)
            assert len(preference) == 3
            assert len(set(preference)) == 3

    def test_preference_list_caps_at_ring_size(self):
        ring = ConsistentHashRing(["A", "B"], virtual_nodes=8)
        assert len(ring.preference_list("k", 5)) == 2

    def test_placement_is_deterministic(self):
        ring_one = ConsistentHashRing(["A", "B", "C"], virtual_nodes=16)
        ring_two = ConsistentHashRing(["A", "B", "C"], virtual_nodes=16)
        for index in range(20):
            key = f"key-{index}"
            assert ring_one.preference_list(key, 3) == ring_two.preference_list(key, 3)

    def test_primary_is_first_of_preference_list(self):
        ring = ConsistentHashRing(["A", "B", "C"], virtual_nodes=16)
        assert ring.primary("k") == ring.preference_list("k", 3)[0]

    def test_empty_ring(self):
        ring = ConsistentHashRing()
        assert ring.preference_list("k", 2) == []
        with pytest.raises(ConfigurationError):
            ring.primary("k")
        with pytest.raises(ConfigurationError):
            ring.preference_list("k", 0)

    def test_removing_a_node_only_moves_its_keys(self):
        """Consistent hashing: keys not owned by the removed node keep their primary."""
        ring = ConsistentHashRing(["A", "B", "C", "D"], virtual_nodes=32)
        keys = [f"key-{i}" for i in range(200)]
        before = {key: ring.primary(key) for key in keys}
        ring.remove_node("D")
        moved = sum(1 for key in keys if ring.primary(key) != before[key])
        previously_on_d = sum(1 for key in keys if before[key] == "D")
        assert moved == previously_on_d

    def test_load_is_roughly_balanced(self):
        ring = ConsistentHashRing(["A", "B", "C", "D"], virtual_nodes=64)
        keys = [f"key-{i}" for i in range(2000)]
        histogram = ring.ownership_histogram(keys)
        assert set(histogram) == {"A", "B", "C", "D"}
        for count in histogram.values():
            assert 0.5 * 500 < count < 1.6 * 500


class TestRebalancePlan:
    def test_join_moves_only_keys_the_newcomer_owns(self):
        keys = [f"key-{i}" for i in range(100)]
        before = ConsistentHashRing(["A", "B", "C"], virtual_nodes=32)
        after = ConsistentHashRing(["A", "B", "C", "D"], virtual_nodes=32)
        moves = rebalance_plan(before, after, keys, replication=2)
        assert moves, "adding a node should move some keys"
        for move in moves:
            assert move.gained == ["D"] or "D" in move.owners_after
            # nothing is gained by nodes that were already owners
            assert not set(move.gained) & set(move.owners_before)
        # keys whose replica set is unchanged are not in the plan
        planned = {move.key for move in moves}
        for key in keys:
            if key not in planned:
                assert before.preference_list(key, 2) == after.preference_list(key, 2)

    def test_leave_reassigns_the_departed_nodes_keys(self):
        keys = [f"key-{i}" for i in range(100)]
        before = ConsistentHashRing(["A", "B", "C"], virtual_nodes=32)
        after = ConsistentHashRing(["A", "B"], virtual_nodes=32)
        moves = rebalance_plan(before, after, keys, replication=2)
        for move in moves:
            assert "C" in move.lost
            assert "C" not in move.owners_after

    def test_identical_rings_need_no_moves(self):
        keys = [f"key-{i}" for i in range(50)]
        ring_a = ConsistentHashRing(["A", "B"], virtual_nodes=16)
        ring_b = ConsistentHashRing(["A", "B"], virtual_nodes=16)
        assert rebalance_plan(ring_a, ring_b, keys, replication=2) == []

    def test_replication_validation(self):
        ring = ConsistentHashRing(["A"], virtual_nodes=4)
        with pytest.raises(ConfigurationError):
            rebalance_plan(ring, ring, ["k"], replication=0)
