"""Unit tests for :mod:`repro.clocks.ordered_vv` (Wang & Amza baseline)."""

from __future__ import annotations

import pytest

from repro.clocks import OrderedVersionVector
from repro.core import InvalidClockError, Ordering


class TestConstruction:
    def test_empty(self):
        vv = OrderedVersionVector.empty()
        assert len(vv) == 0
        assert vv.last_writer is None

    def test_invalid_last_writer_rejected(self):
        with pytest.raises(InvalidClockError):
            OrderedVersionVector({"A": 1}, last_writer="B")

    def test_negative_counter_rejected(self):
        with pytest.raises(InvalidClockError):
            OrderedVersionVector({"A": -1})


class TestIncrementAndMerge:
    def test_increment_records_last_writer(self):
        vv = OrderedVersionVector.empty().increment("A")
        assert vv.last_writer == "A"
        assert vv.get("A") == 1
        assert not vv.from_merge

    def test_merge_loses_single_writer_property(self):
        a = OrderedVersionVector.empty().increment("A")
        b = OrderedVersionVector.empty().increment("B")
        merged = a.merge(b)
        assert merged.from_merge
        assert merged.last_writer is None
        assert merged.get("A") == 1 and merged.get("B") == 1

    def test_to_version_vector(self):
        vv = OrderedVersionVector.empty().increment("A").increment("B").increment("A")
        assert vv.to_version_vector().entries() == {"A": 2, "B": 1}


class TestComparison:
    def test_o1_dominance_on_successor_chain(self):
        base = OrderedVersionVector.empty().increment("A")
        successor = base.increment("B")
        assert base.dominated_by(successor)
        assert not successor.dominated_by(base)
        assert base.compare(successor) is Ordering.BEFORE
        # no fallback comparisons were needed on this chain
        assert base.fallback_comparisons == 0

    def test_concurrent_versions_detected(self):
        base = OrderedVersionVector.empty().increment("A")
        left = base.increment("A")
        right = base.increment("B")
        assert left.compare(right) is Ordering.CONCURRENT

    def test_equal(self):
        base = OrderedVersionVector.empty().increment("A")
        same = OrderedVersionVector({"A": 1}, last_writer="A")
        assert base.compare(same) is Ordering.EQUAL

    def test_merge_falls_back_to_full_comparison(self):
        a = OrderedVersionVector.empty().increment("A")
        b = OrderedVersionVector.empty().increment("B")
        merged = a.merge(b)
        # Comparing against a merged vector cannot use the O(1) rule.
        a.dominated_by(merged)
        assert a.fallback_comparisons >= 1

    def test_ordering_matches_plain_vv_semantics(self):
        """On single-increment chains the verdicts equal plain VV comparison."""
        chain = OrderedVersionVector.empty()
        stamps = []
        for index, actor in enumerate(["A", "B", "A", "C", "B"]):
            chain = chain.increment(actor)
            stamps.append(chain)
        for earlier_index, earlier in enumerate(stamps):
            for later in stamps[earlier_index + 1:]:
                assert earlier.compare(later) is Ordering.BEFORE
                assert earlier.to_version_vector().compare(later.to_version_vector()) \
                    is Ordering.BEFORE
