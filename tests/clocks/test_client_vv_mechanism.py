"""Tests for the per-client version-vector baseline (Riak pre-DVV) and the
WinFS-style dotted-VVE mechanism."""

from __future__ import annotations

from repro.clocks import ClientVVMechanism, DottedVVEMechanism, Sibling
from repro.core import CausalHistory, Dot


def sibling(value, writer, seq):
    dot = Dot(writer, seq)
    return Sibling(value=value, origin_dot=dot, history=CausalHistory(dot), writer=writer)


class TestClientVVCorrectness:
    def test_concurrent_client_writes_kept(self):
        m = ClientVVMechanism()
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        stale = m.read(state).context
        state = m.write(state, stale, sibling("v2", "c1", 2), "A", "c1")
        state = m.write(state, stale, sibling("v3", "c2", 1), "A", "c2")
        assert sorted(s.value for s in m.siblings(state)) == ["v2", "v3"]

    def test_concurrency_survives_merge(self):
        m = ClientVVMechanism()
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        stale = m.read(state).context
        state = m.write(state, stale, sibling("v2", "c1", 2), "A", "c1")
        state = m.write(state, stale, sibling("v3", "c2", 1), "A", "c2")
        replica_b = m.merge(m.empty_state(), state)
        assert sorted(s.value for s in m.siblings(replica_b)) == ["v2", "v3"]

    def test_same_client_writing_through_two_servers_keeps_counter_monotone(self):
        """The mint step must clear counters seen via other coordinators."""
        m = ClientVVMechanism()
        state_a = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        # replica B learns about v1
        state_b = m.merge(m.empty_state(), state_a)
        ctx = m.read(state_b).context
        state_b = m.write(state_b, ctx, sibling("v2", "c1", 2), "B", "c1")
        (clock, _), = state_b
        assert clock.get("c1") == 2


class TestClientVVGrowth:
    def test_metadata_entries_grow_with_number_of_clients(self):
        """The inefficiency the paper points out: one VV entry per client."""
        m = ClientVVMechanism()
        state = m.empty_state()
        client_count = 25
        for index in range(client_count):
            context = m.read(state).context
            state = m.write(state, context, sibling(f"v{index}", f"client-{index}", 1),
                            "A", f"client-{index}")
        # a single surviving sibling, but its vector has one entry per client
        assert len(m.siblings(state)) == 1
        assert m.metadata_entries(state) == client_count

    def test_context_grows_with_number_of_clients(self):
        m = ClientVVMechanism()
        state = m.empty_state()
        for index in range(10):
            context = m.read(state).context
            state = m.write(state, context, sibling(f"v{index}", f"client-{index}", 1),
                            "A", f"client-{index}")
        assert m.context_entries(m.read(state).context) == 10


class TestDottedVVEMechanism:
    def test_preserves_concurrency_like_dvv(self):
        m = DottedVVEMechanism()
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        stale = m.read(state).context
        state = m.write(state, stale, sibling("v2", "c1", 2), "A", "c1")
        state = m.write(state, stale, sibling("v3", "c2", 1), "A", "c2")
        replica_b = m.merge(m.empty_state(), state)
        assert sorted(s.value for s in m.siblings(replica_b)) == ["v2", "v3"]

    def test_dots_minted_per_server(self):
        m = DottedVVEMechanism()
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        (clock, _), = state
        assert clock.dot == Dot("A", 1)

    def test_interleaved_writes_accumulate_exceptions(self):
        """Interleaving concurrent writes through two servers gives VVE pasts
        with exceptions — the footprint overhead measured by experiment E6."""
        m = DottedVVEMechanism()
        state = m.empty_state()
        # two concurrent branches from the same (empty) context
        state = m.write(state, m.empty_context(), sibling("left", "c1", 1), "A", "c1")
        state = m.write(state, m.empty_context(), sibling("right", "c2", 1), "A", "c2")
        # a client that read only the *second* branch writes again
        from repro.clocks.vve import VersionVectorWithExceptions
        partial_context = VersionVectorWithExceptions.from_dots([Dot("A", 2)])
        state = m.write(state, partial_context, sibling("third", "c3", 1), "A", "c3")
        clocks = [clock for clock, _ in state]
        assert any(clock.causal_past.exceptions for clock in clocks)

    def test_metadata_at_least_as_large_as_dvv(self):
        from repro.clocks import DVVMechanism
        vve_m, dvv_m = DottedVVEMechanism(), DVVMechanism()
        vve_state, dvv_state = vve_m.empty_state(), dvv_m.empty_state()
        for index in range(12):
            vve_ctx = vve_m.read(vve_state).context
            dvv_ctx = dvv_m.read(dvv_state).context
            writer = f"c{index}"
            coordinator = "A" if index % 2 else "B"
            vve_state = vve_m.write(vve_state, vve_ctx, sibling(f"v{index}", writer, 1),
                                    coordinator, writer)
            dvv_state = dvv_m.write(dvv_state, dvv_ctx, sibling(f"v{index}", writer, 1),
                                    coordinator, writer)
        assert vve_m.metadata_bytes(vve_state) >= dvv_m.metadata_bytes(dvv_state)
