"""Tests for version-vector pruning policies and the pruned client-VV mechanism."""

from __future__ import annotations

import pytest

from repro.clocks import (
    ClientVVMechanism,
    DropOldestWriters,
    GoldingSafePruning,
    NoPruning,
    PrunedClientVVMechanism,
    Sibling,
    SizeBoundedPruning,
)
from repro.core import CausalHistory, Dot, Ordering, VersionVector


def sibling(value, writer, seq):
    dot = Dot(writer, seq)
    return Sibling(value=value, origin_dot=dot, history=CausalHistory(dot), writer=writer)


class TestPolicies:
    def test_no_pruning_is_identity(self):
        vv = VersionVector({"A": 1, "B": 2})
        assert NoPruning().prune(vv) == vv

    def test_size_bounded_keeps_largest_counters(self):
        policy = SizeBoundedPruning(2)
        vv = VersionVector({"old": 1, "mid": 5, "new": 9})
        pruned = policy.prune(vv)
        assert pruned.actors() == {"mid", "new"}
        assert policy.pruned_entries == 1

    def test_size_bounded_no_op_under_threshold(self):
        policy = SizeBoundedPruning(5)
        vv = VersionVector({"A": 1})
        assert policy.prune(vv) == vv

    def test_size_bounded_validation(self):
        with pytest.raises(ValueError):
            SizeBoundedPruning(0)

    def test_drop_oldest(self):
        policy = DropOldestWriters(2)
        vv = VersionVector({"a": 1, "b": 2, "c": 3, "d": 4})
        assert policy.prune(vv).actors() == {"c", "d"}
        # too few entries: nothing dropped
        assert policy.prune(VersionVector({"a": 1})).actors() == {"a"}

    def test_golding_safe_pruning_only_drops_globally_known_entries(self):
        policy = GoldingSafePruning()
        policy.observe_replica_knowledge([
            VersionVector({"A": 3, "B": 1}),
            VersionVector({"A": 2, "B": 4}),
        ])
        # floor is {A:2, B:1}
        vv = VersionVector({"A": 2, "B": 3, "C": 1})
        pruned = policy.prune(vv)
        assert pruned.entries() == {"B": 3, "C": 1}

    def test_golding_safety_property(self):
        """Safe pruning never changes the relative order of vectors that are
        both above the global floor."""
        policy = GoldingSafePruning()
        policy.observe_replica_knowledge([VersionVector({"A": 2}), VersionVector({"A": 2})])
        older = VersionVector({"A": 3})
        newer = VersionVector({"A": 4})
        assert policy.prune(older).compare(policy.prune(newer)) is older.compare(newer)


class TestPrunedMechanism:
    def _concurrent_writer_state(self, mechanism, writers):
        state = mechanism.empty_state()
        for index in range(writers):
            context = mechanism.read(state).context
            state = mechanism.write(state, context, sibling(f"v{index}", f"client-{index}", 1),
                                    "A", f"client-{index}")
        return state

    def test_pruning_caps_metadata(self):
        exact = ClientVVMechanism()
        pruned = PrunedClientVVMechanism(SizeBoundedPruning(5))
        exact_state = self._concurrent_writer_state(exact, 20)
        pruned_state = self._concurrent_writer_state(pruned, 20)
        assert pruned.metadata_entries(pruned_state) <= 5 * max(1, len(pruned.siblings(pruned_state)))
        assert pruned.metadata_entries(pruned_state) < exact.metadata_entries(exact_state)

    def test_pruning_discards_causal_information(self):
        """A pruned vector no longer descends vectors it used to descend —
        the information loss behind the paper's 'unsafe' warning.  (The
        workload-level damage — lost updates and false concurrency — is
        asserted on a fixed seed in the integration tests and measured by
        benchmark E3.)"""
        chain = VersionVector.empty()
        for index in range(12):
            chain = chain.increment(f"client-{index}")
        policy = SizeBoundedPruning(3)
        pruned_chain = policy.prune(chain)
        # The unpruned vector descends every earlier prefix; the pruned one
        # no longer does, so a later version can appear concurrent with (or
        # even dominated by) an older one at another replica.
        earlier = VersionVector({f"client-{i}": 1 for i in range(6)})
        assert chain.descends(earlier)
        assert not pruned_chain.descends(earlier)
        assert pruned_chain.compare(earlier) is Ordering.CONCURRENT

    def test_pruned_mechanism_damages_multi_replica_workloads(self):
        """Replaying a concurrency-heavy workload under aggressive pruning
        produces at least one lost update or false-concurrency pair."""
        from repro.analysis import check_store
        from repro.workloads import WorkloadConfig, generate_workload, replay_trace

        trace = generate_workload(WorkloadConfig(
            clients=16, keys=2, operations=150, stale_read_probability=0.3, seed=7))
        pruned_report = check_store(
            replay_trace(trace, PrunedClientVVMechanism(SizeBoundedPruning(5))).store)
        exact_report = check_store(replay_trace(trace, ClientVVMechanism()).store)
        assert exact_report.total_lost_updates == 0
        assert exact_report.total_false_concurrency == 0
        assert (pruned_report.total_lost_updates + pruned_report.total_false_concurrency) > 0

    def test_name_includes_policy(self):
        mechanism = PrunedClientVVMechanism(SizeBoundedPruning(7))
        assert "7" in mechanism.name
        assert mechanism.exact is False
