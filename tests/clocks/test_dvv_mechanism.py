"""Unit tests for the DVV and DVVSet mechanisms (the paper's proposal)."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, DVVSetMechanism, Sibling
from repro.core import CausalHistory, Dot, VersionVector


def sibling(value, writer, seq, history_events=()):
    dot = Dot(writer, seq)
    return Sibling(value=value, origin_dot=dot,
                   history=CausalHistory(dot, history_events), writer=writer)


@pytest.fixture(params=[DVVMechanism, DVVSetMechanism], ids=["dvv", "dvvset"])
def mechanism(request):
    return request.param()


class TestFigure1cBehaviour:
    def test_stale_context_write_creates_concurrent_siblings(self, mechanism):
        m = mechanism
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        context_after_v1 = m.read(state).context

        state = m.write(state, context_after_v1, sibling("v2", "c1", 2), "A", "c1")
        # c2 still holds the context from before v2 existed.
        state = m.write(state, context_after_v1, sibling("v3", "c2", 1), "A", "c2")

        assert sorted(s.value for s in m.siblings(state)) == ["v2", "v3"]

    def test_siblings_survive_replica_merge(self, mechanism):
        m = mechanism
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        ctx = m.read(state).context
        state = m.write(state, ctx, sibling("v2", "c1", 2), "A", "c1")
        state = m.write(state, ctx, sibling("v3", "c2", 1), "A", "c2")

        replica_b = m.merge(m.empty_state(), state)
        assert sorted(s.value for s in m.siblings(replica_b)) == ["v2", "v3"]

    def test_resolving_write_collapses_siblings(self, mechanism):
        m = mechanism
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        ctx = m.read(state).context
        state = m.write(state, ctx, sibling("v2", "c1", 2), "A", "c1")
        state = m.write(state, ctx, sibling("v3", "c2", 1), "A", "c2")

        resolving_ctx = m.read(state).context
        state = m.write(state, resolving_ctx, sibling("v4", "c3", 1), "A", "c3")
        assert [s.value for s in m.siblings(state)] == ["v4"]


class TestMetadataBounds:
    def test_metadata_entries_bounded_by_servers_not_clients(self, mechanism):
        """The paper's size claim: many clients through few servers stays small."""
        m = mechanism
        servers = ["A", "B", "C"]
        state = m.empty_state()
        for index in range(60):
            client = f"client-{index}"
            coordinator = servers[index % len(servers)]
            context = m.read(state).context
            state = m.write(state, context, sibling(f"v{index}", client, 1), coordinator, client)
        siblings_now = m.siblings(state)
        assert len(siblings_now) == 1  # read-modify-write chain: single survivor
        # With one live sibling the metadata is at most one entry per server
        # (plus the dot for the per-sibling DVV representation).
        assert m.metadata_entries(state) <= len(servers) + 1

    def test_context_entries_bounded_by_servers(self, mechanism):
        m = mechanism
        servers = ["A", "B", "C"]
        state = m.empty_state()
        for index in range(30):
            context = m.read(state).context
            state = m.write(state, context, sibling(f"v{index}", f"c{index}", 1),
                            servers[index % 3], f"c{index}")
        final_context = m.read(state).context
        assert m.context_entries(final_context) <= len(servers)


class TestDVVSpecifics:
    def test_dvv_clocks_have_server_dots(self):
        m = DVVMechanism()
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        (clock, stored), = state
        assert clock.dot.actor == "A"
        assert stored.value == "v1"

    def test_dvv_context_is_join_of_clocks(self):
        m = DVVMechanism()
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        state = m.write(state, m.empty_context(), sibling("v2", "c2", 1), "B", "c2")
        context = m.read(state).context
        assert context == VersionVector({"A": 1, "B": 1})

    def test_merge_prefers_more_informed_duplicate(self):
        """Same dot seen with different pasts (read repair race) keeps the
        larger past."""
        m = DVVMechanism()
        from repro.core import DottedVersionVector
        weaker = ((DottedVersionVector(Dot("A", 1)), sibling("v", "c1", 1)),)
        stronger = ((DottedVersionVector(Dot("A", 1), VersionVector({"B": 1})),
                     sibling("v", "c1", 1)),)
        merged = m.merge(weaker, stronger)
        (clock, _), = merged
        assert clock.causal_past == VersionVector({"B": 1})


class TestDVVSetSpecifics:
    def test_state_is_single_clock(self):
        m = DVVSetMechanism()
        state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
        assert state.entry_count() == 1
        assert state.counter("A") == 1

    def test_entry_count_stays_at_server_count_under_churn(self):
        m = DVVSetMechanism()
        state = m.empty_state()
        for index in range(40):
            context = m.read(state).context
            state = m.write(state, context, sibling(f"v{index}", f"c{index}", 1),
                            "A" if index % 2 else "B", f"c{index}")
        assert state.entry_count() == 2
