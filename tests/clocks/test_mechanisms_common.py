"""Behavioural contract tests run against *every* registered causality mechanism.

These are the properties any mechanism must satisfy to be usable by the store
at all (regardless of whether it tracks causality exactly): reads return what
was written, a read-modify-write supersedes what was read, merge is
commutative/idempotent at the sibling level, and metadata accounting is
non-negative and grows with content.
"""

from __future__ import annotations

import pytest

from repro.clocks import Sibling, merge_histories
from repro.core import CausalHistory, Dot


def make_sibling(value: str, writer: str, seq: int, history_events=()) -> Sibling:
    dot = Dot(writer, seq)
    return Sibling(
        value=value,
        origin_dot=dot,
        history=CausalHistory(dot, history_events),
        writer=writer,
    )


def fingerprint(mechanism, state):
    return sorted(sibling.origin_dot for sibling in mechanism.siblings(state))


class TestEmptyState:
    def test_empty_state_has_no_siblings(self, any_mechanism):
        state = any_mechanism.empty_state()
        assert any_mechanism.is_empty(state)
        assert any_mechanism.siblings(state) == []

    def test_empty_state_read(self, any_mechanism):
        read = any_mechanism.read(any_mechanism.empty_state())
        assert read.siblings == []

    def test_empty_metadata_is_zero_entries(self, any_mechanism):
        state = any_mechanism.empty_state()
        assert any_mechanism.metadata_entries(state) == 0
        assert any_mechanism.metadata_bytes(state) >= 0


class TestBasicWriteRead:
    def test_blind_write_is_readable(self, any_mechanism):
        m = any_mechanism
        sibling = make_sibling("v1", "c1", 1)
        state = m.write(m.empty_state(), m.empty_context(), sibling, "A", "c1")
        assert [s.value for s in m.siblings(state)] == ["v1"]
        assert not m.is_empty(state)

    def test_read_modify_write_supersedes(self, any_mechanism):
        m = any_mechanism
        first = make_sibling("v1", "c1", 1)
        state = m.write(m.empty_state(), m.empty_context(), first, "A", "c1")
        context = m.read(state).context
        second = make_sibling("v2", "c1", 2, history_events=first.history.events())
        state = m.write(state, context, second, "A", "c1")
        assert [s.value for s in m.siblings(state)] == ["v2"]

    def test_chain_of_rmw_keeps_single_version(self, any_mechanism):
        m = any_mechanism
        state = m.empty_state()
        previous_history = CausalHistory.empty()
        for seq in range(1, 6):
            context = m.read(state).context
            sibling = Sibling(
                value=f"v{seq}",
                origin_dot=Dot("c1", seq),
                history=CausalHistory(Dot("c1", seq), previous_history.events()),
                writer="c1",
            )
            state = m.write(state, context, sibling, "A", "c1")
            previous_history = sibling.history
        assert [s.value for s in m.siblings(state)] == ["v5"]

    def test_metadata_grows_after_write(self, any_mechanism):
        m = any_mechanism
        state = m.write(m.empty_state(), m.empty_context(), make_sibling("v1", "c1", 1), "A", "c1")
        assert m.metadata_entries(state) >= 1
        assert m.metadata_bytes(state) > 0

    def test_context_accounting_non_negative(self, any_mechanism):
        m = any_mechanism
        state = m.write(m.empty_state(), m.empty_context(), make_sibling("v1", "c1", 1), "A", "c1")
        context = m.read(state).context
        assert m.context_entries(context) >= 0
        assert m.context_bytes(context) >= 0
        assert m.context_entries(m.empty_context()) >= 0


class TestConcurrentWrites:
    def test_blind_concurrent_writes_create_siblings(self, any_mechanism):
        """Two context-less writes by different clients must both be visible
        at the coordinator (even inexact mechanisms detect this case)."""
        m = any_mechanism
        state = m.write(m.empty_state(), m.empty_context(), make_sibling("x", "c1", 1), "A", "c1")
        state = m.write(state, m.empty_context(), make_sibling("y", "c2", 1), "A", "c2")
        values = sorted(s.value for s in m.siblings(state))
        assert values == ["x", "y"]


class TestMerge:
    def _two_replica_states(self, m):
        shared = make_sibling("base", "c0", 1)
        state_a = m.write(m.empty_state(), m.empty_context(), shared, "A", "c0")
        state_b = m.write(m.empty_state(), m.empty_context(),
                          make_sibling("other", "c9", 1), "B", "c9")
        return state_a, state_b

    def test_merge_with_empty_is_identity_on_siblings(self, any_mechanism):
        m = any_mechanism
        state_a, _ = self._two_replica_states(m)
        merged = m.merge(state_a, m.empty_state())
        assert fingerprint(m, merged) == fingerprint(m, state_a)
        merged = m.merge(m.empty_state(), state_a)
        assert fingerprint(m, merged) == fingerprint(m, state_a)

    def test_merge_commutative_on_siblings(self, any_mechanism):
        m = any_mechanism
        state_a, state_b = self._two_replica_states(m)
        assert fingerprint(m, m.merge(state_a, state_b)) == fingerprint(m, m.merge(state_b, state_a))

    def test_merge_idempotent_on_siblings(self, any_mechanism):
        m = any_mechanism
        state_a, state_b = self._two_replica_states(m)
        merged = m.merge(state_a, state_b)
        assert fingerprint(m, m.merge(merged, merged)) == fingerprint(m, merged)

    def test_merge_keeps_unrelated_writes(self, any_mechanism):
        m = any_mechanism
        state_a, state_b = self._two_replica_states(m)
        merged = m.merge(state_a, state_b)
        values = sorted(s.value for s in m.siblings(merged))
        assert values == ["base", "other"]

    def test_merge_propagates_newer_version(self, any_mechanism):
        """A replica that missed an update learns it via merge."""
        m = any_mechanism
        first = make_sibling("v1", "c1", 1)
        state_a = m.write(m.empty_state(), m.empty_context(), first, "A", "c1")
        state_b = m.merge(m.empty_state(), state_a)

        context = m.read(state_a).context
        second = make_sibling("v2", "c1", 2, history_events=first.history.events())
        state_a = m.write(state_a, context, second, "A", "c1")

        state_b = m.merge(state_b, state_a)
        assert [s.value for s in m.siblings(state_b)] == ["v2"]
