"""Unit tests for :mod:`repro.clocks.lamport`."""

from __future__ import annotations

import pytest

from repro.clocks import LamportClock, LamportTimestamp
from repro.core import InvalidClockError


class TestLamportTimestamp:
    def test_ordering_by_time_then_actor(self):
        assert LamportTimestamp(1, "A") < LamportTimestamp(2, "A")
        assert LamportTimestamp(1, "A") < LamportTimestamp(1, "B")

    def test_validation(self):
        with pytest.raises(InvalidClockError):
            LamportTimestamp(-1, "A")
        with pytest.raises(InvalidClockError):
            LamportTimestamp(0, "")


class TestLamportClock:
    def test_tick_monotonic(self):
        clock = LamportClock("A")
        first = clock.tick()
        second = clock.tick()
        assert first < second
        assert second.time == 2

    def test_observe_jumps_past_received_timestamp(self):
        a = LamportClock("A")
        b = LamportClock("B", start=10)
        stamp = b.tick()
        received = a.observe(stamp)
        assert received.time == stamp.time + 1
        assert a.time == stamp.time + 1

    def test_observe_of_older_timestamp_still_advances(self):
        a = LamportClock("A", start=5)
        received = a.observe(LamportTimestamp(1, "B"))
        assert received.time == 6

    def test_peek_does_not_advance(self):
        clock = LamportClock("A")
        assert clock.peek().time == 1
        assert clock.time == 0

    def test_causal_delivery_order_is_respected(self):
        """If e1 happened before e2 (message chain), ts(e1) < ts(e2)."""
        a, b, c = LamportClock("A"), LamportClock("B"), LamportClock("C")
        send_a = a.tick()
        recv_b = b.observe(send_a)
        send_b = b.tick()
        recv_c = c.observe(send_b)
        assert send_a < recv_b < send_b < recv_c

    def test_validation(self):
        with pytest.raises(InvalidClockError):
            LamportClock("")
        with pytest.raises(InvalidClockError):
            LamportClock("A", start=-3)
