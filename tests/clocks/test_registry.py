"""Tests for the mechanism registry."""

from __future__ import annotations

import pytest

from repro.clocks import (
    CausalityMechanism,
    DVVMechanism,
    available,
    create,
    create_many,
    pruned_client_vv,
    register,
)
from repro.core import ConfigurationError


class TestRegistry:
    def test_default_mechanisms_present(self):
        names = available()
        for expected in ("dvv", "dvvset", "server_vv", "client_vv", "causal_history",
                         "dotted_vve", "client_vv_pruned_5"):
            assert expected in names

    def test_create_returns_fresh_instances(self):
        first = create("dvv")
        second = create("dvv")
        assert isinstance(first, DVVMechanism)
        assert first is not second

    def test_create_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            create("definitely-not-a-mechanism")

    def test_create_many(self):
        mechanisms = create_many(["dvv", "server_vv"])
        assert set(mechanisms) == {"dvv", "server_vv"}
        assert all(isinstance(m, CausalityMechanism) for m in mechanisms.values())

    def test_register_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            register("dvv", DVVMechanism)

    def test_register_overwrite_allowed_explicitly(self):
        register("dvv", DVVMechanism, overwrite=True)
        assert isinstance(create("dvv"), DVVMechanism)

    def test_register_custom_mechanism(self):
        class Custom(DVVMechanism):
            name = "custom_dvv"

        register("custom_dvv_test", Custom, overwrite=True)
        assert isinstance(create("custom_dvv_test"), Custom)

    def test_pruned_factory_threshold(self):
        mechanism = pruned_client_vv(9)
        assert "9" in mechanism.name
        assert mechanism.policy.max_entries == 9

    def test_pruned_registry_entries_use_distinct_thresholds(self):
        five = create("client_vv_pruned_5")
        twenty = create("client_vv_pruned_20")
        assert five.policy.max_entries == 5
        assert twenty.policy.max_entries == 20
