"""Tests for the per-server version-vector baseline (Figure 1b failure mode)."""

from __future__ import annotations

from repro.clocks import DVVMechanism, ServerVVMechanism, Sibling
from repro.core import CausalHistory, Dot, Ordering


def sibling(value, writer, seq):
    dot = Dot(writer, seq)
    return Sibling(value=value, origin_dot=dot, history=CausalHistory(dot), writer=writer)


def figure1_coordinator_state(mechanism):
    """Drive the coordinator through the Figure 1 write sequence."""
    m = mechanism
    state = m.write(m.empty_state(), m.empty_context(), sibling("v1", "c1", 1), "A", "c1")
    stale_context = m.read(state).context
    state = m.write(state, stale_context, sibling("v2", "c1", 2), "A", "c1")
    state = m.write(state, stale_context, sibling("v3", "c2", 1), "A", "c2")
    return m, state


class TestConflictDetectionAtCoordinator:
    def test_coordinator_detects_the_conflict(self):
        """At the coordinating server both versions are still visible
        (the paper: 'the same strategy can be used to detect concurrent
        writes from two clients')."""
        m, state = figure1_coordinator_state(ServerVVMechanism())
        assert sorted(s.value for s in m.siblings(state)) == ["v2", "v3"]

    def test_minted_vvs_falsely_dominate(self):
        """The problem: v3's vector dominates v2's ([2,0] < [3,0])."""
        m, state = figure1_coordinator_state(ServerVVMechanism())
        clocks = {stored.value: clock for clock, stored in state}
        assert clocks["v2"].compare(clocks["v3"]) is Ordering.BEFORE


class TestLostUpdateAtMerge:
    def test_merge_at_other_replica_drops_a_concurrent_version(self):
        """Figure 1b's lost update: after the server sync only one of the two
        concurrent versions survives."""
        m, state = figure1_coordinator_state(ServerVVMechanism())
        replica_b = m.merge(m.empty_state(), state)
        values = sorted(s.value for s in m.siblings(replica_b))
        assert values == ["v3"]          # v2 is gone

    def test_dvv_does_not_lose_the_update_on_the_same_trace(self):
        """Direct contrast with the mechanism the paper proposes."""
        m, state = figure1_coordinator_state(DVVMechanism())
        replica_b = m.merge(m.empty_state(), state)
        values = sorted(s.value for s in m.siblings(replica_b))
        assert values == ["v2", "v3"]

    def test_mechanism_is_flagged_inexact(self):
        assert ServerVVMechanism.exact is False
        assert DVVMechanism.exact is True


class TestSizeCharacteristics:
    def test_metadata_entries_bounded_by_servers(self):
        m = ServerVVMechanism()
        state = m.empty_state()
        for index in range(30):
            context = m.read(state).context
            state = m.write(state, context, sibling(f"v{index}", f"c{index}", 1),
                            "A" if index % 2 else "B", f"c{index}")
        # a single surviving version tagged by a vector over at most 2 servers
        assert m.metadata_entries(state) <= 2
