"""Unit tests for :mod:`repro.clocks.vve` (version vectors with exceptions)."""

from __future__ import annotations

import pytest

from repro.clocks import DottedVVE, VersionVectorWithExceptions
from repro.core import Dot, InvalidClockError, Ordering, VersionVector


class TestConstruction:
    def test_empty(self):
        vve = VersionVectorWithExceptions.empty()
        assert len(vve) == 0
        assert list(vve.dots()) == []

    def test_from_version_vector_has_no_exceptions(self):
        vve = VersionVectorWithExceptions.from_version_vector(VersionVector({"A": 3}))
        assert vve.exceptions == frozenset()
        assert len(vve) == 3

    def test_from_dots_builds_exact_set(self):
        vve = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("A", 3)])
        assert vve.contains_dot(Dot("A", 1))
        assert not vve.contains_dot(Dot("A", 2))
        assert vve.contains_dot(Dot("A", 3))
        assert vve.exceptions == frozenset({Dot("A", 2)})

    def test_exception_above_base_rejected(self):
        with pytest.raises(InvalidClockError):
            VersionVectorWithExceptions({"A": 2}, [Dot("A", 3)])


class TestAddAndMerge:
    def test_add_dot_above_base_creates_exceptions(self):
        vve = VersionVectorWithExceptions.empty().add_dot(Dot("A", 3))
        assert vve.base.get("A") == 3
        assert vve.exceptions == frozenset({Dot("A", 1), Dot("A", 2)})

    def test_add_dot_fills_exception(self):
        vve = VersionVectorWithExceptions.empty().add_dot(Dot("A", 3)).add_dot(Dot("A", 2))
        assert vve.exceptions == frozenset({Dot("A", 1)})

    def test_add_existing_dot_is_noop(self):
        vve = VersionVectorWithExceptions.from_dots([Dot("A", 1)])
        assert vve.add_dot(Dot("A", 1)) == vve

    def test_merge_is_set_union(self):
        left = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("A", 3)])
        right = VersionVectorWithExceptions.from_dots([Dot("A", 2), Dot("B", 1)])
        merged = left.merge(right)
        assert set(merged.dots()) == {Dot("A", 1), Dot("A", 2), Dot("A", 3), Dot("B", 1)}
        assert merged.exceptions == frozenset()

    def test_merge_commutative_idempotent(self):
        left = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("A", 4)])
        right = VersionVectorWithExceptions.from_dots([Dot("B", 2)])
        assert left.merge(right) == right.merge(left)
        assert left.merge(left) == left

    def test_next_dot(self):
        vve = VersionVectorWithExceptions.from_dots([Dot("A", 2)])
        assert vve.next_dot("A") == Dot("A", 3)
        assert vve.next_dot("B") == Dot("B", 1)


class TestComparison:
    def test_exact_subset_ordering(self):
        small = VersionVectorWithExceptions.from_dots([Dot("A", 1)])
        big = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("A", 2)])
        assert small.compare(big) is Ordering.BEFORE
        assert big.compare(small) is Ordering.AFTER

    def test_gap_breaks_descent(self):
        """[A:3 minus A2] does not descend [A:2] — unlike a plain VV."""
        with_gap = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("A", 3)])
        prefix = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("A", 2)])
        assert with_gap.compare(prefix) is Ordering.CONCURRENT

    def test_equal(self):
        a = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("B", 2)])
        b = VersionVectorWithExceptions.from_dots([Dot("B", 2), Dot("A", 1)])
        assert a.compare(b) is Ordering.EQUAL
        assert hash(a) == hash(b)

    def test_entry_count_includes_exceptions(self):
        vve = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("A", 4)])
        # base entry for A plus exceptions {A2, A3}
        assert vve.entry_count() == 3

    def test_to_causal_history(self):
        vve = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("A", 3)])
        assert vve.to_causal_history().events() == frozenset({Dot("A", 1), Dot("A", 3)})


class TestDottedVVE:
    def test_o1_happens_before(self):
        past = VersionVectorWithExceptions.from_dots([Dot("A", 1)])
        first = DottedVVE(Dot("A", 1), VersionVectorWithExceptions.empty())
        second = DottedVVE(Dot("A", 2), past)
        assert first.happens_before(second)
        assert second.compare(first) is Ordering.AFTER

    def test_concurrent_dotted_vve(self):
        shared_past = VersionVectorWithExceptions.from_dots([Dot("A", 1)])
        left = DottedVVE(Dot("A", 2), shared_past)
        right = DottedVVE(Dot("A", 3), shared_past)
        assert left.compare(right) is Ordering.CONCURRENT

    def test_to_causal_history_and_entry_count(self):
        past = VersionVectorWithExceptions.from_dots([Dot("A", 1), Dot("B", 2)])
        clock = DottedVVE(Dot("A", 3), past)
        history = clock.to_causal_history()
        assert history.event == Dot("A", 3)
        assert Dot("B", 2) in history
        assert Dot("B", 1) not in history  # the VVE past is exact, not a prefix
        assert clock.entry_count() == past.entry_count() + 1
