"""Property-based tests: exact mechanisms must match the causal-history oracle
on randomly generated storage workloads, and the inexact ones must fail only
in the documented ways.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_store
from repro.clocks import create
from repro.workloads import WorkloadConfig, generate_workload, replay_trace

EXACT = ["dvv", "dvvset", "client_vv", "dotted_vve", "causal_history"]


def workload_configs():
    return st.builds(
        WorkloadConfig,
        clients=st.integers(min_value=2, max_value=8),
        keys=st.integers(min_value=1, max_value=3),
        operations=st.integers(min_value=10, max_value=60),
        read_probability=st.floats(min_value=0.2, max_value=0.8),
        blind_write_probability=st.floats(min_value=0.0, max_value=0.2),
        forget_probability=st.floats(min_value=0.0, max_value=0.1),
        stale_read_probability=st.floats(min_value=0.0, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )


@settings(max_examples=25, deadline=None)
@given(config=workload_configs(), mechanism_name=st.sampled_from(EXACT))
def test_exact_mechanisms_never_lose_updates_or_invent_concurrency(config, mechanism_name):
    """The library-wide soundness property behind the paper's correctness claims."""
    trace = generate_workload(config)
    result = replay_trace(trace, create(mechanism_name))
    report = check_store(result.store)
    assert report.total_lost_updates == 0, report.per_key
    assert report.total_false_concurrency == 0, report.per_key


@settings(max_examples=15, deadline=None)
@given(config=workload_configs())
def test_replicas_converge_for_every_mechanism(config):
    """After full anti-entropy every replica of every key holds the same siblings."""
    trace = generate_workload(config)
    for mechanism_name in EXACT + ["server_vv", "client_vv_pruned_5"]:
        result = replay_trace(trace, create(mechanism_name))
        result.store.converge()
        assert result.store.is_converged()


CONTEXT_EXACT = ["dvv", "dvvset", "dotted_vve", "causal_history"]


@settings(max_examples=15, deadline=None)
@given(config=workload_configs())
def test_context_exact_mechanisms_agree_on_surviving_versions(config):
    """Mechanisms that track exactly the context-conveyed causality expose the
    same surviving version set after convergence.

    (The per-client version vector is excluded: its identifier space adds a
    per-writer total order on top of the context causality, so it may collapse
    a client's own unread writes — a documented semantic difference the
    correctness oracle reports as ``session_superseded``.)
    """
    trace = generate_workload(config)
    frontiers = {}
    for mechanism_name in CONTEXT_EXACT:
        result = replay_trace(trace, create(mechanism_name))
        result.store.converge()
        per_key = {}
        for key in result.store.write_log.keys():
            replica = result.store.replicas_for(key)[0]
            per_key[key] = frozenset(
                sibling.origin_dot for sibling in result.store.siblings(key, replica)
            )
        frontiers[mechanism_name] = per_key
    reference = frontiers[CONTEXT_EXACT[0]]
    for mechanism_name, frontier in frontiers.items():
        assert frontier == reference, f"{mechanism_name} disagrees with {CONTEXT_EXACT[0]}"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_dvv_metadata_stays_bounded_while_client_vv_grows(seed):
    """The size claim, as a property over random many-client workloads."""
    config = WorkloadConfig(clients=24, keys=1, operations=120,
                            stale_read_probability=0.2, seed=seed)
    trace = generate_workload(config)
    dvv_result = replay_trace(trace, create("dvv"))
    client_result = replay_trace(trace, create("client_vv"))
    dvv_max = dvv_result.store.max_metadata_entries_per_key()
    client_max = client_result.store.max_metadata_entries_per_key()
    servers = len(trace.server_ids)
    siblings = max(
        len(dvv_result.store.siblings("key-0", dvv_result.store.replicas_for("key-0")[0])), 1
    )
    # DVV: at most (#servers + 1 dot) entries per live sibling.
    assert dvv_max <= (servers + 1) * siblings
    # The per-client vector is never smaller than the DVV one on these workloads.
    assert client_max >= dvv_max
