"""Unit tests for :mod:`repro.clocks.vector_clock`."""

from __future__ import annotations

import pytest

from repro.clocks import DottedEventStamp, DottedVectorClock, VectorClock
from repro.core import Dot, InvalidClockError, Ordering, VersionVector


class TestVectorClock:
    def test_tick_increments_own_entry(self):
        clock = VectorClock("A")
        stamp = clock.tick()
        assert stamp == VersionVector({"A": 1})
        assert clock.vector.get("A") == 1

    def test_receive_merges_then_increments(self):
        a = VectorClock("A")
        b = VectorClock("B")
        message = a.send()
        received = b.receive(message)
        assert received.get("A") == 1
        assert received.get("B") == 1

    def test_message_chain_is_ordered(self):
        a, b = VectorClock("A"), VectorClock("B")
        first = a.send()
        b.receive(first)
        second = b.send()
        assert first.compare(second) is Ordering.BEFORE

    def test_independent_events_concurrent(self):
        a, b = VectorClock("A"), VectorClock("B")
        ea = a.tick()
        eb = b.tick()
        assert ea.compare(eb) is Ordering.CONCURRENT
        assert a.compare_to(eb) is Ordering.CONCURRENT

    def test_requires_actor(self):
        with pytest.raises(InvalidClockError):
            VectorClock("")


class TestDottedVectorClock:
    def test_tick_produces_dot_above_past(self):
        clock = DottedVectorClock("A")
        stamp = clock.tick()
        assert stamp.dot == Dot("A", 1)
        assert stamp.past == VersionVector.empty()

    def test_o1_happens_before_on_message_chain(self):
        a, b = DottedVectorClock("A"), DottedVectorClock("B")
        send = a.send()
        recv = b.receive(send)
        assert send.happens_before(recv)
        assert not recv.happens_before(send)
        assert send.compare(recv) is Ordering.BEFORE

    def test_concurrent_local_events(self):
        a, b = DottedVectorClock("A"), DottedVectorClock("B")
        ea = a.tick()
        eb = b.tick()
        assert ea.concurrent_with(eb)
        assert ea.compare(eb) is Ordering.CONCURRENT

    def test_dotted_and_plain_clocks_agree(self):
        """The dotted decomposition never changes the causal verdict."""
        plain_a, plain_b = VectorClock("A"), VectorClock("B")
        dotted_a, dotted_b = DottedVectorClock("A"), DottedVectorClock("B")

        plain_send = plain_a.send()
        dotted_send = dotted_a.send()
        plain_b.receive(plain_send)
        dotted_b.receive(dotted_send)
        plain_reply = plain_b.send()
        dotted_reply = dotted_b.send()

        assert plain_send.compare(plain_reply) is dotted_send.compare(dotted_reply)

    def test_stamp_to_vector(self):
        stamp = DottedEventStamp(Dot("A", 3), VersionVector({"A": 1, "B": 2}))
        assert stamp.to_vector() == VersionVector({"A": 3, "B": 2})

    def test_same_dot_is_equal(self):
        stamp = DottedEventStamp(Dot("A", 1), VersionVector())
        assert stamp.compare(stamp) is Ordering.EQUAL
        assert not stamp.concurrent_with(stamp)

    def test_requires_actor(self):
        with pytest.raises(InvalidClockError):
            DottedVectorClock("")
