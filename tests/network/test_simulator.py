"""Unit tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.core import SchedulingError, SimulationError
from repro.network import PeriodicTask, Simulation


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(5.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(3.0, lambda: order.append("middle"))
        sim.run_until_idle()
        assert order == ["early", "middle", "late"]
        assert sim.now == 5.0

    def test_same_time_events_run_in_scheduling_order(self):
        sim = Simulation()
        order = []
        for label in ("first", "second", "third"):
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_schedule_in_past_rejected(self):
        sim = Simulation()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SchedulingError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulation()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(1.0, lambda: chain(0))
        sim.run_until_idle()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 4.0

    def test_cancellation(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("no"))
        sim.schedule(2.0, lambda: fired.append("yes"))
        handle.cancel()
        sim.run_until_idle()
        assert fired == ["yes"]
        assert handle.cancelled


class TestRunControl:
    def test_run_until_stops_at_horizon(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run_until_idle()
        assert fired == [1, 10]

    def test_step(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        assert sim.step() is True
        assert sim.step() is False
        assert fired == ["a"]

    def test_max_events_guard(self):
        sim = Simulation()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.1, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=50)

    def test_determinism_with_same_seed(self):
        def run(seed):
            sim = Simulation(seed=seed)
            values = []
            for _ in range(10):
                sim.schedule(sim.rng.random(), lambda: values.append(sim.now))
            sim.run_until_idle()
            return values

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_counters(self):
        sim = Simulation()
        sim.bump("messages")
        sim.bump("messages", 4)
        assert sim.counters["messages"] == 5


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulation()
        ticks = []
        PeriodicTask(sim, interval=10.0, callback=lambda: ticks.append(sim.now))
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_stop(self):
        sim = Simulation()
        ticks = []
        task = PeriodicTask(sim, interval=10.0, callback=lambda: ticks.append(sim.now))
        sim.run(until=25.0)
        task.stop()
        sim.run_until_idle()
        assert ticks == [10.0, 20.0]

    def test_invalid_interval(self):
        with pytest.raises(SchedulingError):
            PeriodicTask(Simulation(), interval=0.0, callback=lambda: None)
