"""Unit tests for the latency models."""

from __future__ import annotations

import random

import pytest

from repro.core import ConfigurationError
from repro.network import (
    FixedLatency,
    LogNormalLatency,
    PerLinkLatency,
    SizeDependentLatency,
    UniformLatency,
)


class TestFixedLatency:
    def test_constant(self):
        model = FixedLatency(2.5)
        rng = random.Random(0)
        assert model.sample(rng) == 2.5
        assert model.sample(rng, size_bytes=10_000) == 2.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(-1)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(1)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert max(samples) - min(samples) > 0.5  # actually varies

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ConfigurationError):
            UniformLatency(-1.0, 1.0)


class TestLogNormalLatency:
    def test_positive_and_long_tailed(self):
        model = LogNormalLatency(median_ms=1.0, sigma=0.8)
        rng = random.Random(2)
        samples = sorted(model.sample(rng) for _ in range(500))
        assert all(s > 0 for s in samples)
        median = samples[len(samples) // 2]
        assert 0.7 < median < 1.4            # close to the configured median
        assert samples[-1] > 3 * median      # has a tail

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(median_ms=0)
        with pytest.raises(ConfigurationError):
            LogNormalLatency(sigma=-1)


class TestSizeDependentLatency:
    def test_larger_messages_take_longer(self):
        model = SizeDependentLatency(base=FixedLatency(1.0), bytes_per_ms=1000.0,
                                     per_message_overhead_ms=0.0)
        rng = random.Random(3)
        small = model.sample(rng, size_bytes=100)
        large = model.sample(rng, size_bytes=10_000)
        assert small == pytest.approx(1.1)
        assert large == pytest.approx(11.0)
        assert large > small

    def test_metadata_size_effect_matches_paper_direction(self):
        """A request carrying a big client-VV context is slower than one
        carrying a replica-bounded DVV context — the E4 effect in miniature."""
        model = SizeDependentLatency(base=FixedLatency(0.5), bytes_per_ms=2000.0)
        rng = random.Random(4)
        dvv_context_bytes = 40          # ~3 server entries
        client_vv_context_bytes = 1200  # ~100 client entries
        assert model.sample(rng, client_vv_context_bytes) > model.sample(rng, dvv_context_bytes)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SizeDependentLatency(bytes_per_ms=0)
        with pytest.raises(ConfigurationError):
            SizeDependentLatency(per_message_overhead_ms=-1)


class TestPerLinkLatency:
    def test_link_override(self):
        model = PerLinkLatency(default=FixedLatency(1.0))
        model.set_link("A", "B", FixedLatency(10.0))
        assert model.for_link("A", "B").sample(random.Random(0)) == 10.0
        assert model.for_link("B", "A").sample(random.Random(0)) == 10.0  # symmetric
        assert model.for_link("A", "C").sample(random.Random(0)) == 1.0

    def test_asymmetric_link(self):
        model = PerLinkLatency(default=FixedLatency(1.0))
        model.set_link("A", "B", FixedLatency(7.0), symmetric=False)
        assert model.for_link("A", "B").sample(random.Random(0)) == 7.0
        assert model.for_link("B", "A").sample(random.Random(0)) == 1.0

    def test_default_sample(self):
        model = PerLinkLatency(default=FixedLatency(2.0))
        assert model.sample(random.Random(0)) == 2.0


class TestWanLatency:
    def _topology(self):
        from repro.cluster import Topology
        return Topology({"n1": "east", "n2": "east", "n3": "west",
                         "client:c0": "west"})

    def test_intra_vs_cross_resolution(self):
        from repro.network import WanLatency
        model = WanLatency(self._topology(),
                           intra=FixedLatency(0.5), cross=FixedLatency(20.0))
        rng = random.Random(0)
        assert model.for_link("n1", "n2").sample(rng) == 0.5
        assert model.for_link("n1", "n3").sample(rng) == 20.0
        assert model.for_link("n3", "n1").sample(rng) == 20.0
        # pinned client addresses resolve through the topology too
        assert model.for_link("client:c0", "n3").sample(rng) == 0.5
        assert model.for_link("client:c0", "n1").sample(rng) == 20.0

    def test_explicit_link_override_wins(self):
        from repro.network import WanLatency
        model = WanLatency(self._topology(),
                           intra=FixedLatency(0.5), cross=FixedLatency(20.0))
        model.set_link("n1", "n2", FixedLatency(99.0))
        assert model.for_link("n1", "n2").sample(random.Random(0)) == 99.0
        assert model.for_link("n1", "n3").sample(random.Random(0)) == 20.0

    def test_default_models_are_wan_shaped(self):
        from repro.network import WanLatency
        model = WanLatency(self._topology())
        rng = random.Random(7)
        intra = [model.for_link("n1", "n2").sample(rng) for _ in range(50)]
        cross = [model.for_link("n1", "n3").sample(rng) for _ in range(50)]
        assert max(intra) < min(cross)  # WAN strictly slower than the fabric

    def test_transport_routes_through_wan_model(self):
        # The transport's PerLinkLatency special case applies to WanLatency.
        from repro.cluster import Topology
        from repro.network import Simulation, Transport, WanLatency
        topology = Topology({"A": "east", "B": "east", "C": "west"})
        sim = Simulation(seed=3)
        transport = Transport(sim, latency=WanLatency(
            topology, intra=FixedLatency(0.5), cross=FixedLatency(25.0)))
        arrivals = {}
        from repro.network import Message, MessageType
        for node in ("A", "B", "C"):
            transport.register(node, lambda m, node=node: arrivals.setdefault(node, sim.now))
        transport.send(Message("A", "B", MessageType.PING, {}))
        transport.send(Message("A", "C", MessageType.PING, {}))
        sim.run_until_idle()
        assert arrivals["B"] == pytest.approx(0.5)
        assert arrivals["C"] == pytest.approx(25.0)
