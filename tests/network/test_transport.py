"""Unit tests for the simulated transport."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError
from repro.network import (
    FixedLatency,
    Message,
    MessageType,
    PartitionManager,
    PerLinkLatency,
    Simulation,
    Transport,
)


def make_transport(**kwargs):
    sim = Simulation(seed=kwargs.pop("seed", 0))
    transport = Transport(sim, **kwargs)
    return sim, transport


def ping(sender, receiver, size=0):
    return Message(sender=sender, receiver=receiver, msg_type=MessageType.PING,
                   size_bytes=size)


class TestDelivery:
    def test_message_delivered_after_latency(self):
        sim, transport = make_transport(latency=FixedLatency(3.0))
        received = []
        transport.register("B", received.append)
        transport.register("A", lambda m: None)
        transport.send(ping("A", "B"))
        assert received == []          # not yet delivered
        sim.run_until_idle()
        assert len(received) == 1
        assert sim.now == 3.0
        assert transport.stats.delivered == 1

    def test_per_link_latency_honoured(self):
        sim, _ = make_transport()
        latency = PerLinkLatency(default=FixedLatency(1.0))
        latency.set_link("A", "B", FixedLatency(9.0))
        transport = Transport(sim, latency=latency)
        arrivals = {}
        transport.register("B", lambda m: arrivals.setdefault("B", sim.now))
        transport.register("C", lambda m: arrivals.setdefault("C", sim.now))
        transport.send(ping("A", "B"))
        transport.send(ping("A", "C"))
        sim.run_until_idle()
        assert arrivals["B"] == 9.0
        assert arrivals["C"] == 1.0

    def test_unknown_destination_counted(self):
        sim, transport = make_transport()
        transport.send(ping("A", "missing"))
        sim.run_until_idle()
        assert transport.stats.dropped_unknown_destination == 1
        assert transport.stats.delivered == 0

    def test_duplicate_registration_rejected(self):
        _, transport = make_transport()
        transport.register("A", lambda m: None)
        with pytest.raises(ConfigurationError):
            transport.register("A", lambda m: None)

    def test_unregister(self):
        sim, transport = make_transport()
        transport.register("A", lambda m: None)
        transport.unregister("A")
        assert not transport.is_registered("A")
        transport.send(ping("B", "A"))
        sim.run_until_idle()
        assert transport.stats.dropped_unknown_destination == 1


class TestUnreliability:
    def test_loss_probability(self):
        sim, transport = make_transport(loss_probability=0.5, seed=7)
        received = []
        transport.register("B", received.append)
        for _ in range(200):
            transport.send(ping("A", "B"))
        sim.run_until_idle()
        assert transport.stats.dropped_loss > 30
        assert len(received) > 30
        assert len(received) + transport.stats.dropped_loss == 200

    def test_duplicates(self):
        sim, transport = make_transport(duplicate_probability=0.5, seed=11)
        received = []
        transport.register("B", received.append)
        for _ in range(100):
            transport.send(ping("A", "B"))
        sim.run_until_idle()
        assert len(received) > 100
        assert transport.stats.duplicated == len(received) - 100

    def test_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            make_transport(loss_probability=1.5)
        with pytest.raises(ConfigurationError):
            make_transport(duplicate_probability=-0.1)


class TestPartitions:
    def test_partitioned_nodes_cannot_communicate(self):
        partitions = PartitionManager()
        sim, _ = make_transport()
        transport = Transport(sim, partitions=partitions)
        received = []
        transport.register("A", lambda m: None)
        transport.register("B", received.append)
        partitions.partition({"A"}, {"B"})
        transport.send(ping("A", "B"))
        sim.run_until_idle()
        assert received == []
        assert transport.stats.dropped_partition == 1

        partitions.heal()
        transport.send(ping("A", "B"))
        sim.run_until_idle()
        assert len(received) == 1


class TestAccounting:
    def test_bytes_and_type_counters(self):
        sim, transport = make_transport()
        transport.register("B", lambda m: None)
        transport.send(ping("A", "B", size=100))
        transport.send(ping("A", "B", size=200))
        sim.run_until_idle()
        assert transport.stats.bytes_sent == 300
        assert transport.stats.per_type["ping"] == 2
        assert transport.stats.bytes_delivered == 300
        assert transport.stats.bytes_dropped == 0
        assert transport.stats.bytes_for("ping") == 300

    def test_partition_dropped_bytes_not_counted_as_delivered(self):
        partitions = PartitionManager()
        sim, _ = make_transport()
        transport = Transport(sim, partitions=partitions)
        transport.register("A", lambda m: None)
        transport.register("B", lambda m: None)
        partitions.partition({"A"}, {"B"})
        transport.send(ping("A", "B", size=150))
        sim.run_until_idle()
        assert transport.stats.bytes_sent == 150       # attempted
        assert transport.stats.bytes_delivered == 0
        assert transport.stats.bytes_dropped == 150
        assert transport.stats.bytes_for("ping") == 0  # delivered view
        assert transport.stats.attempted_bytes_for("ping") == 150
        assert transport.stats.dropped_bytes_per_type["ping"] == 150

    def test_receiver_crash_mid_flight_counts_as_dropped(self):
        sim, transport = make_transport(latency=FixedLatency(5.0))
        transport.register("B", lambda m: None)
        transport.send(ping("A", "B", size=80))
        transport.unregister("B")                      # crash before delivery
        sim.run_until_idle()
        assert transport.stats.dropped_unknown_destination == 1
        assert transport.stats.bytes_delivered == 0
        assert transport.stats.bytes_dropped == 80

    def test_duplicate_delivery_counts_delivered_bytes_twice(self):
        sim, transport = make_transport(duplicate_probability=0.999, seed=3)
        transport.register("B", lambda m: None)
        transport.send(ping("A", "B", size=50))
        sim.run_until_idle()
        assert transport.stats.duplicated == 1
        assert transport.stats.bytes_sent == 50        # one attempted send
        assert transport.stats.bytes_delivered == 100  # arrived twice

    def test_trace_recording(self):
        sim, transport = make_transport()
        transport.register("B", lambda m: None)
        transport.trace_enabled = True
        transport.send(ping("A", "B"))
        assert len(transport.trace) == 1
        transport.clear_trace()
        assert transport.trace == []

    def test_message_reply_correlation(self):
        request = ping("A", "B")
        reply = request.reply(MessageType.PONG, {"ok": True})
        assert reply.sender == "B" and reply.receiver == "A"
        assert reply.request_id == request.msg_id
        assert reply.payload == {"ok": True}


class TestDeadlines:
    def test_deadline_fires_after_delay(self):
        sim, transport = make_transport()
        fired = []
        transport.schedule_deadline(7.5, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == [7.5]
        assert transport.stats.deadlines_set == 1
        assert transport.stats.deadlines_fired == 1

    def test_cancelled_deadline_does_not_fire(self):
        sim, transport = make_transport()
        fired = []
        handle = transport.schedule_deadline(5.0, lambda: fired.append(True))
        transport.cancel_deadline(handle)
        sim.run_until_idle()
        assert fired == []
        assert transport.stats.deadlines_cancelled == 1
        assert transport.stats.deadlines_fired == 0

    def test_cancel_is_idempotent_and_tolerates_none(self):
        sim, transport = make_transport()
        handle = transport.schedule_deadline(1.0, lambda: None)
        transport.cancel_deadline(handle)
        transport.cancel_deadline(handle)
        transport.cancel_deadline(None)
        assert transport.stats.deadlines_cancelled == 1
