"""Unit tests for the partition manager."""

from __future__ import annotations

import pytest

from repro.network import PartitionManager


class TestGroups:
    def test_fully_connected_by_default(self):
        pm = PartitionManager()
        assert pm.can_communicate("A", "B")
        assert pm.can_communicate("A", "A")

    def test_partition_splits_groups(self):
        pm = PartitionManager()
        pm.partition({"A", "B"}, {"C"})
        assert pm.can_communicate("A", "B")
        assert not pm.can_communicate("A", "C")
        assert not pm.can_communicate("C", "B")

    def test_unlisted_nodes_talk_to_everyone(self):
        pm = PartitionManager()
        pm.partition({"A"}, {"B"})
        assert pm.can_communicate("A", "X")
        assert pm.can_communicate("X", "B")

    def test_heal(self):
        pm = PartitionManager()
        pm.partition({"A"}, {"B"})
        pm.heal()
        assert pm.can_communicate("A", "B")

    def test_overlapping_groups_rejected(self):
        pm = PartitionManager()
        with pytest.raises(ValueError):
            pm.partition({"A", "B"}, {"B", "C"})

    def test_repartition_replaces_previous(self):
        pm = PartitionManager()
        pm.partition({"A"}, {"B", "C"})
        pm.partition({"A", "B"}, {"C"})
        assert pm.can_communicate("A", "B")
        assert not pm.can_communicate("B", "C")


class TestLinks:
    def test_cut_and_restore_link(self):
        pm = PartitionManager()
        pm.cut_link("A", "B")
        assert not pm.can_communicate("A", "B")
        assert not pm.can_communicate("B", "A")
        assert pm.can_communicate("A", "C")
        pm.restore_link("A", "B")
        assert pm.can_communicate("A", "B")

    def test_cut_link_independent_of_groups(self):
        pm = PartitionManager()
        pm.cut_link("A", "B")
        pm.heal()
        assert not pm.can_communicate("A", "B")

    def test_describe(self):
        pm = PartitionManager()
        pm.partition({"A"}, {"B"})
        pm.cut_link("C", "D")
        snapshot = pm.describe()
        assert ["A"] in snapshot["groups"]
        assert ("C", "D") in snapshot["cut_links"]
