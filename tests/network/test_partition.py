"""Unit tests for the partition manager."""

from __future__ import annotations

import pytest

from repro.network import PartitionManager


class TestGroups:
    def test_fully_connected_by_default(self):
        pm = PartitionManager()
        assert pm.can_communicate("A", "B")
        assert pm.can_communicate("A", "A")

    def test_partition_splits_groups(self):
        pm = PartitionManager()
        pm.partition({"A", "B"}, {"C"})
        assert pm.can_communicate("A", "B")
        assert not pm.can_communicate("A", "C")
        assert not pm.can_communicate("C", "B")

    def test_unlisted_nodes_talk_to_everyone(self):
        pm = PartitionManager()
        pm.partition({"A"}, {"B"})
        assert pm.can_communicate("A", "X")
        assert pm.can_communicate("X", "B")

    def test_heal(self):
        pm = PartitionManager()
        pm.partition({"A"}, {"B"})
        pm.heal()
        assert pm.can_communicate("A", "B")

    def test_overlapping_groups_rejected(self):
        pm = PartitionManager()
        with pytest.raises(ValueError):
            pm.partition({"A", "B"}, {"B", "C"})

    def test_repartition_replaces_previous(self):
        pm = PartitionManager()
        pm.partition({"A"}, {"B", "C"})
        pm.partition({"A", "B"}, {"C"})
        assert pm.can_communicate("A", "B")
        assert not pm.can_communicate("B", "C")


class TestLinks:
    def test_cut_and_restore_link(self):
        pm = PartitionManager()
        pm.cut_link("A", "B")
        assert not pm.can_communicate("A", "B")
        assert not pm.can_communicate("B", "A")
        assert pm.can_communicate("A", "C")
        pm.restore_link("A", "B")
        assert pm.can_communicate("A", "B")

    def test_cut_link_independent_of_groups(self):
        pm = PartitionManager()
        pm.cut_link("A", "B")
        pm.heal()
        assert not pm.can_communicate("A", "B")

    def test_describe(self):
        pm = PartitionManager()
        pm.partition({"A"}, {"B"})
        pm.cut_link("C", "D")
        snapshot = pm.describe()
        assert ["A"] in snapshot["groups"]
        assert ("C", "D") in snapshot["cut_links"]


class TestDatacenterPartition:
    def _topology(self):
        from repro.cluster import Topology
        return Topology({"n1": "east", "n2": "east", "n3": "west", "n4": "west",
                         "client:c0": "east", "client:c1": "west"})

    def test_partition_datacenters_cuts_only_wan_links(self):
        from repro.network import PartitionManager
        manager = PartitionManager()
        manager.partition_datacenters(self._topology())
        assert manager.can_communicate("n1", "n2")
        assert manager.can_communicate("n3", "n4")
        assert not manager.can_communicate("n1", "n3")
        assert not manager.can_communicate("n4", "n2")

    def test_pinned_clients_are_isolated_with_their_dc(self):
        from repro.network import PartitionManager
        manager = PartitionManager()
        manager.partition_datacenters(self._topology())
        assert manager.can_communicate("client:c0", "n1")
        assert not manager.can_communicate("client:c0", "n3")
        assert manager.can_communicate("client:c1", "n4")
        assert not manager.can_communicate("client:c1", "n2")

    def test_extras_join_their_group(self):
        from repro.network import PartitionManager
        manager = PartitionManager()
        manager.partition_datacenters(self._topology(),
                                      extras={"west": ["observer"]})
        assert manager.can_communicate("observer", "n3")
        assert not manager.can_communicate("observer", "n1")

    def test_heal_restores_wan(self):
        from repro.network import PartitionManager
        manager = PartitionManager()
        topology = self._topology()
        manager.partition_datacenters(topology)
        manager.heal()
        assert manager.can_communicate("n1", "n3")
        # flapping works: cut again after a heal
        manager.partition_datacenters(topology)
        assert not manager.can_communicate("n1", "n3")
