"""Round-trip tests for the asyncio backend's wire format.

Every payload the protocol puts in a message must survive
``decode(encode(m)) == m`` — mechanism states (tuples of clock/sibling pairs
for dvv and causal_history, a DVVSet for dvvset), causal contexts, digest
bytes, and the plain-data scaffolding around them.  The codec is also strict:
unsupported payload types fail at encode time, corrupt frames at decode time.
"""

from __future__ import annotations

import pytest

from repro.clocks import available, create
from repro.clocks.interface import Sibling
from repro.core.causal_history import CausalHistory
from repro.core.dot import Dot
from repro.core.dvv import DottedVersionVector
from repro.core.exceptions import SerializationError
from repro.core.version_vector import VersionVector
from repro.kvstore.client import ClientSession
from repro.kvstore.context import CausalContext
from repro.network.message import Message, MessageType
from repro.network.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    decode_message,
    encode_message,
    frame_message,
    unframe,
)


def roundtrip(payload, msg_type=MessageType.REPLICA_PUT, request_id=7) -> Message:
    message = Message(
        sender="A",
        receiver="B",
        msg_type=msg_type,
        payload=payload,
        size_bytes=123,
        request_id=request_id,
    )
    decoded = decode_message(encode_message(message))
    assert decoded.sender == message.sender
    assert decoded.receiver == message.receiver
    assert decoded.msg_type is message.msg_type
    assert decoded.size_bytes == message.size_bytes
    assert decoded.msg_id == message.msg_id
    assert decoded.request_id == message.request_id
    return decoded


def test_plain_values_roundtrip():
    payload = {
        "none": None,
        "flags": [True, False],
        "ints": [0, 1, -1, 2**40, -(2**40)],
        "floats": [0.0, -2.5, 1e300],
        "text": "héllo wörld",
        "blob": b"\x00\xff digest bytes",
        "tuple": (1, ("nested", 2)),
        "set": frozenset({"x", "y"}),
        "nested": {"a": [{"b": (1, 2)}]},
    }
    decoded = roundtrip(payload)
    assert decoded.payload == payload
    # tuple and list are distinct tags — shapes must not drift
    assert isinstance(decoded.payload["tuple"], tuple)
    assert isinstance(decoded.payload["tuple"][1], tuple)
    assert isinstance(decoded.payload["flags"], list)
    assert isinstance(decoded.payload["set"], frozenset)
    assert isinstance(decoded.payload["blob"], bytes)


def test_clock_types_roundtrip():
    vv = VersionVector({"A": 3, "B": 1})
    dvv = DottedVersionVector(Dot("A", 4), vv)
    history = CausalHistory.from_events([Dot("A", 1), Dot("B", 2)], Dot("B", 2))
    payload = {"dot": Dot("C", 9), "vv": vv, "dvv": dvv, "history": history}
    decoded = roundtrip(payload)
    assert decoded.payload == payload


@pytest.mark.parametrize("mechanism_name", sorted(available()))
def test_mechanism_states_roundtrip(mechanism_name):
    """Real states produced by each registered mechanism survive the wire."""
    mechanism = create(mechanism_name)
    session = ClientSession("c1")
    state = mechanism.empty_state()
    for value in ("v1", "v2"):
        sibling = session.prepare_write("cart", value, None)
        state = mechanism.write(state, mechanism.empty_context(), sibling,
                                "A", "c1")
    read = mechanism.read(state)
    context = CausalContext(key="cart", mechanism_context=read.context,
                            observed_history=None,
                            mechanism_name=mechanism_name)

    decoded = roundtrip({"key": "cart", "state": state, "context": context})

    assert decoded.payload["state"] == state
    assert type(decoded.payload["state"]) is type(state)
    assert decoded.payload["context"] == context
    # the decoded state must be fully usable by the mechanism
    reread = mechanism.read(decoded.payload["state"])
    assert sorted(s.value for s in reread.siblings) == \
        sorted(s.value for s in read.siblings)


def test_sibling_keeps_uid_and_writer():
    sibling = ClientSession("c9").prepare_write("k", "value", None)
    decoded = roundtrip({"sibling": sibling})
    wired = decoded.payload["sibling"]
    assert wired == sibling
    assert wired.uid == sibling.uid
    assert wired.writer == sibling.writer
    assert wired.origin_dot == sibling.origin_dot


def test_request_id_absence_roundtrips():
    decoded = roundtrip({"key": "k"}, request_id=None)
    assert decoded.request_id is None


def test_unsupported_payload_type_raises_at_encode_time():
    class Opaque:
        pass

    message = Message(sender="A", receiver="B",
                      msg_type=MessageType.REPLICA_PUT,
                      payload={"oops": Opaque()}, size_bytes=0)
    with pytest.raises(SerializationError):
        encode_message(message)


def test_decode_rejects_wrong_version_and_truncation():
    message = Message(sender="A", receiver="B",
                      msg_type=MessageType.PING, payload={}, size_bytes=0)
    body = encode_message(message)
    with pytest.raises(SerializationError):
        decode_message(bytes([WIRE_VERSION + 1]) + body[1:])
    with pytest.raises(SerializationError):
        decode_message(body[:-1])
    with pytest.raises(SerializationError):
        decode_message(body + b"x")
    with pytest.raises(SerializationError):
        decode_message(b"")


def test_unframe_handles_partial_and_concatenated_frames():
    first = Message(sender="A", receiver="B", msg_type=MessageType.PING,
                    payload={"n": 1}, size_bytes=0)
    second = Message(sender="B", receiver="A", msg_type=MessageType.PING,
                     payload={"n": 2}, size_bytes=0)
    stream = frame_message(first) + frame_message(second)

    # byte-by-byte: no message until a frame is complete, then exactly one
    buffer = b""
    decoded = []
    for index in range(len(stream)):
        buffer += stream[index:index + 1]
        while True:
            message, buffer = unframe(buffer)
            if message is None:
                break
            decoded.append(message)
    assert [m.payload["n"] for m in decoded] == [1, 2]
    assert buffer == b""


def test_unframe_rejects_absurd_length_prefix():
    with pytest.raises(SerializationError):
        unframe((MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"xxxx")
