"""The refactor's bit-for-bit contract: the simulator reproduces golden stats.

``golden_cluster_stats.json`` was captured from a fixed-seed cluster run
*before* the protocol logic moved out of ``simulated.py`` into the
transport-agnostic state machines.  Re-running the identical scenario through
the refactored stack must reproduce every number exactly — message counts,
bytes, deadlines, virtual timestamps, per-stat totals, Merkle exchange
counters.  Any drift means the state machines changed behavior, not just
address.

The scenario is deliberately eventful: four servers, three clients, a mixed
workload, one node failing mid-run and recovering later — so it exercises
quorum coordination, deadlines and failover, sloppy quorums with hinted
handoff (async mode), read repair, and Merkle anti-entropy.
"""

from __future__ import annotations

import json
import pathlib
import random

import pytest

from repro.clocks import create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_cluster_stats.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

MULTI_DC_GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_multi_dc_stats.json"
MULTI_DC_GOLDEN = json.loads(MULTI_DC_GOLDEN_PATH.read_text())

#: Stats added after the golden capture; they observe behavior that did not
#: exist (or was not counted) then, so the golden scenario must keep them at
#: zero — any other value means the run itself changed.
POST_GOLDEN_ZERO_STATS = ("rebuilds_skipped", "hint_replays_deferred",
                          "audit_keys_checked", "audit_mismatches")


def run_golden_scenario(mechanism_name: str, request_mode: str, tracer=None):
    """The exact scenario the golden fixture was captured from.

    ``tracer`` lets the observability tests re-run the identical scenario
    with span recording on and assert the golden numbers still hold.
    """
    cluster = SimulatedCluster(
        create(mechanism_name),
        server_ids=("A", "B", "C", "D"),
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=request_mode == "async"),
        seed=1234,
        request_mode=request_mode,
        anti_entropy_interval_ms=40.0,
        hint_replay_interval_ms=25.0,
        tracer=tracer,
    )
    rng = random.Random(1234 + 99)
    clients = [cluster.client(f"c{index}") for index in range(3)]
    keys = ["cart", "user", "inv"]

    def issue(index: int) -> None:
        client = clients[index % 3]
        key = keys[rng.randrange(3)]
        if rng.random() < 0.55:
            client.put(key, f"v{index}")
        else:
            client.get(key)

    at = 0.0
    for index in range(60):
        at += 3.0
        cluster.simulation.schedule_at(at, lambda index=index: issue(index))
    cluster.simulation.schedule_at(60.0, lambda: cluster.fail_node("B"))
    cluster.simulation.schedule_at(130.0, lambda: cluster.recover_node("B"))
    cluster.simulation.run(until=400.0)
    cluster.converge()
    return cluster


def snapshot(cluster: SimulatedCluster) -> dict:
    """The observable footprint of a run, shaped like the golden fixture."""
    records = cluster.all_request_records()
    merkle = cluster.merkle_stats
    return {
        "stat_totals": cluster.stat_totals(),
        "merkle": {
            "exchanges_started": merkle.exchanges_started,
            "exchanges_clean": merkle.exchanges_clean,
            "levels_sent": merkle.levels_sent,
            "keys_transferred": merkle.keys_transferred,
            "partitions_compared": merkle.partitions_compared,
            "partitions_differing": merkle.partitions_differing,
        },
        "transport_sent": cluster.transport.stats.sent,
        "transport_delivered": cluster.transport.stats.delivered,
        "bytes_delivered": cluster.transport.stats.bytes_delivered,
        "deadlines_set": cluster.transport.stats.deadlines_set,
        "records": len(records),
        "ok": sum(1 for record in records if record.ok),
        "latency_sum": round(sum(record.latency_ms for record in records), 6),
        "sync_bytes": cluster.sync_bytes(),
        "metadata_bytes": cluster.metadata_bytes(),
        "now": round(cluster.simulation.now, 6),
        "events": cluster.simulation.events_processed,
    }


@pytest.mark.parametrize("scenario_key", sorted(GOLDEN))
def test_simulator_matches_pre_refactor_golden_stats(scenario_key):
    mechanism_name, request_mode = scenario_key.split(":")
    cluster = run_golden_scenario(mechanism_name, request_mode)
    actual = snapshot(cluster)
    expected = GOLDEN[scenario_key]

    # Stats introduced after the capture must not fire in this scenario.
    actual_totals = actual["stat_totals"]
    for stat in POST_GOLDEN_ZERO_STATS:
        assert actual_totals.pop(stat, 0) == 0, (
            f"{stat} fired during the golden scenario — the run changed")

    for field in expected:
        assert actual[field] == expected[field], (
            f"{scenario_key}: {field} diverged from the pre-refactor capture")


def multi_dc_snapshot(report) -> dict:
    """The multi-DC scenario's footprint: cluster stats plus oracle verdict.

    On top of the transport/stat numbers :func:`snapshot` pins, the multi-DC
    fixture also freezes the scenario-level outcome — convergence, the
    write-log oracle's verdict, the request split, and the WAN partition
    window — so a change to DC-aware placement, WAN latency draws, per-DC
    fallback ordering or seed plumbing shows up as a diff, not a flake.
    """
    base = snapshot(report.cluster)
    base.update({
        "converged": report.converged,
        "convergence_rounds": report.convergence_rounds,
        "requests_completed": report.requests_completed,
        "requests_failed": report.requests_failed,
        "lost_updates": report.lost_updates,
        "false_concurrency": report.false_concurrency,
        "datacenters": list(report.datacenters),
        "partition_windows": [list(window) for window in report.partition_windows],
    })
    return base


def run_multi_dc_golden(mechanism_name: str):
    """The exact run the multi-DC fixture was captured from (seed pinned)."""
    from repro.workloads import run_multi_dc_scenario
    return run_multi_dc_scenario(create(mechanism_name), seed=23)


@pytest.mark.parametrize("scenario_key", sorted(MULTI_DC_GOLDEN))
def test_multi_dc_scenario_matches_golden_stats(scenario_key):
    mechanism_name = scenario_key.split(":")[0]
    report = run_multi_dc_golden(mechanism_name)
    actual = multi_dc_snapshot(report)
    expected = MULTI_DC_GOLDEN[scenario_key]
    for field in expected:
        assert actual[field] == expected[field], (
            f"{scenario_key}: {field} diverged from the multi-DC capture")


def test_multi_dc_golden_fixture_is_eventful():
    """The fixture must prove the WAN partition actually bit."""
    for scenario_key, expected in MULTI_DC_GOLDEN.items():
        assert expected["converged"], scenario_key
        assert expected["lost_updates"] == 0, scenario_key
        assert expected["datacenters"] == ["east", "west"], scenario_key
        # per-DC sloppy quorums held hints for the unreachable remote primaries
        assert expected["stat_totals"]["hints_stored"] > 0, scenario_key
        assert expected["requests_completed"] > 0, scenario_key


def test_golden_fixture_is_eventful():
    """Guard the fixture itself: the scenario must exercise the whole stack."""
    for scenario_key, expected in GOLDEN.items():
        assert expected["records"] == 60, scenario_key
        assert expected["merkle"]["exchanges_started"] > 0, scenario_key
        # the failed node forces fallback writes and hinted handoff
        assert expected["stat_totals"]["hints_stored"] > 0, scenario_key
        if scenario_key.endswith(":async"):
            # deadline-driven coordination only exists in async mode
            assert expected["deadlines_set"] > 0, scenario_key
