"""Hint-replay backoff for persistently slow peers (satellite of PR 5).

A peer whose latency EWMA pins the adaptive deadline at its ceiling gets one
replay batch and is then left alone for ``ewma × hint_backoff_multiplier``;
ticks that land inside the backoff window are counted in
``hint_replays_deferred`` instead of re-sending batches that are still in
flight.  Healthy and never-observed peers are replayed on every tick, and the
backoff state is process memory — a crash forgets it.
"""

from __future__ import annotations

from repro.clocks import create
from repro.cluster import (
    ConsistentHashRing,
    Membership,
    PartitionMap,
    PlacementService,
    QuorumConfig,
)
from repro.kvstore import WriteLog
from repro.kvstore.client import ClientSession
from repro.kvstore.protocol import MerkleSyncStats, ProtocolNode
from repro.kvstore.protocol.env import StaticProtocolEnv
from repro.network.message import MessageType

SERVER_IDS = ("A", "B", "C")

#: With the ceiling at 10ms, an EWMA of 100ms is pinned (persistently slow)
#: while 1ms stays comfortably adaptive.
CEILING_MS = 10.0
BACKOFF_MULTIPLIER = 6.0
SLOW_EWMA_MS = 100.0


def build_node(node_id: str = "A") -> ProtocolNode:
    ring = ConsistentHashRing(SERVER_IDS, virtual_nodes=16)
    quorum = QuorumConfig(n=3, r=2, w=2, sloppy=True)
    placement = PlacementService(ring, Membership(SERVER_IDS), quorum,
                                 partition_map=PartitionMap(16))
    env = StaticProtocolEnv(
        mechanism=create("dvv"),
        quorum=quorum,
        placement=placement,
        write_log=WriteLog(),
        merkle_stats=MerkleSyncStats(),
        deadline_ceiling_ms=CEILING_MS,
        hint_backoff_multiplier=BACKOFF_MULTIPLIER,
    )
    return ProtocolNode(node_id, env.mechanism, env)


def hold_hint(node: ProtocolNode, target_id: str, key: str = "cart") -> None:
    mechanism = node.env.mechanism
    sibling = ClientSession("writer").prepare_write(key, "beer", None)
    state = mechanism.write(mechanism.empty_state(), mechanism.empty_context(),
                            sibling, node.node_id, "writer")
    node.store.store_hint(target_id, key, state)


def replay(node: ProtocolNode, now: float) -> int:
    effects, batches = node.replay_hints(now)
    replays = [e for e in effects
               if getattr(e, "message", None) is not None
               and e.message.msg_type is MessageType.HINT_REPLAY]
    assert len(replays) == batches
    return batches


def test_slow_peer_is_replayed_once_then_backed_off():
    node = build_node()
    hold_hint(node, "B")
    node.latency.ewma["B"] = SLOW_EWMA_MS

    assert replay(node, now=0.0) == 1  # first tick goes through
    assert node.store.stats["hint_replays_deferred"] == 0

    # inside the backoff window: no batch, just a deferral tick
    assert replay(node, now=1.0) == 0
    assert replay(node, now=SLOW_EWMA_MS * BACKOFF_MULTIPLIER - 1.0) == 0
    assert node.store.stats["hint_replays_deferred"] == 2

    # past ewma × multiplier the peer gets its next chance
    assert replay(node, now=SLOW_EWMA_MS * BACKOFF_MULTIPLIER + 1.0) == 1


def test_healthy_peer_is_replayed_every_tick():
    node = build_node()
    hold_hint(node, "B")
    node.latency.ewma["B"] = 1.0  # deadline well below the ceiling
    for tick in range(3):
        assert replay(node, now=float(tick)) == 1
    assert node.store.stats["hint_replays_deferred"] == 0


def test_unobserved_peer_is_never_deferred():
    node = build_node()
    hold_hint(node, "B")  # no latency samples for B at all
    for tick in range(3):
        assert replay(node, now=float(tick)) == 1
    assert node.store.stats["hint_replays_deferred"] == 0


def test_backoff_is_per_target():
    node = build_node()
    hold_hint(node, "B", key="cart")
    hold_hint(node, "C", key="user")
    node.latency.ewma["B"] = SLOW_EWMA_MS

    assert replay(node, now=0.0) == 2  # both targets on the first tick
    # B defers, C still goes out
    assert replay(node, now=1.0) == 1
    assert node.store.stats["hint_replays_deferred"] == 1


def test_crash_forgets_backoff_state():
    node = build_node()
    hold_hint(node, "B")
    node.latency.ewma["B"] = SLOW_EWMA_MS
    assert replay(node, now=0.0) == 1
    assert node.hints.next_attempt  # backoff armed

    node.on_recover(wipe=False)

    assert not node.hints.next_attempt
    # hints live on disk and survived; the EWMAs died with the process, so
    # the next tick replays immediately instead of honouring a stale backoff
    assert node.store.pending_hints() == 1
    assert replay(node, now=1.0) == 1
    assert node.store.stats["hint_replays_deferred"] == 0
