"""Direct-drive tests: scripted messages and timers through the state machines.

No transport, no event loop, no simulator — each test builds a
:class:`~repro.kvstore.protocol.node.ProtocolNode` over a
:class:`~repro.kvstore.protocol.env.StaticProtocolEnv`, hands it decoded
messages and fired timer ids, and asserts on the effect lists it returns.
This pins the coordinator's quorum transitions, the sloppy fallback
promotion with its hint chain, the error replies, and the client machine's
failover walk — the behaviors the equivalence suite checks end-to-end — at
the machine boundary where each decision is a visible effect.
"""

from __future__ import annotations

import pytest

from repro.clocks import create
from repro.cluster import ConsistentHashRing, Membership, PartitionMap, PlacementService, QuorumConfig
from repro.kvstore import WriteLog
from repro.kvstore.client import ClientSession
from repro.kvstore.protocol import ClientProtocol, MerkleSyncStats, ProtocolNode
from repro.kvstore.protocol.effects import ClearTimer, Send, SetTimer
from repro.kvstore.protocol.env import StaticProtocolEnv
from repro.network.message import Message, MessageType

SERVER_IDS = ("A", "B", "C", "D", "E")


def build_env(sloppy: bool = True, request_mode: str = "async",
              **overrides) -> StaticProtocolEnv:
    ring = ConsistentHashRing(SERVER_IDS, virtual_nodes=16)
    quorum = QuorumConfig(n=3, r=2, w=2, sloppy=sloppy)
    placement = PlacementService(ring, Membership(SERVER_IDS), quorum,
                                 partition_map=PartitionMap(16))
    return StaticProtocolEnv(
        mechanism=create("dvv"),
        quorum=quorum,
        placement=placement,
        write_log=WriteLog(),
        merkle_stats=MerkleSyncStats(),
        request_mode=request_mode,
        **overrides,
    )


def coordinate_put(env, key: str = "cart", value: str = "beer",
                   client_id: str = "c1") -> Message:
    """A COORDINATE_PUT message as the client machine would send it."""
    sibling = ClientSession(client_id).prepare_write(key, value, None)
    return Message(
        sender=f"client:{client_id}",
        receiver=env.placement.primary_replicas(key)[0],
        msg_type=MessageType.COORDINATE_PUT,
        payload={"key": key, "sibling": sibling, "context": None,
                 "client_id": client_id},
        size_bytes=env.request_overhead_bytes,
    )


def coordinate_get(env, key: str = "cart", client_id: str = "c1") -> Message:
    return Message(
        sender=f"client:{client_id}",
        receiver=env.placement.primary_replicas(key)[0],
        msg_type=MessageType.COORDINATE_GET,
        payload={"key": key},
        size_bytes=env.request_overhead_bytes,
    )


def sends(effects, msg_type=None):
    messages = [e.message for e in effects if isinstance(e, Send)]
    if msg_type is not None:
        messages = [m for m in messages if m.msg_type is msg_type]
    return messages


def set_timers(effects):
    return [e for e in effects if isinstance(e, SetTimer)]


def cleared(effects):
    return [e.timer_id for e in effects if isinstance(e, ClearTimer)]


# --------------------------------------------------------------------------- #
# Coordinator: async PUT quorum transitions
# --------------------------------------------------------------------------- #
def test_async_put_fans_out_and_arms_deadlines():
    env = build_env()
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    node = ProtocolNode(primaries[0], env.mechanism, env)

    effects = node.on_message(coordinate_put(env, key), now=0.0)

    replica_puts = sends(effects, MessageType.REPLICA_PUT)
    assert sorted(m.receiver for m in replica_puts) == sorted(primaries[1:])
    timers = {t.timer_id for t in set_timers(effects)}
    coordination_id = replica_puts[0].payload["coordination_id"]
    for replica_id in primaries[1:]:
        assert ("replica", coordination_id, replica_id) in timers
    assert ("request", coordination_id) in timers
    # W=2, only the local ack so far: no reply to the client yet.
    assert not sends(effects, MessageType.PUT_REPLY)
    assert not sends(effects, MessageType.ERROR_REPLY)


def test_async_put_answers_client_on_w_acks_but_keeps_straggler_deadline():
    env = build_env()
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    node = ProtocolNode(primaries[0], env.mechanism, env)
    fanout = node.on_message(coordinate_put(env, key), now=0.0)
    coordination_id = sends(fanout, MessageType.REPLICA_PUT)[0].payload["coordination_id"]

    effects = node.on_message(Message(
        sender=primaries[1], receiver=primaries[0],
        msg_type=MessageType.REPLICA_PUT_ACK,
        payload={"coordination_id": coordination_id},
        size_bytes=0,
    ), now=1.0)

    replies = sends(effects, MessageType.PUT_REPLY)
    assert len(replies) == 1
    assert replies[0].receiver == "client:c1"
    assert replies[0].payload["coordinator"] == primaries[0]
    # The acker's deadline and the overall request deadline are disarmed...
    assert ("replica", coordination_id, primaries[1]) in cleared(effects)
    assert ("request", coordination_id) in cleared(effects)
    # ...but the still-outstanding primary keeps its deadline armed (Dynamo
    # keeps pushing the write toward all N homes after answering the client).
    assert ("replica", coordination_id, primaries[2]) not in cleared(effects)
    assert coordination_id in node.coordinator.sessions


def test_duplicate_ack_is_ignored():
    env = build_env()
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    node = ProtocolNode(primaries[0], env.mechanism, env)
    fanout = node.on_message(coordinate_put(env, key), now=0.0)
    coordination_id = sends(fanout, MessageType.REPLICA_PUT)[0].payload["coordination_id"]
    ack = Message(sender=primaries[1], receiver=primaries[0],
                  msg_type=MessageType.REPLICA_PUT_ACK,
                  payload={"coordination_id": coordination_id}, size_bytes=0)
    first = node.on_message(ack, now=1.0)
    assert sends(first, MessageType.PUT_REPLY)

    duplicate = node.on_message(Message(
        sender=primaries[1], receiver=primaries[0],
        msg_type=MessageType.REPLICA_PUT_ACK,
        payload={"coordination_id": coordination_id}, size_bytes=0), now=2.0)
    assert duplicate == []


# --------------------------------------------------------------------------- #
# Coordinator: sloppy fallback promotion and hint chains
# --------------------------------------------------------------------------- #
def test_replica_deadline_promotes_fallback_with_hint_chain():
    env = build_env(sloppy=True)
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    node = ProtocolNode(primaries[0], env.mechanism, env)
    fanout = node.on_message(coordinate_put(env, key), now=0.0)
    coordination_id = sends(fanout, MessageType.REPLICA_PUT)[0].payload["coordination_id"]
    late = primaries[1]

    effects = node.on_timer(("replica", coordination_id, late),
                            now=env.replica_timeout_ms)

    promoted = sends(effects, MessageType.REPLICA_PUT)
    assert len(promoted) == 1
    fallback = promoted[0].receiver
    assert fallback not in primaries
    # The fallback's write carries the hint naming the primary it stands in
    # for, and gets its own ack deadline.
    assert promoted[0].payload["hint_for"] == late
    assert ("replica", coordination_id, fallback) in {
        t.timer_id for t in set_timers(effects)}
    session = node.coordinator.sessions[coordination_id]
    assert session.standing_in[fallback] == late


def test_fallback_timeout_chains_to_original_primary():
    """A fallback that also times out hints for the *primary*, not itself."""
    env = build_env(sloppy=True)
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    node = ProtocolNode(primaries[0], env.mechanism, env)
    fanout = node.on_message(coordinate_put(env, key), now=0.0)
    coordination_id = sends(fanout, MessageType.REPLICA_PUT)[0].payload["coordination_id"]
    late = primaries[1]
    first = node.on_timer(("replica", coordination_id, late), now=10.0)
    fallback = sends(first, MessageType.REPLICA_PUT)[0].receiver

    second = node.on_timer(("replica", coordination_id, fallback), now=20.0)

    next_try = sends(second, MessageType.REPLICA_PUT)
    assert len(next_try) == 1
    assert next_try[0].payload["hint_for"] == late
    assert next_try[0].receiver not in (late, fallback)


def test_strict_quorum_fails_with_quorum_unreachable():
    env = build_env(sloppy=False)
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    node = ProtocolNode(primaries[0], env.mechanism, env)
    fanout = node.on_message(coordinate_put(env, key), now=0.0)
    coordination_id = sends(fanout, MessageType.REPLICA_PUT)[0].payload["coordination_id"]

    # First primary missing its deadline leaves W=2 still feasible (local ack
    # + one armed deadline) — no error yet, and no sloppy extension.
    first = node.on_timer(("replica", coordination_id, primaries[1]), now=10.0)
    assert not sends(first, MessageType.REPLICA_PUT)
    assert not sends(first, MessageType.ERROR_REPLY)
    # The write is still held for the unreachable primary as a local hint.
    assert primaries[1] in node.store.hint_targets()

    # Second deadline makes the quorum infeasible: ERROR_REPLY to the client.
    second = node.on_timer(("replica", coordination_id, primaries[2]), now=20.0)
    errors = sends(second, MessageType.ERROR_REPLY)
    assert len(errors) == 1
    assert errors[0].payload["reason"] == "quorum_unreachable"
    assert errors[0].receiver == "client:c1"
    assert coordination_id not in node.coordinator.sessions


def test_request_deadline_fails_request_and_sweeps_timers():
    env = build_env(sloppy=True)
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    node = ProtocolNode(primaries[0], env.mechanism, env)
    fanout = node.on_message(coordinate_get(env, key), now=0.0)
    coordination_id = sends(fanout, MessageType.REPLICA_GET)[0].payload["coordination_id"]

    effects = node.on_timer(("request", coordination_id),
                            now=env.request_timeout_ms)

    errors = sends(effects, MessageType.ERROR_REPLY)
    assert len(errors) == 1
    assert errors[0].payload["reason"] == "request_timeout"
    # Every still-armed replica deadline is swept alongside the failure.
    swept = cleared(effects)
    for replica_id in primaries[1:]:
        assert ("replica", coordination_id, replica_id) in swept
    assert coordination_id not in node.coordinator.sessions


# --------------------------------------------------------------------------- #
# Coordinator: async GET
# --------------------------------------------------------------------------- #
def test_async_get_reaches_r_and_replies():
    env = build_env()
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    node = ProtocolNode(primaries[0], env.mechanism, env)
    fanout = node.on_message(coordinate_get(env, key), now=0.0)
    gets = sends(fanout, MessageType.REPLICA_GET)
    assert sorted(m.receiver for m in gets) == sorted(primaries[1:])
    coordination_id = gets[0].payload["coordination_id"]
    assert not sends(fanout, MessageType.GET_REPLY)   # R=2, 1 local reply

    effects = node.on_message(Message(
        sender=primaries[1], receiver=primaries[0],
        msg_type=MessageType.REPLICA_GET_REPLY,
        payload={"coordination_id": coordination_id, "state": ()},
        size_bytes=0,
    ), now=1.0)

    replies = sends(effects, MessageType.GET_REPLY)
    assert len(replies) == 1
    assert replies[0].payload["key"] == key
    assert replies[0].payload["siblings"] == []       # nothing stored anywhere


# --------------------------------------------------------------------------- #
# Client machine: failover walk and exhaustion
# --------------------------------------------------------------------------- #
def test_client_failover_walks_candidates_then_gives_up():
    env = build_env()
    client = ClientProtocol("c1", env)
    outcomes = []
    key = "cart"
    candidates = env.placement.extended_preference_list(key)

    effects = client.get(key, outcomes.append, now=0.0)
    first = sends(effects)
    assert len(first) == 1
    assert first[0].receiver == candidates[0]
    request_id = first[0].msg_id
    assert {t.timer_id for t in set_timers(effects)} == {("client", request_id)}

    # Walk the failover chain: each deadline re-sends the same logical
    # request to the next candidate and re-arms the client deadline.
    for attempt, expected in enumerate(candidates[1:], start=1):
        effects = client.on_timer(("client", request_id), now=10.0 * attempt)
        resent = sends(effects)
        assert len(resent) == 1
        assert resent[0].receiver == expected
        assert resent[0].msg_type is MessageType.COORDINATE_GET
        request_id = resent[0].msg_id
        assert outcomes == []

    # Exhausting the list fails the request: callback(None), ok=False record.
    effects = client.on_timer(("client", request_id), now=999.0)
    assert sends(effects) == []
    assert outcomes == [None]
    assert len(client.records) == 1
    assert not client.records[0].ok
    assert client.records[0].error == "timeout"


def test_client_error_reply_fails_fast():
    env = build_env()
    client = ClientProtocol("c1", env)
    outcomes = []
    effects = client.put("cart", "beer", outcomes.append, now=0.0)
    request = sends(effects)[0]

    effects = client.on_message(Message(
        sender=request.receiver, receiver=client.address,
        msg_type=MessageType.ERROR_REPLY,
        payload={"key": "cart", "operation": "put",
                 "reason": "quorum_unreachable", "coordinator": request.receiver},
        size_bytes=0, request_id=request.msg_id,
    ), now=5.0)

    assert ("client", request.msg_id) in cleared(effects)
    assert outcomes == [None]
    record = client.records[0]
    assert record.error == "quorum_unreachable"
    assert record.coordinator == request.receiver


# --------------------------------------------------------------------------- #
# Membership mode: the failure detector picks the contact set
# --------------------------------------------------------------------------- #
def test_membership_put_skips_unreachable_replicas_and_holds_hints():
    reachable = {"A": True, "B": True, "C": True, "D": True, "E": True}
    env = build_env(request_mode="membership")
    env.can_reach = lambda s, t: reachable[t]
    key = "cart"
    primaries = env.placement.primary_replicas(key)
    down = primaries[1]
    env.placement.membership.mark_down(down)
    reachable[down] = False
    node = ProtocolNode(primaries[0], env.mechanism, env)

    effects = node.on_message(coordinate_put(env, key), now=0.0)

    contacted = {m.receiver for m in sends(effects, MessageType.REPLICA_PUT)}
    assert down not in contacted
    # Membership mode arms no deadlines; the down primary gets a held hint.
    assert set_timers(effects) == []
    assert down in node.store.hint_targets()
