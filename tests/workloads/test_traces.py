"""Unit tests for trace construction and replay."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, ServerVVMechanism
from repro.core import WorkloadError
from repro.workloads import Operation, OpType, Trace, replay_trace


class TestTraceConstruction:
    def test_builder_methods_chain(self):
        trace = (Trace(server_ids=("A", "B"))
                 .get("c1", "k", server="A")
                 .put("c1", "k", "v1", server="A")
                 .blind_put("c2", "k", "v2")
                 .forget("c1", "k")
                 .sync("A", "B")
                 .sync_all())
        assert len(trace) == 6
        assert trace.clients() == ["c1", "c2"]
        assert trace.keys() == ["k"]
        assert [op.op for op in trace] == [
            OpType.GET, OpType.PUT, OpType.BLIND_PUT, OpType.FORGET, OpType.SYNC, OpType.SYNC_ALL
        ]

    def test_invalid_operations_rejected(self):
        trace = Trace()
        with pytest.raises(WorkloadError):
            trace.append(Operation(OpType.GET, client="c1"))              # no key
        with pytest.raises(WorkloadError):
            trace.append(Operation(OpType.PUT, client="c1", key="k"))     # no value
        with pytest.raises(WorkloadError):
            trace.append(Operation(OpType.SYNC, server="A"))              # no target

    def test_extend_validates_each_operation(self):
        trace = Trace()
        with pytest.raises(WorkloadError):
            trace.extend([Operation(OpType.GET, client="c1")])


class TestReplay:
    def build_trace(self):
        return (Trace(server_ids=("A", "B"), name="simple")
                .get("c1", "k", server="A")
                .put("c1", "k", "v1", server="A")
                .get("c2", "k", server="A")
                .put("c2", "k", "v2", server="A")
                .sync("A", "B"))

    def test_replay_produces_store_and_clients(self):
        result = replay_trace(self.build_trace(), DVVMechanism())
        assert result.mechanism_name == "dvv"
        assert set(result.clients) == {"c1", "c2"}
        assert result.store.values("k", "B") == ["v2"]
        assert len(result.store.write_log) == 2

    def test_same_trace_different_mechanisms(self):
        trace = self.build_trace()
        dvv_result = replay_trace(trace, DVVMechanism())
        server_result = replay_trace(trace, ServerVVMechanism())
        # This trace has no concurrency, so both mechanisms agree.
        assert dvv_result.store.values("k", "B") == server_result.store.values("k", "B")

    def test_blind_put_ignores_context(self):
        trace = (Trace(server_ids=("A",))
                 .get("c1", "k", server="A")
                 .put("c1", "k", "v1", server="A")
                 .blind_put("c1", "k", "v2", server="A"))
        result = replay_trace(trace, DVVMechanism())
        assert sorted(result.store.values("k", "A")) == ["v1", "v2"]

    def test_forget_resets_context(self):
        trace = (Trace(server_ids=("A",))
                 .get("c1", "k", server="A")
                 .put("c1", "k", "v1", server="A")
                 .get("c1", "k", server="A")
                 .forget("c1", "k")
                 .put("c1", "k", "v2", server="A"))
        result = replay_trace(trace, DVVMechanism())
        assert sorted(result.store.values("k", "A")) == ["v1", "v2"]

    def test_sync_without_key_syncs_everything(self):
        trace = (Trace(server_ids=("A", "B"))
                 .get("c1", "k1", server="A").put("c1", "k1", "x", server="A")
                 .get("c1", "k2", server="A").put("c1", "k2", "y", server="A")
                 .sync("A", "B"))
        result = replay_trace(trace, DVVMechanism())
        assert result.store.values("k1", "B") == ["x"]
        assert result.store.values("k2", "B") == ["y"]

    def test_replicate_on_write_option(self):
        trace = (Trace(server_ids=("A", "B"))
                 .get("c1", "k", server="A")
                 .put("c1", "k", "v1", server="A"))
        result = replay_trace(trace, DVVMechanism(), replicate_on_write=True)
        assert result.store.values("k", "B") == ["v1"]
