"""Unit tests for the synthetic workload generator and the named scenarios."""

from __future__ import annotations

import pytest

from repro.analysis import check_store
from repro.clocks import DVVMechanism, ServerVVMechanism, create
from repro.core import ConfigurationError
from repro.workloads import (
    OpType,
    WorkloadConfig,
    WorkloadGenerator,
    concurrent_writers_trace,
    figure1_trace,
    generate_workload,
    interleaved_two_server_trace,
    named_scenarios,
    read_modify_write_chain_trace,
    replay_scenario,
    replay_trace,
    run_figure1,
    run_figure1_by_name,
    session_reset_trace,
)


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(clients=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(keys=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(operations=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(read_probability=1.5)

    def test_names(self):
        config = WorkloadConfig(clients=2, keys=3)
        assert config.client_ids() == ["client-0", "client-1"]
        assert config.key_names() == ["key-0", "key-1", "key-2"]


class TestGenerator:
    def test_same_seed_same_trace(self):
        config = WorkloadConfig(clients=4, operations=50, seed=5)
        first = WorkloadGenerator(config).generate()
        second = WorkloadGenerator(config).generate()
        assert [op for op in first] == [op for op in second]

    def test_different_seed_different_trace(self):
        base = WorkloadConfig(clients=4, operations=50, seed=5)
        other = WorkloadConfig(clients=4, operations=50, seed=6)
        assert [op for op in WorkloadGenerator(base).generate()] != \
            [op for op in WorkloadGenerator(other).generate()]

    def test_final_sync_present(self):
        trace = generate_workload(WorkloadConfig(operations=20, final_sync=True))
        assert trace.operations[-1].op is OpType.SYNC_ALL

    def test_blind_writes_generated_when_requested(self):
        trace = generate_workload(WorkloadConfig(operations=200, blind_write_probability=0.5,
                                                 read_probability=0.0, seed=3))
        assert any(op.op is OpType.BLIND_PUT for op in trace)

    def test_zipf_concentrates_traffic(self):
        skewed = generate_workload(WorkloadConfig(operations=300, keys=8, zipf_s=2.0, seed=1))
        uniform = generate_workload(WorkloadConfig(operations=300, keys=8, zipf_s=0.0, seed=1))

        def top_key_share(trace):
            counts = {}
            for op in trace:
                if op.key:
                    counts[op.key] = counts.get(op.key, 0) + 1
            return max(counts.values()) / sum(counts.values())

        assert top_key_share(skewed) > top_key_share(uniform)

    def test_generate_workload_helper_rejects_mixed_args(self):
        with pytest.raises(ConfigurationError):
            generate_workload(WorkloadConfig(), operations=10)

    def test_generated_trace_replays_under_every_mechanism(self):
        trace = generate_workload(WorkloadConfig(clients=6, operations=60, seed=11))
        for name in ("dvv", "dvvset", "client_vv", "server_vv"):
            result = replay_trace(trace, create(name))
            assert len(result.store.write_log) > 0


class TestFigure1:
    def test_trace_shape(self):
        trace = figure1_trace()
        assert trace.server_ids == ("A", "B")
        assert trace.clients() == ["c1", "c2", "c3"]
        assert len(trace) == 10

    def test_dvv_preserves_concurrency(self):
        result = run_figure1(DVVMechanism())
        assert result.concurrency_preserved
        assert not result.lost_update
        assert result.values_after_concurrent_writes == ["v2", "v3"]
        assert result.values_at_b_after_sync == ["v2", "v3"]
        assert result.final_values == ["v4"]
        assert result.converged_to_single_value

    def test_server_vv_loses_an_update(self):
        result = run_figure1(ServerVVMechanism())
        assert not result.concurrency_preserved
        assert result.lost_update
        assert result.values_at_b_after_sync == ["v3"]

    def test_causal_history_matches_figure_1a(self):
        result = run_figure1_by_name("causal_history")
        assert result.concurrency_preserved
        assert result.final_values == ["v4"]

    def test_step_snapshots_are_recorded(self):
        result = run_figure1(DVVMechanism())
        assert len(result.steps) == 7
        assert result.steps[0].values_at_a == ["v1"]
        assert result.steps[0].values_at_b == []


class TestNamedScenarios:
    def test_all_scenarios_replay(self):
        for name in named_scenarios():
            result = replay_scenario(name, DVVMechanism())
            assert len(result.store.write_log) > 0

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            replay_scenario("nope", DVVMechanism())

    def test_concurrent_writers_scenario_keeps_all_siblings_under_dvv(self):
        writers = 5
        result = replay_trace(concurrent_writers_trace(writers=writers), DVVMechanism())
        result.store.converge()
        values = result.store.values("contested", "A")
        assert len(values) == writers

    def test_rmw_chain_has_single_survivor_under_every_mechanism(self):
        trace = read_modify_write_chain_trace(clients=2, length=3)
        for name in ("dvv", "server_vv", "client_vv"):
            result = replay_trace(trace, create(name))
            result.store.converge()
            assert len(result.store.values("chain", "A")) == 1

    def test_session_reset_scenario_resolves(self):
        result = replay_trace(session_reset_trace(clients=3, resets=2), DVVMechanism())
        result.store.converge()
        assert result.store.values("careless", "A") == ["resolved"]
        report = check_store(result.store)
        assert report.total_lost_updates == 0

    def test_interleaved_scenario_is_exact_under_dvv(self):
        result = replay_trace(interleaved_two_server_trace(pairs=3), DVVMechanism())
        report = check_store(result.store)
        assert report.total_lost_updates == 0
        assert report.total_false_concurrency == 0

    def test_figure1_scenario_via_replay(self):
        result = replay_scenario("figure1", DVVMechanism())
        result.store.converge()
        assert result.store.values("obj", "A") == ["v4"]


class TestChurnScenarios:
    def test_elasticity_scenario_converges_and_rebalances(self):
        from repro.workloads import run_elasticity_scenario

        report = run_elasticity_scenario(create("dvv"), seed=21)
        assert report.converged
        assert report.joined == ["n4", "n5"]
        assert report.departed == ["n1"]
        assert sorted(report.final_servers) == ["n2", "n3", "n4", "n5"]
        assert report.handoff_keys > 0
        assert report.stats["handoffs"] > 0
        assert report.requests_completed > 0

    def test_flappy_scenario_stores_and_replays_hints(self):
        from repro.workloads import run_flappy_replica_scenario

        report = run_flappy_replica_scenario(create("dvvset"), seed=31)
        assert report.converged
        assert report.stats["hints_stored"] > 0
        assert report.stats["hint_replays"] > 0
        assert report.stats["pending_hints"] == 0

    def test_flappy_with_wiped_recovery(self):
        from repro.workloads import run_flappy_replica_scenario

        report = run_flappy_replica_scenario(create("dvv"), seed=41,
                                             wipe_on_recover=True)
        assert report.converged

    def test_churn_scenarios_converge_under_both_strategies(self):
        from repro.workloads import run_churn_scenario

        for strategy in ("merkle", "full"):
            report = run_churn_scenario("elasticity", create("dvv"), seed=5,
                                        anti_entropy_strategy=strategy)
            assert report.converged, strategy

    def test_unknown_churn_scenario(self):
        from repro.workloads import run_churn_scenario

        with pytest.raises(KeyError):
            run_churn_scenario("nope", DVVMechanism())
