"""Unit tests for the closed-loop client drivers over the simulated cluster."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism
from repro.core import ConfigurationError
from repro.kvstore import SimulatedCluster
from repro.network import FixedLatency
from repro.workloads import ClosedLoopClient, ClosedLoopConfig, run_closed_loop_workload


def build_cluster(seed=0):
    return SimulatedCluster(
        DVVMechanism(),
        server_ids=("n1", "n2", "n3"),
        latency=FixedLatency(0.5),
        anti_entropy_interval_ms=50.0,
        seed=seed,
    )


class TestClosedLoopConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClosedLoopConfig(keys=())
        with pytest.raises(ConfigurationError):
            ClosedLoopConfig(think_time_ms=-1)
        with pytest.raises(ConfigurationError):
            ClosedLoopConfig(write_fraction=1.2)


class TestClosedLoopClient:
    def test_driver_issues_operations_until_stop_time(self):
        cluster = build_cluster()
        config = ClosedLoopConfig(keys=("k1", "k2"), think_time_ms=2.0,
                                  write_fraction=0.5, stop_at_ms=200.0)
        driver = ClosedLoopClient(cluster, "alice", config, seed=1)
        driver.start()
        cluster.run(until=200.0)
        driver.stop()
        cluster.drain()
        assert driver.operations_started > 5
        records = driver.client.records
        assert records
        assert all(record.ok for record in records)
        assert {record.operation for record in records} <= {"get", "put"}

    def test_stop_prevents_new_operations(self):
        cluster = build_cluster()
        config = ClosedLoopConfig(keys=("k",), think_time_ms=1.0, stop_at_ms=500.0)
        driver = ClosedLoopClient(cluster, "alice", config, seed=2)
        driver.start()
        cluster.run(until=20.0)
        started_before = driver.operations_started
        driver.stop()
        cluster.drain()
        assert driver.operations_started == started_before

    def test_writes_follow_reads(self):
        """Read-modify-write drivers issue a get before each (non-blind) put."""
        cluster = build_cluster()
        config = ClosedLoopConfig(keys=("k",), think_time_ms=1.0,
                                  write_fraction=1.0, stop_at_ms=100.0)
        driver = ClosedLoopClient(cluster, "alice", config, seed=3)
        driver.start()
        cluster.run(until=100.0)
        driver.stop()
        cluster.drain()
        operations = [record.operation for record in driver.client.records]
        assert operations.count("get") >= operations.count("put")
        assert operations.count("put") > 0


class TestRunClosedLoopWorkload:
    def test_multiple_clients_generate_traffic(self):
        cluster = build_cluster(seed=5)
        config = ClosedLoopConfig(keys=("hot",), think_time_ms=3.0,
                                  write_fraction=0.6, stop_at_ms=300.0)
        drivers = run_closed_loop_workload(cluster, client_count=4, config=config)
        assert len(drivers) == 4
        records = cluster.all_request_records()
        assert len(records) > 10
        # the shared key converged after the drain
        counts = cluster.sibling_counts("hot")
        present = [count for count in counts.values() if count > 0]
        assert present and max(present) >= 1

    def test_blind_writers_produce_siblings(self):
        cluster = build_cluster(seed=6)
        config = ClosedLoopConfig(keys=("hot",), think_time_ms=2.0, write_fraction=1.0,
                                  blind_write_fraction=1.0, stop_at_ms=150.0)
        run_closed_loop_workload(cluster, client_count=3, config=config)
        counts = cluster.sibling_counts("hot")
        assert max(counts.values()) >= 2
