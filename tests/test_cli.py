"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--mechanisms", "not-a-mechanism"])

    def test_mechanism_list_parsing(self):
        args = build_parser().parse_args(["figure1", "--mechanisms", "dvv,server_vv"])
        assert args.mechanisms == ["dvv", "server_vv"]


class TestMechanismsCommand:
    def test_lists_every_registered_mechanism(self, capsys):
        assert main(["mechanisms"]) == 0
        output = capsys.readouterr().out
        for name in ("dvv", "dvvset", "server_vv", "client_vv", "causal_history"):
            assert name in output


class TestFigure1Command:
    def test_default_panels(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "causal_history" in output
        assert "server_vv" in output
        assert "dvv" in output
        assert "v4" in output

    def test_explicit_mechanisms(self, capsys):
        assert main(["figure1", "--mechanisms", "dvv"]) == 0
        output = capsys.readouterr().out
        assert "dvv" in output
        assert "server_vv" not in output


class TestScenarioCommand:
    def test_known_scenario(self, capsys):
        assert main(["scenario", "concurrent_writers", "--mechanism", "dvv"]) == 0
        output = capsys.readouterr().out
        assert "causally correct" in output
        assert "yes" in output

    def test_server_vv_flagged_incorrect_on_concurrent_writers(self, capsys):
        assert main(["scenario", "concurrent_writers", "--mechanism", "server_vv"]) == 0
        output = capsys.readouterr().out
        assert "lost updates" in output

    def test_unknown_scenario_fails(self, capsys):
        assert main(["scenario", "nonsense"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestCompareCommand:
    def test_small_comparison(self, capsys):
        assert main(["compare", "--clients", "6", "--operations", "40",
                     "--seed", "3", "--mechanisms", "dvv,server_vv"]) == 0
        output = capsys.readouterr().out
        assert "dvv" in output and "server_vv" in output
        assert "entries/key (max)" in output


class TestClusterCommand:
    def test_short_cluster_run(self, capsys):
        assert main(["cluster", "--mechanism", "dvv", "--clients", "4",
                     "--duration-ms", "150", "--seed", "5"]) == 0
        output = capsys.readouterr().out
        assert "requests completed" in output
        assert "mean latency (ms)" in output

    def test_full_strategy_selectable(self, capsys):
        assert main(["cluster", "--mechanism", "dvv", "--clients", "2",
                     "--duration-ms", "100", "--anti-entropy", "full"]) == 0
        assert "requests completed" in capsys.readouterr().out

    def test_async_request_mode_run(self, capsys):
        assert main(["cluster", "--mechanism", "dvv", "--clients", "2",
                     "--duration-ms", "120", "--request-mode", "async",
                     "--quorum-mode", "sloppy", "--servers", "5"]) == 0
        output = capsys.readouterr().out
        assert "request mode" in output and "async" in output
        assert "requests failed" in output


class TestChurnCommand:
    def test_elasticity_scenario(self, capsys):
        assert main(["churn", "--scenario", "elasticity", "--mechanism", "dvv",
                     "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "converged" in output and "yes" in output
        assert "handoff keys" in output
        assert "merkle key syncs" in output

    def test_flappy_scenario_reports_hints(self, capsys):
        assert main(["churn", "--scenario", "flappy_replica", "--mechanism",
                     "dvvset", "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "hint replays" in output

    def test_sloppy_partition_scenario(self, capsys):
        assert main(["churn", "--scenario", "sloppy_partition", "--mechanism", "dvv",
                     "--quorum-mode", "sloppy", "--seed", "5"]) == 0
        output = capsys.readouterr().out
        assert "sloppy_partition" in output
        assert "requests failed" in output

    def test_sloppy_partition_strict_mode_reports_failures(self, capsys):
        assert main(["churn", "--scenario", "sloppy_partition", "--mechanism", "dvv",
                     "--quorum-mode", "strict", "--seed", "5"]) == 0
        output = capsys.readouterr().out
        assert "strict" in output

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["churn", "--scenario", "nonsense"])

    def test_unknown_quorum_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["churn", "--quorum-mode", "wishful"])
