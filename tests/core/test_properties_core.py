"""Property-based tests (Hypothesis) for the core clock types.

The key invariant throughout the library: every compact clock is a faithful
encoding of a causal history, and its comparison operator must agree with set
inclusion on the denoted histories.  These properties are checked here on
randomly generated clocks; the mechanism-level analogue (random *traces*) is
in ``tests/clocks/test_properties_mechanisms.py``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CausalHistory,
    Dot,
    DottedVersionVector,
    Ordering,
    VersionVector,
    decode,
    encode,
    semantic_compare,
)

ACTORS = ["A", "B", "C", "D"]


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def version_vectors(max_counter: int = 6) -> st.SearchStrategy[VersionVector]:
    return st.dictionaries(
        st.sampled_from(ACTORS), st.integers(min_value=0, max_value=max_counter), max_size=4
    ).map(VersionVector)


def dots(max_counter: int = 8) -> st.SearchStrategy[Dot]:
    return st.builds(Dot, st.sampled_from(ACTORS), st.integers(min_value=1, max_value=max_counter))


@st.composite
def dotted_version_vectors(draw) -> DottedVersionVector:
    past = draw(version_vectors())
    actor = draw(st.sampled_from(ACTORS))
    # the dot must lie strictly above the past's entry for its actor
    counter = draw(st.integers(min_value=past.get(actor) + 1, max_value=past.get(actor) + 4))
    return DottedVersionVector(Dot(actor, counter), past)


def causal_histories() -> st.SearchStrategy[CausalHistory]:
    return st.frozensets(dots(), max_size=10).map(lambda ds: CausalHistory(None, ds))


# --------------------------------------------------------------------------- #
# Version vector lattice laws
# --------------------------------------------------------------------------- #
@given(version_vectors(), version_vectors())
def test_vv_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(version_vectors(), version_vectors(), version_vectors())
def test_vv_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(version_vectors())
def test_vv_merge_idempotent(a):
    assert a.merge(a) == a


@given(version_vectors(), version_vectors())
def test_vv_merge_is_upper_bound(a, b):
    merged = a.merge(b)
    assert merged.descends(a)
    assert merged.descends(b)


@given(version_vectors(), version_vectors())
def test_vv_comparison_antisymmetric(a, b):
    relation = a.compare(b)
    assert b.compare(a) is relation.inverse()


@given(version_vectors(), version_vectors())
def test_vv_comparison_matches_semantic_comparison(a, b):
    assert a.compare(b) is semantic_compare(a, b)


@given(version_vectors())
def test_vv_increment_strictly_dominates(a):
    for actor in ACTORS:
        assert a.increment(actor).dominates(a)


@given(version_vectors())
def test_vv_dots_round_trip(a):
    assert VersionVector.from_dots(a.dots()) == a


# --------------------------------------------------------------------------- #
# Causal history laws
# --------------------------------------------------------------------------- #
@given(causal_histories(), causal_histories())
def test_history_comparison_is_set_inclusion(a, b):
    relation = a.compare(b)
    if relation is Ordering.EQUAL:
        assert a.events() == b.events()
    elif relation is Ordering.BEFORE:
        assert a.events() < b.events()
    elif relation is Ordering.AFTER:
        assert a.events() > b.events()
    else:
        assert not (a.events() <= b.events()) and not (b.events() <= a.events())


@given(causal_histories(), causal_histories())
def test_history_merge_is_least_upper_bound(a, b):
    merged = a.merge(b)
    assert merged.events() == a.events() | b.events()


# --------------------------------------------------------------------------- #
# Dotted version vector laws
# --------------------------------------------------------------------------- #
@given(dotted_version_vectors(), dotted_version_vectors())
def test_dvv_comparison_respects_ordered_histories(a, b):
    """Whenever the denoted histories are ordered, the DVV comparison agrees.

    (The converse — concurrent histories implying a CONCURRENT verdict — only
    holds for clocks produced by actual executions, where a causal past that
    contains a version's dot also contains that version's entire history;
    that stronger property is checked by the execution-driven test below and
    by the mechanism-level property tests.)
    """
    truth = semantic_compare(a, b)
    if truth in (Ordering.BEFORE, Ordering.AFTER, Ordering.EQUAL):
        assert a.compare(b) is truth


@st.composite
def kernel_operations(draw):
    """A random storage-system execution expressed as kernel operations.

    Operations are (client, server, action) triples over 3 clients and 2
    servers; "read" refreshes the client's context from a server, "write"
    pushes a new version through a server using whatever context the client
    holds (possibly stale — that is what creates concurrency), "sync" merges
    the two servers.
    """
    return draw(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),      # client
            st.integers(min_value=0, max_value=1),      # server
            st.sampled_from(["read", "write", "write", "sync"]),
        ),
        min_size=1,
        max_size=25,
    ))


@given(kernel_operations())
@settings(max_examples=60)
def test_dvv_kernel_execution_agrees_with_causal_history(operations):
    """Clocks produced by the update/sync/join kernel order exactly like the
    ground-truth causal histories of the same execution."""
    from repro.core.dvv import join as dvv_join, sync as dvv_sync, update as dvv_update

    servers = [[], []]            # list of (DottedVersionVector, CausalHistory)
    contexts = [
        [(VersionVector.empty(), CausalHistory.empty()) for _ in range(2)]
        for _ in range(3)
    ]
    write_seq = 0

    for client, server, action in operations:
        if action == "read":
            clocks = [clock for clock, _ in servers[server]]
            merged_history = CausalHistory.empty()
            for _, history in servers[server]:
                merged_history = merged_history.merge(history)
            contexts[client][server] = (dvv_join(clocks), merged_history)
        elif action == "write":
            context_vv, context_history = contexts[client][server]
            write_seq += 1
            clocks = [clock for clock, _ in servers[server]]
            new_clock = dvv_update(context_vv, clocks, f"S{server}")
            new_history = CausalHistory(new_clock.dot, context_history.events())
            survivors = [
                (clock, history) for clock, history in servers[server]
                if not context_vv.contains_dot(clock.dot)
            ]
            servers[server] = survivors + [(new_clock, new_history)]
        else:  # sync
            merged_clocks = dvv_sync(
                [clock for clock, _ in servers[0]],
                [clock for clock, _ in servers[1]],
            )
            history_by_dot = {
                clock.dot: history for clock, history in servers[0] + servers[1]
            }
            merged = [(clock, history_by_dot[clock.dot]) for clock in merged_clocks]
            servers[0] = list(merged)
            servers[1] = list(merged)

    live = servers[0] + servers[1]
    for clock_a, history_a in live:
        for clock_b, history_b in live:
            assert clock_a.compare(clock_b) is history_a.compare(history_b)


@given(dotted_version_vectors(), dotted_version_vectors())
def test_dvv_happens_before_matches_o1_rule(a, b):
    """a < b iff n_a <= v_b[i_a] (for distinct dots) — the O(1) rule."""
    expected = a.dot != b.dot and b.causal_past.contains_dot(a.dot)
    assert a.happens_before(b) == expected


@given(dotted_version_vectors(), dotted_version_vectors())
def test_dvv_concurrency_is_symmetric(a, b):
    assert a.concurrent_with(b) == b.concurrent_with(a)


@given(dotted_version_vectors())
def test_dvv_never_precedes_itself(a):
    assert not a.happens_before(a)
    assert not a.concurrent_with(a)


@given(dotted_version_vectors())
def test_dvv_denotation_contains_own_dot(a):
    assert a.dot in a.to_causal_history()


@given(dotted_version_vectors())
def test_dvv_ceiling_vector_covers_denotation(a):
    ceiling = a.to_version_vector()
    for event in a.to_causal_history():
        assert ceiling.contains_dot(event)


# --------------------------------------------------------------------------- #
# Serialisation round trips
# --------------------------------------------------------------------------- #
@given(version_vectors())
def test_vv_binary_round_trip(a):
    assert decode(encode(a)) == a


@given(dotted_version_vectors())
def test_dvv_binary_round_trip(a):
    assert decode(encode(a)) == a


@given(causal_histories())
@settings(max_examples=50)
def test_history_binary_round_trip(a):
    assert decode(encode(a)) == a
