"""Unit tests for :mod:`repro.core.dot`."""

from __future__ import annotations

import pytest

from repro.core import Dot, InvalidDotError, dot


class TestDotConstruction:
    def test_basic_construction(self):
        d = Dot("A", 3)
        assert d.actor == "A"
        assert d.counter == 3

    def test_factory_function(self):
        assert dot("srv-1", 7) == Dot("srv-1", 7)

    def test_counter_must_be_positive(self):
        with pytest.raises(InvalidDotError):
            Dot("A", 0)
        with pytest.raises(InvalidDotError):
            Dot("A", -2)

    def test_counter_must_be_int(self):
        with pytest.raises(InvalidDotError):
            Dot("A", 1.5)
        with pytest.raises(InvalidDotError):
            Dot("A", True)

    def test_actor_must_be_non_empty_string(self):
        with pytest.raises(InvalidDotError):
            Dot("", 1)
        with pytest.raises(InvalidDotError):
            Dot(7, 1)


class TestDotBehaviour:
    def test_equality_and_hash(self):
        assert Dot("A", 1) == Dot("A", 1)
        assert Dot("A", 1) != Dot("A", 2)
        assert Dot("A", 1) != Dot("B", 1)
        assert len({Dot("A", 1), Dot("A", 1), Dot("B", 1)}) == 2

    def test_total_order_is_lexicographic(self):
        assert Dot("A", 2) < Dot("A", 3)
        assert Dot("A", 9) < Dot("B", 1)
        assert sorted([Dot("B", 1), Dot("A", 2), Dot("A", 1)]) == [
            Dot("A", 1), Dot("A", 2), Dot("B", 1)
        ]

    def test_next(self):
        assert Dot("A", 1).next() == Dot("A", 2)
        assert Dot("A", 5).next().counter == 6

    def test_previous_dots(self):
        assert list(Dot("A", 1).previous_dots()) == []
        assert list(Dot("A", 4).previous_dots()) == [Dot("A", 1), Dot("A", 2), Dot("A", 3)]

    def test_as_tuple_and_str(self):
        assert Dot("A", 3).as_tuple() == ("A", 3)
        assert str(Dot("A", 3)) == "(A,3)"

    def test_immutability(self):
        d = Dot("A", 1)
        with pytest.raises(Exception):
            d.counter = 2  # type: ignore[misc]
