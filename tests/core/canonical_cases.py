"""Shared corpus of representative clock values for the canonical-codec tests.

The golden fixture ``golden_clock_encodings.json`` pins the byte-level output
of the canonical encoder (and the wire value codec) for every case built here.
It was generated from the pre-refactor encoders — before the memoizing
canonical-bytes layer existed — so the tests asserting against it prove the
refactor changed *where* bytes are computed, never *which* bytes.

Regenerate (only when the wire format deliberately changes, never to make a
refactor pass) with::

    PYTHONPATH=src python tests/core/canonical_cases.py --write
"""

from __future__ import annotations

import json
import pathlib

from repro.clocks.interface import Sibling
from repro.clocks.vve import DottedVVE, VersionVectorWithExceptions
from repro.core import CausalHistory, DVVSet, Dot, DottedVersionVector, VersionVector
from repro.kvstore.context import CausalContext

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_clock_encodings.json"

#: Cases the core serialization codec (`repro.core.serialization.encode`)
#: must reproduce byte for byte.
SERIALIZATION_KINDS = ("version_vector", "dvv", "causal_history", "dvvset")


def build_cases():
    """``[(name, kind, value)]`` — deterministic, no auto-assigned ids."""
    vv = VersionVector({"A": 3, "B": 1, "node-with-a-longer-id": 12})
    big_vv = VersionVector({f"client-{i}": i + 1 for i in range(40)})
    history = CausalHistory(
        Dot("A", 4), [Dot("A", 1), Dot("A", 2), Dot("B", 1), Dot("C", 7)]
    )
    sibling = Sibling(
        value="shopping-cart",
        origin_dot=Dot("B", 2),
        history=CausalHistory(Dot("B", 2), [Dot("A", 1)]),
        writer="client-7",
        uid=42,
    )
    return [
        ("vv_empty", "version_vector", VersionVector.empty()),
        ("vv_small", "version_vector", vv),
        ("vv_unicode", "version_vector", VersionVector({"nœud-β": 9})),
        ("vv_large", "version_vector", big_vv),
        ("dvv_plain", "dvv", DottedVersionVector(Dot("A", 6), vv)),
        ("dvv_gap", "dvv",
         DottedVersionVector(Dot("A", 3), VersionVector({"A": 1}))),
        ("ch_empty", "causal_history", CausalHistory.empty()),
        ("ch_no_event", "causal_history",
         CausalHistory(None, [Dot("A", 1), Dot("B", 2)])),
        ("ch_with_event", "causal_history", history),
        ("dvvset_empty", "dvvset", DVVSet.empty()),
        ("dvvset_values", "dvvset",
         DVVSet((("A", 3, ("v3", "v2")), ("B", 1, ("w1",))), ("anon",))),
        ("vve_plain", "vve",
         VersionVectorWithExceptions({"A": 5, "B": 2}, [Dot("A", 2), Dot("A", 4)])),
        ("dotted_vve", "dotted_vve",
         DottedVVE(Dot("C", 3),
                   VersionVectorWithExceptions({"A": 2}, [Dot("A", 1)]))),
        ("sibling", "sibling", sibling),
        ("context", "context",
         CausalContext(key="cart", mechanism_context=vv,
                       observed_history=history, mechanism_name="dvv")),
    ]


def encode_all():
    """Hex encodings of every case under both codecs (None where unsupported)."""
    from repro.core import serialization
    from repro.network import wire

    out = {}
    for name, kind, value in build_cases():
        entry = {"kind": kind}
        if kind in SERIALIZATION_KINDS:
            entry["serialization"] = serialization.encode(value).hex()
        buf = bytearray()
        wire._encode_value(value, buf)
        entry["wire"] = bytes(buf).hex()
        out[name] = entry
    return out


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        raise SystemExit("pass --write to regenerate the golden fixture")
    GOLDEN_PATH.write_text(json.dumps(encode_all(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
