"""Unit tests for :mod:`repro.core.version_vector`."""

from __future__ import annotations

import pytest

from repro.core import Dot, InvalidClockError, Ordering, VersionVector, VersionVectorBuilder


class TestConstruction:
    def test_empty(self):
        vv = VersionVector.empty()
        assert len(vv) == 0
        assert not vv
        assert vv.get("anything") == 0

    def test_zero_entries_are_dropped(self):
        vv = VersionVector({"A": 3, "B": 0})
        assert vv.actors() == {"A"}
        assert vv.get("B") == 0

    def test_invalid_counter_rejected(self):
        with pytest.raises(InvalidClockError):
            VersionVector({"A": -1})
        with pytest.raises(InvalidClockError):
            VersionVector({"A": 1.5})

    def test_invalid_actor_rejected(self):
        with pytest.raises(InvalidClockError):
            VersionVector({"": 1})

    def test_from_dots_rounds_up_to_prefix(self):
        vv = VersionVector.from_dots([Dot("A", 3), Dot("B", 1)])
        assert vv.get("A") == 3
        assert vv.get("B") == 1
        # from_dots keeps only the maximum per actor
        assert VersionVector.from_dots([Dot("A", 2), Dot("A", 5)]).get("A") == 5

    def test_single(self):
        assert VersionVector.single("A", 4) == VersionVector({"A": 4})


class TestEventsAndMerge:
    def test_increment_returns_new_vector(self):
        vv = VersionVector({"A": 1})
        vv2 = vv.increment("A")
        assert vv.get("A") == 1
        assert vv2.get("A") == 2

    def test_event_returns_dot(self):
        vv, d = VersionVector.empty().event("A")
        assert d == Dot("A", 1)
        assert vv.get("A") == 1

    def test_merge_is_pointwise_max(self):
        a = VersionVector({"A": 3, "B": 1})
        b = VersionVector({"A": 1, "B": 4, "C": 2})
        merged = a.merge(b)
        assert merged == VersionVector({"A": 3, "B": 4, "C": 2})

    def test_merge_commutative_and_idempotent(self):
        a = VersionVector({"A": 3, "B": 1})
        b = VersionVector({"B": 4, "C": 2})
        assert a.merge(b) == b.merge(a)
        assert a.merge(a) == a

    def test_with_entry_and_without(self):
        vv = VersionVector({"A": 3, "B": 1})
        assert vv.with_entry("B", 5).get("B") == 5
        assert vv.with_entry("B", 0).actors() == {"A"}
        assert vv.without(["A"]).actors() == {"B"}
        assert vv.restricted_to(["A"]).actors() == {"A"}


class TestComparison:
    def test_equal(self):
        assert VersionVector({"A": 1}).compare(VersionVector({"A": 1})) is Ordering.EQUAL

    def test_before_and_after(self):
        small = VersionVector({"A": 1})
        big = VersionVector({"A": 2, "B": 1})
        assert small.compare(big) is Ordering.BEFORE
        assert big.compare(small) is Ordering.AFTER

    def test_concurrent(self):
        a = VersionVector({"A": 2})
        b = VersionVector({"B": 1})
        assert a.compare(b) is Ordering.CONCURRENT
        assert a.concurrent_with(b)

    def test_missing_entries_treated_as_zero(self):
        assert VersionVector({}).compare(VersionVector({"A": 1})) is Ordering.BEFORE

    def test_descends_and_dominates(self):
        big = VersionVector({"A": 2, "B": 1})
        small = VersionVector({"A": 1})
        assert big.descends(small)
        assert big.dominates(small)
        assert big.descends(big)
        assert not big.dominates(big)
        assert not small.descends(big)

    def test_contains_dot_is_prefix_membership(self):
        vv = VersionVector({"A": 3})
        assert vv.contains_dot(Dot("A", 1))
        assert vv.contains_dot(Dot("A", 3))
        assert not vv.contains_dot(Dot("A", 4))
        assert not vv.contains_dot(Dot("B", 1))


class TestIntrospection:
    def test_dots_enumeration(self):
        vv = VersionVector({"A": 2, "B": 1})
        assert set(vv.dots()) == {Dot("A", 1), Dot("A", 2), Dot("B", 1)}

    def test_total_events(self):
        assert VersionVector({"A": 2, "B": 3}).total_events() == 5

    def test_max_dot(self):
        vv = VersionVector({"A": 2})
        assert vv.max_dot("A") == Dot("A", 2)
        assert vv.max_dot("B") is None

    def test_hash_and_str(self):
        a = VersionVector({"A": 1, "B": 2})
        b = VersionVector({"B": 2, "A": 1})
        assert hash(a) == hash(b)
        assert str(a) == "[A:1, B:2]"


class TestBuilder:
    def test_builder_observe_and_increment(self):
        builder = VersionVectorBuilder()
        builder.observe_dot(Dot("A", 3))
        builder.observe_dot(Dot("A", 1))  # lower dot must not regress the counter
        d = builder.increment("B")
        assert d == Dot("B", 1)
        assert builder.freeze() == VersionVector({"A": 3, "B": 1})

    def test_builder_merge(self):
        builder = VersionVectorBuilder(VersionVector({"A": 1}))
        builder.merge(VersionVector({"A": 3, "B": 2}))
        assert builder.freeze() == VersionVector({"A": 3, "B": 2})
        assert builder.get("B") == 2
