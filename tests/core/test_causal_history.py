"""Unit tests for :mod:`repro.core.causal_history`."""

from __future__ import annotations

import pytest

from repro.core import CausalHistory, Dot, InvalidClockError, Ordering


class TestConstruction:
    def test_empty(self):
        h = CausalHistory.empty()
        assert len(h) == 0
        assert h.event is None
        assert list(h) == []

    def test_event_excluded_from_past(self):
        h = CausalHistory(Dot("A", 2), [Dot("A", 1), Dot("A", 2)])
        assert h.event == Dot("A", 2)
        assert h.past == frozenset({Dot("A", 1)})
        assert h.events() == frozenset({Dot("A", 1), Dot("A", 2)})

    def test_from_events(self):
        h = CausalHistory.from_events([Dot("A", 1), Dot("B", 1)], event=Dot("B", 1))
        assert h.event == Dot("B", 1)
        assert Dot("A", 1) in h

    def test_from_events_adds_missing_event(self):
        h = CausalHistory.from_events([Dot("A", 1)], event=Dot("B", 1))
        assert h.events() == frozenset({Dot("A", 1), Dot("B", 1)})

    def test_rejects_non_dot_entries(self):
        with pytest.raises(InvalidClockError):
            CausalHistory(None, ["A1"])  # type: ignore[list-item]
        with pytest.raises(InvalidClockError):
            CausalHistory("A1")  # type: ignore[arg-type]


class TestEventsAndMerge:
    def test_record_event_extends_history(self):
        h = CausalHistory.empty().record_event(Dot("A", 1))
        h2 = h.record_event(Dot("A", 2))
        assert h2.event == Dot("A", 2)
        assert Dot("A", 1) in h2.past

    def test_record_event_rejects_duplicates(self):
        h = CausalHistory(Dot("A", 1))
        with pytest.raises(InvalidClockError):
            h.record_event(Dot("A", 1))

    def test_merge_is_set_union_without_event(self):
        a = CausalHistory(Dot("A", 1))
        b = CausalHistory(Dot("B", 1))
        merged = a.merge(b)
        assert merged.event is None
        assert merged.events() == frozenset({Dot("A", 1), Dot("B", 1)})

    def test_merge_commutative_idempotent(self):
        a = CausalHistory(Dot("A", 2), [Dot("A", 1)])
        b = CausalHistory(Dot("B", 1), [Dot("A", 1)])
        assert a.merge(b).events() == b.merge(a).events()
        assert a.merge(a).events() == a.events()


class TestComparison:
    def test_figure_1a_relations(self):
        """The exact relations shown in Figure 1a of the paper."""
        a1 = CausalHistory(Dot("A", 1))
        a2 = CausalHistory(Dot("A", 2), [Dot("A", 1)])
        a3 = CausalHistory(Dot("A", 3), [Dot("A", 1)])          # concurrent with a2
        b1 = CausalHistory(Dot("B", 1), [Dot("A", 1), Dot("A", 2)])
        a4 = CausalHistory(Dot("A", 4), [Dot("A", 1), Dot("A", 2), Dot("A", 3)])

        assert a1.compare(a2) is Ordering.BEFORE
        assert a2.compare(a1) is Ordering.AFTER
        assert a2.compare(a3) is Ordering.CONCURRENT
        assert a3.compare(b1) is Ordering.CONCURRENT
        assert a2.compare(b1) is Ordering.BEFORE
        assert a3.compare(a4) is Ordering.BEFORE
        assert a2.compare(a4) is Ordering.BEFORE

    def test_happens_before_uses_dot_containment(self):
        a = CausalHistory(Dot("A", 1))
        b = CausalHistory(Dot("B", 1), [Dot("A", 1)])
        assert a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.happens_before(a)

    def test_concurrent_with(self):
        a = CausalHistory(Dot("A", 2), [Dot("A", 1)])
        b = CausalHistory(Dot("A", 3), [Dot("A", 1)])
        assert a.concurrent_with(b)
        assert not a.concurrent_with(a)

    def test_equal(self):
        a = CausalHistory(Dot("A", 1))
        b = CausalHistory(Dot("A", 1))
        assert a.compare(b) is Ordering.EQUAL
        assert a == b
        assert hash(a) == hash(b)


class TestFormatting:
    def test_str_marks_the_event(self):
        h = CausalHistory(Dot("A", 2), [Dot("A", 1)])
        assert str(h) == "{A1,*A2*}"

    def test_contains(self):
        h = CausalHistory(Dot("A", 2), [Dot("A", 1)])
        assert h.contains(Dot("A", 1))
        assert h.contains(Dot("A", 2))
        assert not h.contains(Dot("B", 1))
