"""Unit tests for :mod:`repro.core.dvvset`."""

from __future__ import annotations

import pytest

from repro.core import DVVSet, Dot, InvalidClockError, Ordering, VersionVector


class TestConstruction:
    def test_new_holds_anonymous_value(self):
        clock = DVVSet.new("v1")
        assert clock.values() == ["v1"]
        assert clock.entry_count() == 0
        assert clock.anonymous == ("v1",)

    def test_new_with_context(self):
        clock = DVVSet.new_with_context(VersionVector({"A": 2}), "v2")
        assert clock.counter("A") == 2
        assert clock.values() == ["v2"]

    def test_empty(self):
        clock = DVVSet.empty()
        assert clock.size() == 0
        assert clock.values() == []

    def test_invalid_entries_rejected(self):
        with pytest.raises(InvalidClockError):
            DVVSet([("A", 1, ("x", "y"))])          # more values than events
        with pytest.raises(InvalidClockError):
            DVVSet([("A", -1, ())])
        with pytest.raises(InvalidClockError):
            DVVSet([("A", 1, ()), ("A", 2, ())])    # duplicate actor
        with pytest.raises(InvalidClockError):
            DVVSet([("", 1, ())])


class TestServerProtocol:
    def test_blind_write_then_update(self):
        incoming = DVVSet.new("v1")
        stored = incoming.update(DVVSet.empty(), "A")
        assert stored.values() == ["v1"]
        assert stored.counter("A") == 1
        assert stored.join() == VersionVector({"A": 1})

    def test_read_modify_write_supersedes(self):
        stored = DVVSet.new("v1").update(DVVSet.empty(), "A")
        context = stored.join()
        stored = DVVSet.new_with_context(context, "v2").update(stored, "A")
        assert stored.values() == ["v2"]
        assert stored.counter("A") == 2

    def test_concurrent_writes_through_same_server_become_siblings(self):
        """The Figure 1c scenario at the DVVSet level."""
        stored = DVVSet.new("v1").update(DVVSet.empty(), "A")
        context_after_v1 = stored.join()
        stored = DVVSet.new_with_context(context_after_v1, "v2").update(stored, "A")
        # The second client still holds the context from before v2 was written.
        stored = DVVSet.new_with_context(context_after_v1, "v3").update(stored, "A")
        assert sorted(stored.values()) == ["v2", "v3"]
        assert stored.counter("A") == 3

    def test_update_requires_single_anonymous_value(self):
        with pytest.raises(InvalidClockError):
            DVVSet.empty().update(DVVSet.empty(), "A")

    def test_writes_through_different_servers(self):
        at_a = DVVSet.new("v1").update(DVVSet.empty(), "A")
        at_b = DVVSet.new("v2").update(DVVSet.empty(), "B")
        merged = at_a.sync(at_b)
        assert sorted(merged.values()) == ["v1", "v2"]
        assert merged.counter("A") == 1
        assert merged.counter("B") == 1


class TestSync:
    def test_sync_identical_clocks_is_idempotent(self):
        clock = DVVSet.new("v1").update(DVVSet.empty(), "A")
        assert clock.sync(clock) == clock

    def test_sync_drops_superseded_values(self):
        older = DVVSet.new("v1").update(DVVSet.empty(), "A")
        newer = DVVSet.new_with_context(older.join(), "v2").update(older, "A")
        merged = older.sync(newer)
        assert merged.values() == ["v2"]
        assert merged == newer.sync(older)

    def test_sync_keeps_concurrent_values(self):
        base = DVVSet.new("v1").update(DVVSet.empty(), "A")
        ctx = base.join()
        left = DVVSet.new_with_context(ctx, "left").update(base, "A")
        right = DVVSet.new_with_context(ctx, "right").update(base, "B")
        merged = left.sync(right)
        assert sorted(merged.values()) == ["left", "right"]

    def test_sync_merges_anonymous_values(self):
        a = DVVSet.new("x")
        b = DVVSet.new("y")
        merged = a.sync(b)
        assert sorted(merged.values()) == ["x", "y"]
        # duplicates collapse
        assert a.sync(a).values() == ["x"]


class TestComparisonAndIntrospection:
    def test_compare(self):
        older = DVVSet.new("v1").update(DVVSet.empty(), "A")
        newer = DVVSet.new_with_context(older.join(), "v2").update(older, "A")
        assert older.compare(newer) is Ordering.BEFORE
        assert newer.compare(older) is Ordering.AFTER
        assert older.compare(older) is Ordering.EQUAL

    def test_concurrent_compare(self):
        at_a = DVVSet.new("v1").update(DVVSet.empty(), "A")
        at_b = DVVSet.new("v2").update(DVVSet.empty(), "B")
        assert at_a.compare(at_b) is Ordering.CONCURRENT

    def test_dots_enumeration(self):
        stored = DVVSet.new("v1").update(DVVSet.empty(), "A")
        stored = DVVSet.new_with_context(stored.join(), "v2").update(stored, "A")
        dots = dict(stored.dots())
        assert dots[Dot("A", 2)] == "v2"
        assert dots[Dot("A", 1)] is None  # superseded event keeps no value

    def test_contains_dot(self):
        stored = DVVSet.new("v1").update(DVVSet.empty(), "A")
        assert stored.contains_dot(Dot("A", 1))
        assert not stored.contains_dot(Dot("A", 2))

    def test_entry_count_bounded_by_servers_not_values(self):
        stored = DVVSet.empty()
        for index in range(10):
            context = stored.join()
            # every write goes through the same two servers alternately
            server = "A" if index % 2 == 0 else "B"
            stored = DVVSet.new_with_context(context, f"v{index}").update(stored, server)
        assert stored.entry_count() == 2

    def test_total_events_and_size(self):
        stored = DVVSet.new("v1").update(DVVSet.empty(), "A")
        stored = DVVSet.new("v2").update(stored, "A")  # blind write -> sibling
        assert stored.total_events() == 2
        assert stored.size() == 2
