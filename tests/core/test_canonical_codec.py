"""The canonical-bytes layer's two hard invariants, pinned and property-tested.

1. **Byte identity**: the memoized canonical encoding is byte-identical to the
   pre-refactor format — checked against ``golden_clock_encodings.json``
   (generated from the encoders as they were *before* the canonical-bytes
   layer existed) for both the core serialization codec and the wire value
   codec.
2. **Cache correctness**: after any sequence of mutation-shaped operations
   (which all return new objects), the memoized encoding and fingerprint of
   every reachable clock equal a from-scratch recompute.

Plus the supporting guarantees the layer relies on: strict immutability of
every canonical clock type, and actor-string interning on the decode paths.
"""

from __future__ import annotations

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import Sibling, available, create
from repro.clocks.vve import DottedVVE, VersionVectorWithExceptions
from repro.core import (
    CausalHistory,
    DVVSet,
    Dot,
    DottedVersionVector,
    VersionVector,
    codec,
    serialization,
)
from repro.core.dvv import join as dvv_join, sync as dvv_sync, update as dvv_update
from repro.network import wire

from canonical_cases import GOLDEN_PATH, SERIALIZATION_KINDS, build_cases

GOLDEN = json.loads(GOLDEN_PATH.read_text())

ACTORS = ["A", "B", "C"]


def wire_hex(value) -> str:
    buf = bytearray()
    wire._encode_value(value, buf)
    return bytes(buf).hex()


def cold_bytes(clock) -> bytes:
    """A from-scratch recompute, bypassing the instance memo."""
    return codec._ENCODERS[type(clock)](clock)


def assert_memo_consistent(clock) -> None:
    encoded = codec.canonical_bytes(clock)
    assert encoded == cold_bytes(clock)
    assert codec.fingerprint(clock) == hashlib.sha256(encoded).digest()
    # Second reads serve the identical objects from the memo slots.
    assert codec.canonical_bytes(clock) is encoded


# --------------------------------------------------------------------------- #
# Golden byte fixtures (pre-refactor encodings, bit for bit)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name,kind,value",
                         build_cases(), ids=[c[0] for c in build_cases()])
def test_wire_bytes_match_pre_refactor_golden(name, kind, value):
    assert wire_hex(value) == GOLDEN[name]["wire"], (
        f"{name}: wire encoding diverged from the pre-refactor capture")


@pytest.mark.parametrize(
    "name,kind,value",
    [c for c in build_cases() if c[1] in SERIALIZATION_KINDS],
    ids=[c[0] for c in build_cases() if c[1] in SERIALIZATION_KINDS])
def test_serialization_bytes_match_pre_refactor_golden(name, kind, value):
    assert serialization.encode(value).hex() == GOLDEN[name]["serialization"], (
        f"{name}: canonical encoding diverged from the pre-refactor capture")


def test_golden_cases_cover_every_canonical_type():
    covered = {type(value) for _, _, value in build_cases()}
    assert {VersionVector, DottedVersionVector, CausalHistory, DVVSet,
            VersionVectorWithExceptions, DottedVVE} <= covered


# --------------------------------------------------------------------------- #
# Memoization semantics
# --------------------------------------------------------------------------- #
def test_encoding_is_memoized_on_the_instance():
    vv = VersionVector({"A": 3, "B": 1})
    codec.reset_codec_stats()
    first = codec.canonical_bytes(vv)
    second = codec.canonical_bytes(vv)
    assert first is second
    stats = codec.codec_stats()
    assert stats["encode_misses"] == 1
    assert stats["encode_hits"] == 1


def test_fingerprint_is_sha256_of_canonical_bytes():
    clock = DottedVersionVector(Dot("A", 2), VersionVector({"B": 1}))
    assert codec.fingerprint(clock) == hashlib.sha256(
        codec.canonical_bytes(clock)).digest()
    assert codec.hexfingerprint(clock) == codec.fingerprint(clock).hex()


def test_unsupported_types_still_raise_serialization_error():
    from repro.core.exceptions import SerializationError

    with pytest.raises(SerializationError):
        serialization.encode("not a clock")
    with pytest.raises(SerializationError):
        codec.fingerprint(object())


def test_encoded_size_is_a_cache_read():
    clock = DVVSet((("A", 2, ("x",)),), ())
    size = serialization.encoded_size(clock)
    codec.reset_codec_stats()
    assert serialization.encoded_size(clock) == size
    assert codec.codec_stats()["encode_misses"] == 0


# --------------------------------------------------------------------------- #
# Strict immutability
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("clock", [
    VersionVector({"A": 1}),
    DottedVersionVector(Dot("A", 2), VersionVector({"B": 1})),
    CausalHistory(Dot("A", 1), [Dot("B", 1)]),
    DVVSet((("A", 1, ("v",)),), ()),
    VersionVectorWithExceptions({"A": 3}, [Dot("A", 2)]),
    DottedVVE(Dot("B", 1), VersionVectorWithExceptions({"A": 1})),
], ids=lambda c: type(c).__name__)
def test_canonical_clocks_are_strictly_immutable(clock):
    with pytest.raises(AttributeError):
        clock.anything = 1
    with pytest.raises(AttributeError):
        clock._encoded = b"forged"
    with pytest.raises(AttributeError):
        del clock._fingerprint


# --------------------------------------------------------------------------- #
# Hypothesis: memo == cold recompute after every mutation path
# --------------------------------------------------------------------------- #
def version_vectors(max_counter: int = 6) -> st.SearchStrategy[VersionVector]:
    return st.dictionaries(
        st.sampled_from(ACTORS),
        st.integers(min_value=0, max_value=max_counter),
        max_size=3,
    ).map(VersionVector)


def some_dots(max_counter: int = 6):
    return st.builds(Dot, st.sampled_from(ACTORS),
                     st.integers(min_value=1, max_value=max_counter))


@settings(max_examples=60, deadline=None)
@given(vv=version_vectors(), ops=st.lists(
    st.tuples(st.sampled_from(["increment", "merge", "with_entry", "without"]),
              st.sampled_from(ACTORS), st.integers(min_value=0, max_value=6)),
    max_size=6))
def test_version_vector_ops_keep_memo_consistent(vv, ops):
    for op, actor, counter in ops:
        assert_memo_consistent(vv)
        if op == "increment":
            vv = vv.increment(actor)
        elif op == "merge":
            vv = vv.merge(VersionVector({actor: counter or 1}))
        elif op == "with_entry":
            vv = vv.with_entry(actor, counter)
        else:
            vv = vv.without([actor])
    assert_memo_consistent(vv)


@settings(max_examples=60, deadline=None)
@given(contexts=st.lists(version_vectors(), min_size=1, max_size=4),
       servers=st.lists(st.sampled_from(["S0", "S1"]), min_size=1, max_size=4))
def test_dvv_kernel_ops_keep_memo_consistent(contexts, servers):
    stored = []
    for context, server in zip(contexts, servers * len(contexts)):
        clock = dvv_update(context, stored, server)
        assert_memo_consistent(clock)
        stored = dvv_sync(stored, [clock])
        for survivor in stored:
            assert_memo_consistent(survivor)
    join_vv = dvv_join(stored)
    assert_memo_consistent(join_vv)


@settings(max_examples=60, deadline=None)
@given(writes=st.lists(
    st.tuples(st.sampled_from(["S0", "S1"]), st.text(min_size=1, max_size=4)),
    min_size=1, max_size=6))
def test_dvvset_ops_keep_memo_consistent(writes):
    stored = DVVSet.empty()
    for server, value in writes:
        incoming = DVVSet.new_with_context(stored.join(), value)
        stored = incoming.update(stored, server)
        assert_memo_consistent(stored)
        assert_memo_consistent(stored.sync(stored))
        assert_memo_consistent(stored.join())


@settings(max_examples=60, deadline=None)
@given(events=st.lists(some_dots(max_counter=30), min_size=0, max_size=6,
                       unique=True))
def test_causal_history_ops_keep_memo_consistent(events):
    history = CausalHistory.empty()
    for index, dot in enumerate(events):
        if dot in history.events():
            continue
        history = history.record_event(dot)
        assert_memo_consistent(history)
        if index % 2:
            history = history.merge(CausalHistory(None, [dot]))
            assert_memo_consistent(history)


@settings(max_examples=60, deadline=None)
@given(added=st.lists(some_dots(), max_size=6),
       merged=st.lists(some_dots(), max_size=4))
def test_vve_ops_keep_memo_consistent(added, merged):
    vve = VersionVectorWithExceptions.empty()
    for dot in added:
        vve = vve.add_dot(dot)
        assert_memo_consistent(vve)
    other = VersionVectorWithExceptions.from_dots(merged)
    assert_memo_consistent(other)
    union = vve.merge(other)
    assert_memo_consistent(union)
    dotted = DottedVVE(union.next_dot("A"), union)
    assert_memo_consistent(dotted)


def _walk_canonical(value, out):
    """Collect every canonical-typed object reachable inside ``value``."""
    if codec.is_canonical_type(value):
        out.append(value)
    if isinstance(value, DottedVersionVector):
        out.append(value.causal_past)
    elif isinstance(value, DottedVVE):
        _walk_canonical(value.causal_past, out)
    elif isinstance(value, VersionVectorWithExceptions):
        out.append(value.base)
    elif isinstance(value, DVVSet):
        for _, _, values in value.entries:
            for item in values:
                _walk_canonical(item, out)
        for item in value.anonymous:
            _walk_canonical(item, out)
    elif isinstance(value, Sibling):
        _walk_canonical(value.history, out)
    elif isinstance(value, (list, tuple, frozenset)):
        for item in value:
            _walk_canonical(item, out)
    elif isinstance(value, dict):
        for item in value.values():
            _walk_canonical(item, out)


@pytest.mark.parametrize("mechanism_name", sorted(available()))
@settings(max_examples=20, deadline=None)
@given(trace=st.lists(
    st.tuples(st.sampled_from(["write", "merge"]),
              st.sampled_from(["S0", "S1"]),
              st.booleans()),
    min_size=1, max_size=8))
def test_mechanism_traces_keep_memo_consistent(mechanism_name, trace):
    """Every clock reachable from any mechanism state stays memo-consistent
    across update (write), sync/merge, join (read context) and prune paths."""
    mechanism = create(mechanism_name)
    replicas = {"S0": mechanism.empty_state(), "S1": mechanism.empty_state()}
    history = CausalHistory.empty()
    seq = 0
    for op, server, stale in trace:
        if op == "write":
            seq += 1
            read = mechanism.read(replicas[server])
            context = mechanism.empty_context() if stale else read.context
            dot = Dot("oracle", seq)
            history = CausalHistory(dot, history.events())
            sibling = Sibling(value=f"v{seq}", origin_dot=dot,
                              history=history, writer="c0")
            replicas[server] = mechanism.write(
                replicas[server], context, sibling, server, "c0")
        else:
            merged = mechanism.merge(replicas["S0"], replicas["S1"])
            replicas["S0"] = replicas["S1"] = merged
        for state in replicas.values():
            mechanism.metadata_bytes(state)  # exercise the size-cache path
            reachable = []
            _walk_canonical(state, reachable)
            _walk_canonical(mechanism.read(state).context, reachable)
            for clock in reachable:
                assert_memo_consistent(clock)


# --------------------------------------------------------------------------- #
# Actor interning on decode paths
# --------------------------------------------------------------------------- #
def test_serialization_decode_interns_actor_ids():
    actor = "inter" + "ned-node-id"  # dodge compile-time interning of literals
    vv = VersionVector({actor: 3})
    decoded_a = serialization.decode(serialization.encode(vv))
    decoded_b = serialization.decode(serialization.encode(vv))
    actors_a = list(decoded_a.entries())
    actors_b = list(decoded_b.entries())
    assert actors_a[0] is actors_b[0]


def test_wire_decode_interns_actor_ids():
    actor = "wire" + "-actor-id"
    clock = DottedVersionVector(Dot(actor, 2), VersionVector({actor: 1}))
    buf = bytearray()
    wire._encode_value(clock, buf)
    decoded, _ = wire._decode_value(bytes(buf), 0)
    assert decoded.dot.actor is next(iter(decoded.causal_past.entries()))


# --------------------------------------------------------------------------- #
# Sibling-set fingerprint memo
# --------------------------------------------------------------------------- #
def test_sibling_set_fingerprint_memoizes_and_matches_cold():
    dots = (Dot("A", 1), Dot("B", 4))
    codec.clear_state_fingerprint_cache()
    codec.reset_codec_stats()
    first = codec.sibling_set_fingerprint(dots)
    second = codec.sibling_set_fingerprint(dots)
    assert first == second
    assert first == hashlib.sha256(codec.sibling_set_material(dots)).digest()
    assert first == hashlib.sha256(b"A:1;B:4").digest()  # pinned material
    stats = codec.codec_stats()
    assert stats["state_fp_misses"] == 1
    assert stats["state_fp_hits"] == 1
