"""Unit tests for :mod:`repro.core.semantics` (denotations / ground truth)."""

from __future__ import annotations

import pytest

from repro.core import (
    CausalHistory,
    DVVSet,
    Dot,
    DottedVersionVector,
    Ordering,
    VersionVector,
    agrees_with_history,
    covers,
    denote,
    denote_dvv,
    denote_dvvset,
    denote_version_vector,
    semantic_compare,
)


class TestDenotations:
    def test_version_vector_denotes_prefixes(self):
        history = denote_version_vector(VersionVector({"A": 2, "B": 1}))
        assert history.events() == frozenset({Dot("A", 1), Dot("A", 2), Dot("B", 1)})

    def test_dvv_denotation_is_paper_equation(self):
        clock = DottedVersionVector(Dot("A", 3), VersionVector({"A": 1, "B": 1}))
        history = denote_dvv(clock)
        assert history.events() == frozenset({Dot("A", 3), Dot("A", 1), Dot("B", 1)})
        assert history.event == Dot("A", 3)

    def test_dvvset_denotation_covers_all_entries(self):
        clock = DVVSet([("A", 2, ("v2",)), ("B", 1, ())], ())
        history = denote_dvvset(clock)
        assert history.events() == frozenset({Dot("A", 1), Dot("A", 2), Dot("B", 1)})

    def test_denote_dispatch(self):
        assert denote(VersionVector({"A": 1})).events() == frozenset({Dot("A", 1)})
        assert denote(CausalHistory(Dot("A", 1))).events() == frozenset({Dot("A", 1)})
        with pytest.raises(TypeError):
            denote("not a clock")  # type: ignore[arg-type]


class TestSemanticComparison:
    def test_cross_type_comparison(self):
        vv = VersionVector({"A": 1})
        clock = DottedVersionVector(Dot("A", 2), VersionVector({"A": 1}))
        assert semantic_compare(vv, clock) is Ordering.BEFORE
        assert semantic_compare(clock, vv) is Ordering.AFTER

    def test_agreement_for_exact_clocks(self):
        a = DottedVersionVector(Dot("A", 2), VersionVector({"A": 1}))
        b = DottedVersionVector(Dot("A", 3), VersionVector({"A": 1}))
        assert agrees_with_history(a, b)

    def test_disagreement_for_lossy_encoding(self):
        """Folding concurrent DVVs into plain VVs loses the concurrency —
        exactly the failure mode of Figure 1b."""
        v2 = DottedVersionVector(Dot("A", 2), VersionVector({"A": 1}))
        v3 = DottedVersionVector(Dot("A", 3), VersionVector({"A": 1}))
        as_vv_2 = v2.to_version_vector()
        as_vv_3 = v3.to_version_vector()
        assert semantic_compare(v2, v3) is Ordering.CONCURRENT
        assert as_vv_2.compare(as_vv_3) is Ordering.BEFORE  # falsely ordered

    def test_covers(self):
        clock = DottedVersionVector(Dot("A", 3), VersionVector({"A": 1}))
        assert covers(clock, [Dot("A", 1), Dot("A", 3)])
        assert not covers(clock, [Dot("A", 2)])
