"""Unit tests for :mod:`repro.core.comparison`."""

from __future__ import annotations

import pytest

from repro.core import (
    IncomparableError,
    Ordering,
    VersionVector,
    compare,
    concurrent,
    dominates,
    equivalent,
    happens_after,
    happens_before,
    strictly_ordered,
)


class TestOrdering:
    def test_inverse(self):
        assert Ordering.BEFORE.inverse() is Ordering.AFTER
        assert Ordering.AFTER.inverse() is Ordering.BEFORE
        assert Ordering.EQUAL.inverse() is Ordering.EQUAL
        assert Ordering.CONCURRENT.inverse() is Ordering.CONCURRENT

    def test_is_ordered(self):
        assert Ordering.BEFORE.is_ordered
        assert Ordering.AFTER.is_ordered
        assert Ordering.EQUAL.is_ordered
        assert not Ordering.CONCURRENT.is_ordered


class TestHelpers:
    def setup_method(self):
        self.small = VersionVector({"A": 1})
        self.big = VersionVector({"A": 2})
        self.other = VersionVector({"B": 1})

    def test_compare_matches_method(self):
        assert compare(self.small, self.big) is Ordering.BEFORE
        assert compare(self.big, self.small) is Ordering.AFTER

    def test_happens_before_after(self):
        assert happens_before(self.small, self.big)
        assert happens_after(self.big, self.small)
        assert not happens_before(self.big, self.small)

    def test_concurrent_and_equivalent(self):
        assert concurrent(self.small, self.other)
        assert equivalent(self.small, VersionVector({"A": 1}))
        assert not equivalent(self.small, self.big)

    def test_dominates(self):
        assert dominates(self.big, self.small)
        assert dominates(self.small, self.small)
        assert not dominates(self.small, self.big)

    def test_strictly_ordered_raises_on_concurrency(self):
        assert strictly_ordered(self.small, self.big) is Ordering.BEFORE
        with pytest.raises(IncomparableError):
            strictly_ordered(self.small, self.other)
