"""Unit tests for :mod:`repro.core.dvv` (the paper's core contribution)."""

from __future__ import annotations

import pytest

from repro.core import (
    CausalHistory,
    Dot,
    DottedVersionVector,
    InvalidClockError,
    Ordering,
    VersionVector,
)
from repro.core.dvv import (
    covered_by_context,
    discard,
    join,
    max_counter_for,
    obsoleted_by,
    sync,
    update,
)


def dvv(actor, counter, past=None):
    return DottedVersionVector(Dot(actor, counter), VersionVector(past or {}))


class TestConstruction:
    def test_basic(self):
        clock = dvv("A", 2, {"A": 1, "B": 1})
        assert clock.dot == Dot("A", 2)
        assert clock.causal_past == VersionVector({"A": 1, "B": 1})

    def test_dot_must_not_be_inside_past(self):
        with pytest.raises(InvalidClockError):
            dvv("A", 1, {"A": 1})
        with pytest.raises(InvalidClockError):
            dvv("A", 2, {"A": 3})

    def test_non_contiguous_dot_is_allowed(self):
        # (A,3)[A:1] — the Figure 1c clock that skips (A,2).
        clock = dvv("A", 3, {"A": 1})
        assert clock.dot.counter == 3
        assert clock.causal_past.get("A") == 1

    def test_type_validation(self):
        with pytest.raises(InvalidClockError):
            DottedVersionVector(("A", 1), VersionVector())  # type: ignore[arg-type]
        with pytest.raises(InvalidClockError):
            DottedVersionVector(Dot("A", 1), {"A": 0})  # type: ignore[arg-type]


class TestCausality:
    def test_paper_rule_happens_before(self):
        """a < b iff n_a <= v_b[i_a] — Section 2 of the paper."""
        a = dvv("A", 1)
        b = dvv("A", 2, {"A": 1})
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_figure_1c_concurrency(self):
        """(A,3)[1,0] is concurrent with (A,2)[1,0]."""
        v2 = dvv("A", 2, {"A": 1})
        v3 = dvv("A", 3, {"A": 1})
        assert v2.concurrent_with(v3)
        assert v3.concurrent_with(v2)
        assert v2.compare(v3) is Ordering.CONCURRENT

    def test_figure_1c_resolution(self):
        """(A,4)[A:3,B:1] dominates both concurrent versions after the merge write."""
        v2 = dvv("A", 2, {"A": 1})
        v3 = dvv("A", 3, {"A": 1})
        b1 = dvv("B", 1, {"A": 2})
        v4 = dvv("A", 4, {"A": 3, "B": 1})
        assert v2.happens_before(v4)
        assert v3.happens_before(v4)
        assert b1.happens_before(v4)

    def test_cross_actor_concurrency(self):
        a = dvv("A", 1)
        b = dvv("B", 1)
        assert a.concurrent_with(b)

    def test_equal_and_descends(self):
        a = dvv("A", 2, {"A": 1})
        assert a.compare(dvv("A", 2, {"A": 1})) is Ordering.EQUAL
        assert a.descends(dvv("A", 1))
        assert a.descends(a)

    def test_contains_dot_is_constant_lookup_semantics(self):
        clock = dvv("A", 3, {"A": 1, "B": 2})
        assert clock.contains_dot(Dot("A", 3))     # its own dot
        assert clock.contains_dot(Dot("A", 1))     # in the past
        assert not clock.contains_dot(Dot("A", 2))  # the gap
        assert clock.contains_dot(Dot("B", 2))
        assert not clock.contains_dot(Dot("C", 1))


class TestConversions:
    def test_to_causal_history_matches_paper_equation(self):
        clock = dvv("A", 3, {"A": 1, "B": 2})
        history = clock.to_causal_history()
        assert history.event == Dot("A", 3)
        assert history.events() == frozenset(
            {Dot("A", 3), Dot("A", 1), Dot("B", 1), Dot("B", 2)}
        )

    def test_to_version_vector_folds_the_dot(self):
        clock = dvv("A", 3, {"A": 1, "B": 2})
        assert clock.to_version_vector() == VersionVector({"A": 3, "B": 2})

    def test_size_is_bounded_by_past_entries(self):
        assert dvv("A", 3, {"A": 1, "B": 2, "C": 9}).size() == 3


class TestKernelUpdate:
    def test_update_uses_client_context_as_past(self):
        context = VersionVector({"A": 1})
        new = update(context, [], "A")
        assert new.dot == Dot("A", 2)
        assert new.causal_past == context

    def test_update_skips_over_server_versions(self):
        """Figure 1c: a stale-context write through A gets dot (A,3), past [A:1]."""
        context = VersionVector({"A": 1})
        stored = [dvv("A", 2, {"A": 1})]
        new = update(context, stored, "A")
        assert new.dot == Dot("A", 3)
        assert new.causal_past == VersionVector({"A": 1})

    def test_update_with_empty_context(self):
        new = update(VersionVector.empty(), [], "A")
        assert new.dot == Dot("A", 1)
        assert new.causal_past == VersionVector.empty()

    def test_max_counter_considers_dots_and_pasts(self):
        stored = [dvv("A", 5, {"A": 2}), dvv("B", 1, {"A": 7})]
        assert max_counter_for("A", stored) == 7
        assert max_counter_for("A", stored, VersionVector({"A": 9})) == 9
        assert max_counter_for("C", stored) == 0


class TestKernelSyncAndJoin:
    def test_sync_discards_obsolete_versions(self):
        old = dvv("A", 1)
        new = dvv("A", 2, {"A": 1})
        assert sync([old], [new]) == [new]
        assert sync([new], [old]) == [new]

    def test_sync_keeps_concurrent_versions(self):
        v2 = dvv("A", 2, {"A": 1})
        v3 = dvv("A", 3, {"A": 1})
        merged = sync([v2], [v3])
        assert set(merged) == {v2, v3}

    def test_sync_deduplicates_same_dot(self):
        v = dvv("A", 2, {"A": 1})
        assert sync([v], [v]) == [v]

    def test_sync_is_deterministic_and_sorted(self):
        v2 = dvv("A", 2, {"A": 1})
        v3 = dvv("A", 3, {"A": 1})
        assert sync([v3], [v2]) == sync([v2], [v3])

    def test_sync_empty_sides(self):
        v = dvv("A", 1)
        assert sync([], [v]) == [v]
        assert sync([v], []) == [v]
        assert sync([], []) == []

    def test_join_is_ceiling_of_all_versions(self):
        v2 = dvv("A", 2, {"A": 1})
        v3 = dvv("A", 3, {"A": 1})
        assert join([v2, v3]) == VersionVector({"A": 3})
        assert join([]) == VersionVector.empty()

    def test_discard_removes_versions_covered_by_context(self):
        v2 = dvv("A", 2, {"A": 1})
        v3 = dvv("A", 3, {"A": 1})
        context = VersionVector({"A": 2})
        assert discard([v2, v3], context) == [v3]
        assert covered_by_context(v2, context)
        assert not covered_by_context(v3, context)

    def test_obsoleted_by(self):
        old = dvv("A", 1)
        new = dvv("A", 2, {"A": 1})
        assert obsoleted_by(old, [new])
        assert not obsoleted_by(new, [old, new])
