"""Unit tests for :mod:`repro.core.serialization`."""

from __future__ import annotations

import pytest

from repro.core import (
    CausalHistory,
    DVVSet,
    Dot,
    DottedVersionVector,
    SerializationError,
    VersionVector,
    decode,
    encode,
    encoded_size,
    entry_count,
    from_json,
    to_json,
)


SAMPLE_CLOCKS = [
    VersionVector.empty(),
    VersionVector({"A": 3, "B": 1, "server-with-long-name": 250}),
    DottedVersionVector(Dot("A", 3), VersionVector({"A": 1, "B": 7})),
    DottedVersionVector(Dot("node-1", 1), VersionVector()),
    CausalHistory.empty(),
    CausalHistory(Dot("A", 2), [Dot("A", 1), Dot("B", 5)]),
    DVVSet([("A", 3, ("v3", "v2")), ("B", 1, ())], ("anon",)),
    DVVSet.empty(),
]


class TestBinaryRoundTrip:
    @pytest.mark.parametrize("clock", SAMPLE_CLOCKS, ids=lambda c: type(c).__name__ + repr(c)[:30])
    def test_round_trip(self, clock):
        assert decode(encode(clock)) == clock

    def test_empty_input_rejected(self):
        with pytest.raises(SerializationError):
            decode(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            decode(b"Zjunk")

    def test_trailing_bytes_rejected(self):
        data = encode(VersionVector({"A": 1})) + b"extra"
        with pytest.raises(SerializationError):
            decode(data)

    def test_truncated_input_rejected(self):
        data = encode(VersionVector({"A": 1, "B": 2}))
        with pytest.raises(SerializationError):
            decode(data[:-1])

    def test_unencodable_type_rejected(self):
        with pytest.raises(SerializationError):
            encode("not a clock")  # type: ignore[arg-type]


class TestJsonRoundTrip:
    @pytest.mark.parametrize("clock", SAMPLE_CLOCKS[:6], ids=lambda c: type(c).__name__)
    def test_round_trip(self, clock):
        assert from_json(to_json(clock)) == clock

    def test_dvvset_json_round_trip(self):
        clock = DVVSet([("A", 2, ("v2",))], ("x",))
        assert from_json(to_json(clock)) == clock

    def test_unknown_type_rejected(self):
        with pytest.raises(SerializationError):
            from_json({"type": "mystery"})


class TestSizeAccounting:
    def test_vv_size_grows_with_entries(self):
        small = VersionVector({"A": 1})
        big = VersionVector({f"client-{i}": i + 1 for i in range(50)})
        assert encoded_size(big) > encoded_size(small)
        assert entry_count(small) == 1
        assert entry_count(big) == 50

    def test_dvv_entry_count_includes_dot(self):
        clock = DottedVersionVector(Dot("A", 3), VersionVector({"A": 1, "B": 2}))
        assert entry_count(clock) == 3

    def test_dvv_smaller_than_equivalent_client_vv(self):
        """The core size claim: DVV metadata bounded by #servers, client VV by #clients."""
        servers = ["S1", "S2", "S3"]
        dvv_clock = DottedVersionVector(Dot("S1", 40), VersionVector({s: 39 for s in servers}))
        client_vv = VersionVector({f"client-{i}": 1 for i in range(40)})
        assert encoded_size(dvv_clock) < encoded_size(client_vv)
        assert entry_count(dvv_clock) < entry_count(client_vv)

    def test_causal_history_entry_count_is_event_count(self):
        history = CausalHistory(Dot("A", 3), [Dot("A", 1), Dot("A", 2)])
        assert entry_count(history) == 3

    def test_varint_encoding_handles_large_counters(self):
        clock = VersionVector({"A": 2 ** 40})
        assert decode(encode(clock)) == clock
