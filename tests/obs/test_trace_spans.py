"""End-to-end span trees: a sloppy-quorum write traced through both backends.

The scenario is the paper's availability story in miniature: a primary
replica is down when the write arrives, so the coordinator's replica
deadline fires, a fallback is promoted into the quorum carrying a hint, and
once the primary returns the hint is replayed to it.  Every stage must be
visible in the write's span tree — coordinator fan-out, the timed-out
primary, the fallback promotion, the stored hint, and (critically) the
*eventual* hint replay, which happens long after the client request
completed but still links into the same trace.

Both backends are asserted with the same helper, so the span vocabulary
cannot drift between the simulator and asyncio.
"""

from __future__ import annotations

import asyncio
import contextlib
import os

from repro.clocks import create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster
from repro.kvstore.asyncio_cluster import AsyncioCluster, AsyncServerNode
from repro.obs import InMemoryTraceSink, Tracer, format_span_tree

SERVER_IDS = ("A", "B", "C", "D")
QUORUM = QuorumConfig(n=3, r=2, w=2, sloppy=True)


def pick_key(placement, down_position: int = 1):
    """A key whose preference list puts a *non-coordinator* primary at
    ``down_position`` — the node we will take down.  The coordinator
    (position 0) must stay up so the client's first candidate answers."""
    for index in range(200):
        key = f"cart-{index}"
        primaries = placement.primary_replicas(key)
        if len(primaries) >= 3:
            return key, primaries[down_position]
    raise AssertionError("no suitable key found")


def assert_sloppy_write_trace(sink, trace_id: str, down: str) -> None:
    """The span-tree shape every backend must produce for the scenario."""
    roots = sink.trees(trace_id)
    assert len(roots) == 1, format_span_tree(roots)
    root = roots[0]
    rendered = format_span_tree([root])

    assert root.name == "client.put", rendered
    assert root.status == "ok", rendered

    coordinators = root.find("coordinator.put")
    assert coordinators, rendered
    coordinator = coordinators[0]
    assert coordinator.status == "ok", rendered

    # fan-out: one replica.put per contacted node, as coordinator children
    replicas = coordinator.find("replica.put")
    assert len(replicas) >= 3, rendered
    by_target = {span.attrs["replica"]: span for span in replicas}
    assert by_target[down].status == "timeout", rendered

    # the deadline promoted a fallback into the quorum...
    (promotion,) = coordinator.find("fallback.promotion")
    assert promotion.attrs["primary"] == down, rendered
    fallback = promotion.attrs["fallback"]
    assert by_target[fallback].attrs.get("hint_for") == down, rendered

    # ...which stored a hint for the dead primary...
    stored = [span for span in sink.spans(trace_id).values()
              if span.name == "hint.stored" and span.attrs["target"] == down]
    assert stored, rendered

    # ...replayed to it after recovery, still inside the write's trace.
    replays = [span for span in sink.spans(trace_id).values()
               if span.name == "hint.replay"]
    assert any(span.attrs["target"] == down for span in replays), rendered
    # the replay happened after the client request already completed
    assert min(s.started_at for s in replays) >= root.ended_at, rendered


def test_sloppy_quorum_write_span_tree_simulated():
    sink = InMemoryTraceSink()
    cluster = SimulatedCluster(
        create("dvv"),
        server_ids=SERVER_IDS,
        quorum=QUORUM,
        seed=42,
        request_mode="async",
        anti_entropy_interval_ms=None,
        hint_replay_interval_ms=25.0,
        tracer=Tracer(sink),
    )
    key, down = pick_key(cluster.placement)
    client = cluster.client("c1")

    cluster.fail_node(down)
    client.put(key, "umbrella")
    cluster.run(until=150.0)
    assert key not in cluster.servers[down].node.storage.keys()

    cluster.recover_node(down)
    cluster.run(until=400.0)
    assert sum(server.node.pending_hints()
               for server in cluster.servers.values()) == 0

    (trace_id,) = [t for t in sink.trace_ids() if t.startswith("client:c1#")]
    assert_sloppy_write_trace(sink, trace_id, down)


def test_sloppy_quorum_write_span_tree_asyncio():
    sink = InMemoryTraceSink()

    async def scenario():
        cluster = AsyncioCluster(
            create("dvv"),
            server_ids=SERVER_IDS,
            quorum=QUORUM,
            anti_entropy_interval_ms=None,
            hint_replay_interval_ms=40.0,
            replica_timeout_ms=80.0,
            request_timeout_ms=1000.0,
            tracer=Tracer(sink),
        )
        async with cluster:
            key, down = pick_key(cluster.placement)
            client = await cluster.client("c1")

            # take the primary down (and clear its stale socket file so a
            # replacement can bind the same address later)
            await cluster.servers[down].close()
            socket_path = cluster.address_book[down][1]
            with contextlib.suppress(OSError):
                os.unlink(socket_path)

            result = await client.put(key, "umbrella")
            assert result is not None

            # the put resolves at quorum, *before* the dead primary's
            # deadline fires — wait for the handoff tail to store the hint
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 10.0
            while sum(s.node.pending_hints()
                      for s in cluster.servers.values()) == 0:
                assert loop.time() < deadline, "hint never stored"
                await asyncio.sleep(0.01)

            # bring the node back as a fresh listener on the same address
            server = AsyncServerNode(down, cluster.mechanism, cluster.env,
                                     cluster.address_book,
                                     merkle_maintenance=cluster.merkle_maintenance)
            await server.start()
            cluster.servers[down] = server

            deadline = loop.time() + 10.0
            while sum(s.node.pending_hints()
                      for s in cluster.servers.values()) > 0:
                assert loop.time() < deadline, "hints never drained"
                await asyncio.sleep(0.05)
            # one more beat so the replayed hint's span events land
            await asyncio.sleep(0.1)
            return down

    down = asyncio.run(scenario())
    (trace_id,) = [t for t in sink.trace_ids() if t.startswith("client:c1#")]
    assert_sloppy_write_trace(sink, trace_id, down)


def test_tracing_is_off_by_default():
    """An untraced cluster must not grow any tracer state or emit events."""
    cluster = SimulatedCluster(create("dvv"), server_ids=("A", "B", "C"))
    assert cluster.tracer.enabled is False
    client = cluster.client("c1")
    client.put("k", "v")
    cluster.run(until=50.0)
    assert client.records and client.records[0].ok
