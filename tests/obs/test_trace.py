"""Unit tests for the tracer, sinks, and the span-tree pretty-printer."""

from __future__ import annotations

import json

from repro.obs import (
    NO_TRACER,
    InMemoryTraceSink,
    JsonlTraceSink,
    Tracer,
    format_span_tree,
)


def build_sample_trace(sink):
    """A miniature PUT lifecycle: client root, coordinator, two replicas."""
    tracer = Tracer(sink)
    root = tracer.start("client.put", "client:c1", 0.0, trace="c1#1", key="cart")
    coord = tracer.start("coordinator.put", "A", 1.0, trace=root[0],
                         parent=root[1], key="cart")
    rep_b = tracer.start("replica.put", "A", 1.0, trace=coord[0],
                         parent=coord[1], replica="B")
    rep_c = tracer.start("replica.put", "A", 1.0, trace=coord[0],
                         parent=coord[1], replica="C")
    tracer.end(rep_c, 4.0, status="ok")
    tracer.end(rep_b, 10.0, status="timeout")
    tracer.point("fallback.promotion", "A", 10.0, trace=coord[0],
                 parent=coord[1], primary="B", fallback="D")
    tracer.end(coord, 11.0, status="ok", acks=2)
    tracer.end(root, 12.0, status="ok")
    return tracer


class TestTracer:
    def test_span_ids_are_deterministic(self):
        sink = InMemoryTraceSink()
        tracer = Tracer(sink)
        first = tracer.start("a", "n", 0.0, trace="t")
        second = tracer.start("b", "n", 0.0, trace="t")
        assert first == ("t", "s1")
        assert second == ("t", "s2")

    def test_null_tracer_is_disabled_and_inert(self):
        assert NO_TRACER.enabled is False
        assert NO_TRACER.start("a", "n", 0.0, trace="t") is None
        assert NO_TRACER.point("a", "n", 0.0, trace="t") is None
        assert NO_TRACER.end(("t", "s1"), 1.0) is None


class TestInMemoryTraceSink:
    def test_tree_reconstruction(self):
        sink = InMemoryTraceSink()
        build_sample_trace(sink)
        assert sink.trace_ids() == ["c1#1"]
        roots = sink.trees("c1#1")
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "client.put"
        assert root.status == "ok"
        assert root.duration == 12.0
        (coord,) = root.children
        assert coord.name == "coordinator.put"
        assert coord.attrs["acks"] == 2  # end() attrs merged into the span
        names = [child.name for child in coord.children]
        assert names == ["replica.put", "replica.put", "fallback.promotion"]

    def test_find_by_name_and_status(self):
        sink = InMemoryTraceSink()
        build_sample_trace(sink)
        replicas = sink.find("replica.put")
        assert {span.status for span in replicas} == {"ok", "timeout"}
        timed_out = [span for span in replicas if span.status == "timeout"]
        assert timed_out[0].attrs["replica"] == "B"
        (promotion,) = sink.find("fallback.promotion")
        assert promotion.status == "point"
        assert promotion.duration == 0.0
        assert promotion.attrs == {"primary": "B", "fallback": "D"}

    def test_span_find_walks_the_subtree(self):
        sink = InMemoryTraceSink()
        build_sample_trace(sink)
        (root,) = sink.trees("c1#1")
        assert len(root.find("replica.put")) == 2
        assert root.find("client.put") == [root]


class TestJsonlTraceSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        memory = InMemoryTraceSink()
        build_sample_trace(memory)
        with JsonlTraceSink(path) as sink:
            for event in memory.events:
                sink.emit(event)
            assert sink.events_written == len(memory.events)
        lines = [json.loads(line)
                 for line in open(path).read().splitlines() if line]
        assert lines == memory.events
        # a fresh in-memory sink replayed from disk rebuilds the same tree
        replayed = InMemoryTraceSink()
        for event in lines:
            replayed.emit(event)
        assert format_span_tree(replayed.trees("c1#1")) == \
            format_span_tree(memory.trees("c1#1"))


class TestFormatSpanTree:
    def test_renders_every_span_with_timing_and_status(self):
        sink = InMemoryTraceSink()
        build_sample_trace(sink)
        text = format_span_tree(sink.trees("c1#1"))
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("client.put key=cart [client:c1]")
        assert "coordinator.put" in lines[1]
        assert any("timeout" in line for line in lines)
        assert any("@10.000ms" in line for line in lines)  # the point span
        # tree drawing characters connect children to parents
        assert any(line.lstrip().startswith(("├─", "└─")) for line in lines[1:])
