"""The unified snapshot contract: one schema, both backends, goldens intact.

Three properties pin the metrics layer down:

* **Schema parity** — ``metrics_snapshot()`` returns the *same key set* from
  the simulator and the asyncio backend, so dashboards and ``--stats-json``
  consumers never branch on backend.
* **Shutdown flush** — the asyncio cluster's snapshot stays readable (and
  complete) after ``stop()``, because it is captured once the daemons have
  drained but before the transports close.
* **Zero perturbation** — re-running the golden-fixture scenario with a live
  tracer attached reproduces every golden number bit-for-bit: observability
  reads the run, it never participates in it.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import sys

import pytest

from repro.clocks import create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster
from repro.kvstore.asyncio_cluster import AsyncioCluster
from repro.obs import InMemoryTraceSink, Tracer

# The golden scenario lives with the protocol tests; reuse it verbatim so
# "tracing changes nothing" is asserted against the exact pinned run.
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "protocol"))
from test_golden_equivalence import (  # noqa: E402
    GOLDEN,
    POST_GOLDEN_ZERO_STATS,
    run_golden_scenario,
    snapshot,
)

SERVER_IDS = ("A", "B", "C")


def run_simulated_workload():
    cluster = SimulatedCluster(
        create("dvv"), server_ids=SERVER_IDS,
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=True),
        request_mode="async", seed=11,
    )
    client = cluster.client("c1")
    for index in range(6):
        client.put(f"k{index % 2}", f"v{index}")
    client.get("k0")
    cluster.run(until=300.0)
    return cluster


async def run_asyncio_workload():
    cluster = AsyncioCluster(
        create("dvv"), server_ids=SERVER_IDS,
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=True),
    )
    async with cluster:
        client = await cluster.client("c1")
        for index in range(6):
            await client.put(f"k{index % 2}", f"v{index}")
        await client.get("k0")
        live = cluster.metrics_snapshot()
    return cluster, live


class TestSnapshotSchema:
    def test_identical_key_set_across_backends(self):
        sim = run_simulated_workload().metrics_snapshot()
        cluster, _ = asyncio.run(run_asyncio_workload())
        assert sorted(sim) == sorted(cluster.metrics_snapshot())

    def test_snapshot_is_json_serializable_and_sorted(self):
        snap = run_simulated_workload().metrics_snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert list(snap) == sorted(snap)

    def test_every_preexisting_stat_family_is_present(self):
        snap = run_simulated_workload().metrics_snapshot()
        for name in ("storage.hints_stored", "merkle.exchanges_started",
                     "transport.sent", "transport.bytes_delivered",
                     "transport.sync_bytes", "read_repair.reads_checked",
                     "requests.completed", "requests.latency_ms.p95",
                     "node.A.pending_hints"):
            assert name in snap, name

    def test_snapshot_reads_do_not_mutate(self):
        cluster = run_simulated_workload()
        assert cluster.metrics_snapshot() == cluster.metrics_snapshot()


class TestAsyncioShutdownFlush:
    def test_post_stop_snapshot_keeps_final_stats(self):
        cluster, live = asyncio.run(run_asyncio_workload())
        final = cluster.metrics_snapshot()
        # the flush happened: post-stop reads still see the whole run, with
        # at least everything the last live snapshot had already counted
        assert final["requests.completed"] == 7
        assert final["transport.delivered"] >= live["transport.delivered"]
        assert sorted(final) == sorted(live)


@pytest.mark.parametrize("scenario_key",
                         [key for key in sorted(GOLDEN)
                          if key.startswith("dvv:")])
def test_tracing_leaves_golden_scenarios_bit_for_bit_identical(scenario_key):
    mechanism_name, request_mode = scenario_key.split(":")
    sink = InMemoryTraceSink()
    cluster = run_golden_scenario(mechanism_name, request_mode,
                                  tracer=Tracer(sink))
    actual = snapshot(cluster)
    actual_totals = actual["stat_totals"]
    for stat in POST_GOLDEN_ZERO_STATS:
        assert actual_totals.pop(stat, 0) == 0
    expected = GOLDEN[scenario_key]
    for field in expected:
        assert actual[field] == expected[field], (
            f"{scenario_key}: {field} drifted once tracing was enabled")
    # and the tracer really was live — the run produced a full span record
    assert sink.events
    assert sink.find("coordinator.put")
