"""The CLI side of observability: ``--stats-json`` and ``--trace``."""

from __future__ import annotations

import json

from repro.cli import build_parser, main


def read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line]


class TestParserAcceptsObservabilityFlags:
    def test_cluster_flags(self):
        args = build_parser().parse_args(
            ["cluster", "--stats-json", "s.json", "--trace", "t.jsonl"])
        assert args.stats_json == "s.json"
        assert args.trace == "t.jsonl"

    def test_churn_flags(self):
        args = build_parser().parse_args(
            ["churn", "--stats-json", "s.json", "--trace", "t.jsonl"])
        assert args.stats_json == "s.json"
        assert args.trace == "t.jsonl"

    def test_connect_trace_flag(self):
        args = build_parser().parse_args(
            ["connect", "--socket-dir", "/tmp/x", "--trace", "t.jsonl",
             "get", "cart"])
        assert args.trace == "t.jsonl"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["cluster"])
        assert args.stats_json is None
        assert args.trace is None


class TestClusterStatsAndTrace:
    def test_cluster_writes_stats_and_trace(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        trace_path = tmp_path / "trace.jsonl"
        assert main(["cluster", "--mechanism", "dvv", "--clients", "3",
                     "--duration-ms", "150", "--seed", "5",
                     "--stats-json", str(stats_path),
                     "--trace", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert str(stats_path) in output
        assert str(trace_path) in output

        stats = json.loads(stats_path.read_text())
        assert stats["requests.completed"] > 0
        assert "transport.bytes_delivered" in stats
        assert list(stats) == sorted(stats)

        events = read_jsonl(trace_path)
        assert events
        assert {event["event"] for event in events} <= {"start", "end", "point"}
        assert any(event.get("name") == "client.put" for event in events)
        assert any(event.get("name") == "coordinator.put" for event in events)

    def test_cluster_runs_clean_without_flags(self, capsys):
        assert main(["cluster", "--mechanism", "dvv", "--clients", "2",
                     "--duration-ms", "100", "--seed", "5"]) == 0
        assert "requests completed" in capsys.readouterr().out


class TestChurnStatsAndTrace:
    def test_churn_writes_stats_and_trace(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        trace_path = tmp_path / "trace.jsonl"
        assert main(["churn", "--scenario", "elasticity", "--mechanism", "dvv",
                     "--stats-json", str(stats_path),
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        stats = json.loads(stats_path.read_text())
        assert stats["requests.completed"] > 0
        assert read_jsonl(trace_path)
