"""Tests for the bench-trajectory dashboard renderer (``tools/``)."""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import render_dashboard  # noqa: E402

SAMPLE = {
    "benchmark": "sample",
    "mechanisms": {
        "dvv": {"encode_ns": 1200.5, "encoded_bytes": 96},
        "dvvset": {"encode_ns": 900.0, "encoded_bytes": 80},
    },
}


class TestFlatten:
    def test_numeric_leaves_under_dotted_names(self):
        flat = render_dashboard.flatten(SAMPLE)
        assert flat["mechanisms.dvv.encode_ns"] == 1200.5
        assert flat["mechanisms.dvvset.encoded_bytes"] == 80.0
        # non-numeric leaves (the benchmark name) are dropped
        assert "benchmark" not in flat

    def test_bools_count_as_binary(self):
        assert render_dashboard.flatten({"ok": True}) == {"ok": 1.0}


class TestSvgPieces:
    def test_bar_chart_renders_every_metric(self):
        svg = render_dashboard.bar_chart({"a.x": 10.0, "a.y": 3.0})
        assert svg.startswith("<svg")
        assert svg.count("<rect") == 2
        assert "a.x" in svg and "10" in svg

    def test_sparkline_needs_history(self):
        assert render_dashboard.sparkline([1.0]) == ""
        svg = render_dashboard.sparkline([1.0, 5.0, 3.0])
        assert "<polyline" in svg and "<circle" in svg


class TestRenderDashboard:
    def test_renders_all_bench_files_in_a_directory(self, tmp_path):
        (tmp_path / "BENCH_alpha.json").write_text(json.dumps(SAMPLE))
        (tmp_path / "BENCH_beta.json").write_text(json.dumps({"n": {"v": 2}}))
        (tmp_path / "not_a_bench.json").write_text("{}")
        page = render_dashboard.render_dashboard(str(tmp_path))
        assert "<!DOCTYPE html>" in page
        assert "BENCH_alpha.json" in page and "BENCH_beta.json" in page
        assert "not_a_bench" not in page
        assert "<svg" in page
        # outside a git repo: no trajectory section, but rendering succeeds
        assert "trajectory" not in page

    def test_unreadable_file_degrades_gracefully(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        page = render_dashboard.render_dashboard(str(tmp_path))
        assert "unreadable" in page

    def test_empty_directory_explains_itself(self, tmp_path):
        page = render_dashboard.render_dashboard(str(tmp_path))
        assert "No BENCH_*.json files found" in page

    def test_main_writes_the_page(self, tmp_path, capsys):
        (tmp_path / "BENCH_alpha.json").write_text(json.dumps(SAMPLE))
        out = tmp_path / "dash.html"
        assert render_dashboard.main(["--root", str(tmp_path),
                                      "--out", str(out)]) == 0
        assert "<svg" in out.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_renders_from_the_checked_in_bench_files(self, tmp_path):
        """The repo's own BENCH files must always produce a dashboard."""
        assert render_dashboard.collect_bench_files(str(REPO_ROOT))
        page = render_dashboard.render_dashboard(str(REPO_ROOT))
        assert "BENCH_clock_operations.json" in page
        assert "<svg" in page
