"""Unit tests for the metrics registry and its instruments."""

from __future__ import annotations

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("ops")
        assert counter.snapshot() == 0
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5

    def test_rejects_decrements(self):
        counter = Counter("ops")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_settable_gauge(self):
        gauge = Gauge("queue_depth")
        assert gauge.snapshot() == 0
        gauge.set(17)
        assert gauge.snapshot() == 17

    def test_callback_gauge_reads_live(self):
        state = {"value": 1}
        gauge = Gauge("live", fn=lambda: state["value"])
        assert gauge.snapshot() == 1
        state["value"] = 9
        assert gauge.snapshot() == 9

    def test_callback_gauge_cannot_be_set(self):
        gauge = Gauge("live", fn=lambda: 0)
        with pytest.raises(ValueError):
            gauge.set(3)


class TestHistogram:
    def test_empty_snapshot_is_all_zeros(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["sum"] == 0
        assert snap["p50"] == 0.0 and snap["p99"] == 0.0

    def test_aggregates_and_percentiles(self):
        histogram = Histogram("lat")
        histogram.observe_many(float(v) for v in range(1, 101))
        snap = histogram.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == 5050.0
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["mean"] == 50.5
        assert snap["p50"] == 51.0  # nearest-rank over 0-indexed samples
        assert snap["p95"] == 95.0

    def test_sample_cap_keeps_aggregates_exact(self):
        histogram = Histogram("lat", sample_limit=10)
        histogram.observe_many(float(v) for v in range(1000))
        snap = histogram.snapshot()
        # aggregates over everything, percentiles over the retained prefix
        assert snap["count"] == 1000
        assert snap["max"] == 999.0
        assert snap["p99"] <= 9.0


class TestMetricsRegistry:
    def test_instruments_are_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_flattens_and_sorts(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc(3)
        registry.histogram("lat").observe(5.0)
        registry.register_source("src", lambda: {"a": 1, "nested": {"b": 2}})
        snap = registry.snapshot()
        assert snap["zz"] == 3
        assert snap["lat.count"] == 1
        assert snap["src.a"] == 1
        assert snap["src.nested.b"] == 2
        assert list(snap) == sorted(snap)

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.register_source("s", lambda: {"x": 1.5})
        assert json.loads(json.dumps(registry.snapshot())) == registry.snapshot()

    def test_source_reregistration_replaces(self):
        registry = MetricsRegistry()
        registry.register_source("s", lambda: {"v": 1})
        registry.register_source("s", lambda: {"v": 2})
        assert registry.snapshot() == {"s.v": 2}

    def test_sources_read_live_state(self):
        state = {"v": 1}
        registry = MetricsRegistry()
        registry.register_source("s", lambda: dict(state))
        assert registry.snapshot()["s.v"] == 1
        state["v"] = 7
        assert registry.snapshot()["s.v"] == 7
