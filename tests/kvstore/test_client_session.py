"""Unit tests for client sessions and causal contexts."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, Sibling
from repro.core import CausalHistory, Dot, VersionVector
from repro.kvstore import ClientSession, GetResult, SyncReplicatedStore
from repro.kvstore.context import CausalContext


class TestCausalContext:
    def test_initial(self):
        context = CausalContext.initial("k", "dvv", VersionVector.empty())
        assert context.key == "k"
        assert context.mechanism_name == "dvv"
        assert len(context.observed_history) == 0

    def test_with_mechanism_context_and_merged_history(self):
        context = CausalContext.initial("k", "dvv", VersionVector.empty())
        updated = context.with_mechanism_context(VersionVector({"A": 1}))
        assert updated.mechanism_context == VersionVector({"A": 1})
        extended = updated.merged_history(CausalHistory(Dot("c1", 1)))
        assert Dot("c1", 1) in extended.observed_history


class TestClientSession:
    def test_write_sequence_is_monotonic(self):
        session = ClientSession("c1")
        first = session.prepare_write("k", "v1")
        second = session.prepare_write("k", "v2")
        assert first.origin_dot == Dot("c1", 1)
        assert second.origin_dot == Dot("c1", 2)

    def test_write_history_follows_supplied_context(self):
        session = ClientSession("c1")
        base = session.prepare_write("k", "v1")
        context = CausalContext(
            key="k",
            mechanism_context=VersionVector({"A": 1}),
            observed_history=base.history,
            mechanism_name="dvv",
        )
        follow_up = session.prepare_write("k", "v2", context)
        assert base.origin_dot in follow_up.history
        # a context-less write is causally independent
        blind = session.prepare_write("k", "v3")
        assert base.origin_dot not in blind.history

    def test_absorb_read_tracks_context_and_observations(self):
        session = ClientSession("c1")
        sibling = Sibling("v1", Dot("w", 1), CausalHistory(Dot("w", 1)), writer="w")

        class FakeRead:
            siblings = [sibling]
            context = VersionVector({"A": 1})

        context = session.absorb_read("k", FakeRead(), "dvv")
        assert context.mechanism_context == VersionVector({"A": 1})
        assert Dot("w", 1) in context.observed_history
        assert session.last_context("k") is context
        assert Dot("w", 1) in session.observed_history("k")

    def test_forget_clears_context(self):
        session = ClientSession("c1")
        sibling = Sibling("v1", Dot("w", 1), CausalHistory(Dot("w", 1)), writer="w")

        class FakeRead:
            siblings = [sibling]
            context = VersionVector({"A": 1})

        session.absorb_read("k", FakeRead(), "dvv")
        session.forget("k")
        assert session.last_context("k") is None
        assert len(session.observed_history("k")) == 0
        session.absorb_read("k", FakeRead(), "dvv")
        session.forget_all()
        assert session.last_context("k") is None


class TestGetResult:
    def test_single_value_access(self):
        context = CausalContext.initial("k", "dvv", VersionVector.empty())
        single = GetResult("k", ["v"], [], context)
        assert single.value == "v"
        assert not single.is_conflict

    def test_empty_and_conflicting_values(self):
        context = CausalContext.initial("k", "dvv", VersionVector.empty())
        empty = GetResult("k", [], [], context)
        assert empty.value is None
        conflict = GetResult("k", ["a", "b"], [], context)
        assert conflict.is_conflict
        with pytest.raises(ValueError):
            _ = conflict.value


class TestSessionAgainstStore:
    def test_get_put_round_trip(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A", "B"))
        client = ClientSession("alice")
        result = client.get(store, "cart")
        assert result.values == []
        client.put(store, "cart", ["apple"])
        again = client.get(store, "cart")
        assert again.value == ["apple"]
        assert client.stats == {"gets": 2, "puts": 1}

    def test_put_without_context_is_blind(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A",))
        alice, bob = ClientSession("alice"), ClientSession("bob")
        alice.get(store, "k")
        alice.put(store, "k", "from-alice")
        bob.get(store, "k")
        bob.put(store, "k", "from-bob", use_context=False)
        values = sorted(store.values("k", "A"))
        assert values == ["from-alice", "from-bob"]
