"""Unit tests for Merkle-tree assisted anti-entropy."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism
from repro.core import ConfigurationError
from repro.kvstore import ClientSession, SyncReplicatedStore
from repro.kvstore.merkle import (
    DiffStats,
    MerkleAntiEntropy,
    MerkleTree,
    diff_keys,
    key_fingerprint,
)


def populated_store(keys=10, servers=("A", "B", "C")):
    store = SyncReplicatedStore(DVVMechanism(), server_ids=servers)
    client = ClientSession("writer")
    for index in range(keys):
        key = f"key-{index}"
        client.get(store, key, server_id=servers[0])
        client.put(store, key, f"value-{index}", server_id=servers[0])
    return store


class TestMerkleTree:
    def test_identical_states_identical_roots(self):
        store = populated_store()
        store.converge()
        tree_a = MerkleTree.for_node(store.node("A"))
        tree_b = MerkleTree.for_node(store.node("B"))
        assert tree_a.root_digest == tree_b.root_digest
        assert tree_a == tree_b

    def test_divergent_states_differ(self):
        store = populated_store()
        store.converge()
        client = ClientSession("late-writer")
        client.get(store, "key-3", server_id="A")
        client.put(store, "key-3", "changed", server_id="A")
        tree_a = MerkleTree.for_node(store.node("A"))
        tree_b = MerkleTree.for_node(store.node("B"))
        assert tree_a.root_digest != tree_b.root_digest

    def test_fingerprint_tracks_sibling_identity_not_mechanism(self):
        store = populated_store(keys=1)
        assert key_fingerprint(store.node("A"), "key-0") != key_fingerprint(store.node("B"), "key-0")
        store.converge()
        assert key_fingerprint(store.node("A"), "key-0") == key_fingerprint(store.node("B"), "key-0")

    def test_keys_and_fingerprint_queries(self):
        store = populated_store(keys=3)
        tree = MerkleTree.for_node(store.node("A"))
        assert tree.keys() == ["key-0", "key-1", "key-2"]
        assert tree.fingerprint("key-0") is not None
        assert tree.fingerprint("missing") is None

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            MerkleTree({}, fanout=1)
        with pytest.raises(ConfigurationError):
            MerkleTree({}, depth=0)

    def test_path_queries_for_wire_protocol(self):
        store = populated_store(keys=8)
        tree = MerkleTree.for_node(store.node("A"), fanout=4, depth=2)
        assert tree.digest_at(()) == tree.root_digest
        level1 = tree.child_digests(())
        assert [path for path, _ in level1] == [(0,), (1,), (2,), (3,)]
        # leaf buckets partition the key space
        all_keys = []
        for path, _digest in level1:
            for leaf_path, _leaf_digest in tree.child_digests(path):
                all_keys.extend(tree.bucket_fingerprints(leaf_path))
        assert sorted(all_keys) == tree.keys()
        with pytest.raises(ConfigurationError):
            tree.node_at((9,))
        with pytest.raises(ConfigurationError):
            tree.bucket_fingerprints(())  # root is not a leaf


class TestDiffKeys:
    def test_diff_finds_exactly_the_divergent_keys(self):
        store = populated_store(keys=20)
        store.converge()
        client = ClientSession("late-writer")
        for key in ("key-2", "key-15"):
            client.get(store, key, server_id="A")
            client.put(store, key, "changed-" + key, server_id="A")
        universe = store.node("A").storage.keys()
        tree_a = MerkleTree.for_node(store.node("A"), universe)
        tree_b = MerkleTree.for_node(store.node("B"), universe)
        assert sorted(diff_keys(tree_a, tree_b)) == ["key-15", "key-2"]

    def test_diff_skips_agreeing_buckets(self):
        store = populated_store(keys=50)
        store.converge()
        client = ClientSession("late-writer")
        client.get(store, "key-7", server_id="A")
        client.put(store, "key-7", "changed", server_id="A")
        universe = store.node("A").storage.keys()
        tree_a = MerkleTree.for_node(store.node("A"), universe)
        tree_b = MerkleTree.for_node(store.node("B"), universe)
        stats = DiffStats()
        divergent = diff_keys(tree_a, tree_b, stats)
        assert divergent == ["key-7"]
        # far fewer per-key comparisons than the 50-key universe
        assert stats.keys_compared < 20
        assert stats.keys_divergent == 1

    def test_identical_trees_compare_only_the_root(self):
        store = populated_store(keys=10)
        store.converge()
        tree_a = MerkleTree.for_node(store.node("A"))
        tree_b = MerkleTree.for_node(store.node("B"))
        stats = DiffStats()
        assert diff_keys(tree_a, tree_b, stats) == []
        assert stats.nodes_compared == 1
        assert stats.keys_compared == 0

    def test_mismatched_shapes_rejected(self):
        tree_a = MerkleTree({}, fanout=4, depth=2)
        tree_b = MerkleTree({}, fanout=8, depth=2)
        with pytest.raises(ConfigurationError):
            diff_keys(tree_a, tree_b)

    def test_single_key_divergence_is_localised(self):
        """One divergent key among many: the diff descends into exactly one
        bucket and compares only that bucket's keys."""
        store = populated_store(keys=64)
        store.converge()
        client = ClientSession("late-writer")
        client.get(store, "key-11", server_id="A")
        client.put(store, "key-11", "changed", server_id="A")
        universe = store.node("A").storage.keys()
        tree_a = MerkleTree.for_node(store.node("A"), universe)
        tree_b = MerkleTree.for_node(store.node("B"), universe)
        stats = DiffStats()
        assert diff_keys(tree_a, tree_b, stats) == ["key-11"]
        assert stats.buckets_descended == 1
        assert stats.keys_divergent == 1
        # only the divergent bucket's keys were fingerprint-compared
        bucket_keys = stats.keys_compared
        assert bucket_keys < 64 / 4
        # root + its 16 children + the 16 leaves of the single differing
        # branch — the other 15 branches are never descended into
        assert stats.nodes_compared == 1 + 16 + 16

    def test_tree_updates_after_key_deletion(self):
        """Deleting a key changes the tree and the diff localises exactly it."""
        store = populated_store(keys=12)
        store.converge()
        node_a = store.node("A")
        before = MerkleTree.for_node(node_a)
        node_a.storage.delete("key-5")
        after = MerkleTree.for_node(node_a)
        assert before.root_digest != after.root_digest
        assert after.fingerprint("key-5") is None
        assert "key-5" not in after.keys()
        assert diff_keys(before, after) == ["key-5"]
        # against a replica that still has the key, the deletion shows up as
        # exactly that key diverging
        tree_b = MerkleTree.for_node(store.node("B"))
        assert diff_keys(after, tree_b) == ["key-5"]


class TestMerkleAntiEntropy:
    def test_converges_the_store(self):
        store = populated_store(keys=15)
        anti_entropy = MerkleAntiEntropy(store)
        rounds = anti_entropy.run_until_converged()
        assert store.is_converged()
        assert rounds >= 1
        assert anti_entropy.keys_synced > 0

    def test_skips_already_synchronised_keys(self):
        store = populated_store(keys=30)
        store.converge()
        client = ClientSession("late-writer")
        client.get(store, "key-9", server_id="A")
        client.put(store, "key-9", "changed", server_id="A")
        anti_entropy = MerkleAntiEntropy(store)
        anti_entropy.run_until_converged()
        assert anti_entropy.efficiency() > 0.5
        assert anti_entropy.keys_synced < 30

    def test_requires_two_servers(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A",))
        with pytest.raises(ConfigurationError):
            MerkleAntiEntropy(store).run_round()

    def test_efficiency_of_empty_run(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A", "B"))
        anti_entropy = MerkleAntiEntropy(store)
        assert anti_entropy.efficiency() == 0.0
