"""Unit tests for read repair planning and anti-entropy scheduling."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, Sibling
from repro.core import CausalHistory, ConfigurationError, Dot
from repro.kvstore import (
    AntiEntropyDaemon,
    AntiEntropyScheduler,
    ClientSession,
    ReadRepairStats,
    SyncReplicatedStore,
    plan_read_repair,
)
from repro.network import Simulation


def sibling(value, writer="c1", seq=1):
    dot = Dot(writer, seq)
    return Sibling(value=value, origin_dot=dot, history=CausalHistory(dot), writer=writer)


class TestReadRepairPlanning:
    def setup_method(self):
        self.mechanism = DVVMechanism()
        self.fresh = self.mechanism.write(
            self.mechanism.empty_state(), self.mechanism.empty_context(),
            sibling("v1"), "A", "c1")

    def test_agreeing_replicas_need_no_repair(self):
        plan = plan_read_repair(self.mechanism, [("A", self.fresh), ("B", self.fresh)])
        assert plan.agreed
        assert plan.stale_replicas == []

    def test_stale_replica_detected(self):
        stale = self.mechanism.empty_state()
        plan = plan_read_repair(self.mechanism, [("A", self.fresh), ("B", stale)])
        assert not plan.agreed
        assert plan.stale_replicas == ["B"]
        assert [s.value for s in self.mechanism.siblings(plan.merged_state)] == ["v1"]

    def test_divergent_replicas_both_repaired(self):
        other = self.mechanism.write(
            self.mechanism.empty_state(), self.mechanism.empty_context(),
            sibling("v2", writer="c2"), "B", "c2")
        plan = plan_read_repair(self.mechanism, [("A", self.fresh), ("B", other)])
        assert set(plan.stale_replicas) == {"A", "B"}
        merged_values = sorted(s.value for s in self.mechanism.siblings(plan.merged_state))
        assert merged_values == ["v1", "v2"]

    def test_requires_at_least_one_reply(self):
        with pytest.raises(ValueError):
            plan_read_repair(self.mechanism, [])

    def test_merge_order_does_not_trigger_repair(self):
        """Replicas holding the same versions merged in different orders agree.

        The fingerprint comparison canonicalizes the sibling set, so a replica
        whose internal sibling list is ordered differently from the merged
        state's is not re-sent an identical repair on every read.
        """
        left = self.mechanism.write(
            self.mechanism.empty_state(), self.mechanism.empty_context(),
            sibling("v-left", writer="cL"), "A", "cL")
        right = self.mechanism.write(
            self.mechanism.empty_state(), self.mechanism.empty_context(),
            sibling("v-right", writer="cR"), "B", "cR")
        merged_ab = self.mechanism.merge(left, right)
        merged_ba = self.mechanism.merge(right, left)
        plan = plan_read_repair(self.mechanism, [("A", merged_ab), ("B", merged_ba)])
        assert plan.agreed
        assert plan.stale_replicas == []

    def test_reordered_sibling_lists_compare_equal(self):
        """An order-perturbing mechanism view still yields an agreeing plan."""

        class ReorderingView(DVVMechanism):
            """Returns the sibling list in alternating order per call."""

            def __init__(self):
                super().__init__()
                self._flip = False

            def siblings(self, state):
                result = list(super().siblings(state))
                self._flip = not self._flip
                return list(reversed(result)) if self._flip else result

        mechanism = ReorderingView()
        state = mechanism.merge(
            mechanism.write(mechanism.empty_state(), mechanism.empty_context(),
                            sibling("x", writer="c1"), "A", "c1"),
            mechanism.write(mechanism.empty_state(), mechanism.empty_context(),
                            sibling("y", writer="c2"), "B", "c2"),
        )
        plan = plan_read_repair(mechanism, [("A", state), ("B", state)])
        assert plan.agreed
        assert plan.stale_replicas == []

    def test_stats_accumulation(self):
        stats = ReadRepairStats()
        stats.record(plan_read_repair(self.mechanism, [("A", self.fresh), ("B", self.fresh)]))
        stats.record(plan_read_repair(self.mechanism,
                                      [("A", self.fresh), ("B", self.mechanism.empty_state())]))
        assert stats.reads_checked == 2
        assert stats.repairs_triggered == 1
        assert stats.replicas_repaired == 1
        assert stats.repair_rate == 0.5
        assert stats.as_dict()["repair_rate"] == 0.5


class TestAntiEntropyScheduler:
    def populate(self, store):
        for index, server in enumerate(sorted(store.servers)):
            client = ClientSession(f"client-{index}")
            client.get(store, "k", server_id=server)
            client.put(store, "k", f"v-{server}", server_id=server)

    def test_round_robin_pairs_converge_store(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A", "B", "C"))
        self.populate(store)
        scheduler = AntiEntropyScheduler(store)
        rounds = scheduler.run_until_converged()
        assert store.is_converged()
        assert rounds == scheduler.rounds_run
        assert sorted(store.values("k", "A")) == ["v-A", "v-B", "v-C"]

    def test_single_round_syncs_one_pair(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A", "B", "C"))
        self.populate(store)
        scheduler = AntiEntropyScheduler(store)
        pair = scheduler.run_round("k")
        assert len(set(pair)) == 2
        assert not store.is_converged("k")  # three-way divergence needs more rounds

    def test_requires_two_servers(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A",))
        scheduler = AntiEntropyScheduler(store)
        with pytest.raises(ConfigurationError):
            scheduler.run_round()


class TestAntiEntropyDaemon:
    def test_daemon_triggers_pairwise_exchanges(self):
        simulation = Simulation()
        calls = []
        daemon = AntiEntropyDaemon(simulation, lambda a, b: calls.append((a, b)),
                                   ["A", "B", "C"], interval_ms=10.0)
        simulation.run(until=45.0)
        assert daemon.exchanges_started == 4
        assert len(calls) == 4
        assert all(a != b for a, b in calls)
        daemon.stop()
        simulation.run_until_idle()
        assert daemon.exchanges_started == 4

    def test_requires_two_nodes(self):
        with pytest.raises(ConfigurationError):
            AntiEntropyDaemon(Simulation(), lambda a, b: None, ["only"], interval_ms=5.0)
