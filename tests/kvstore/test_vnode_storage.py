"""Unit tests for the vnode-scoped storage layout and per-range Merkle trees.

Covers the :class:`~repro.cluster.ring.PartitionMap` range arithmetic, the
:class:`~repro.kvstore.storage.NodeStorage` vnode manager (routing, per-vnode
wipe, hint coalescing), the :class:`~repro.kvstore.merkle_index.VnodeIndexSet`
facade, fingerprint import on handoff ingestion, and the rebalance-plan /
flush-counter bugfixes that rode along with the refactor.
"""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism
from repro.cluster import PartitionMap
from repro.cluster.ring import RING_BITS, rebalance_plan
from repro.core import ConfigurationError
from repro.kvstore import ClientSession, MerkleTree, NodeStorage, VnodeManager
from repro.kvstore.merkle import state_fingerprint
from repro.kvstore.merkle_index import MerkleIndex, VnodeIndexSet
from repro.kvstore.server import StorageNode


def write(node, client, key, value):
    read = node.local_read(key)
    context = client.absorb_read(key, read, node.mechanism.name)
    sibling = client.prepare_write(key, value, context)
    node.local_write(key, context, sibling, client.client_id)


def vnode_node(node_id="A", partitions=8):
    partition_map = PartitionMap(partitions)
    node = StorageNode(node_id, DVVMechanism(), partition_map=partition_map)
    index = VnodeIndexSet(node.mechanism, partition_map=partition_map,
                          counters=node.stats)
    node.attach_merkle_index(index)
    return node, index


class TestPartitionMap:
    def test_rejects_non_positive_count(self):
        with pytest.raises(ConfigurationError):
            PartitionMap(0)

    def test_partitions_tile_the_ring(self):
        partition_map = PartitionMap(7)
        previous_end = 0
        for partition_id in partition_map.partition_ids():
            start, end = partition_map.partition_range(partition_id)
            assert start == previous_end
            assert start < end
            previous_end = end
        assert previous_end == 1 << RING_BITS

    def test_partition_of_agrees_with_range_containment(self):
        partition_map = PartitionMap(16)
        from repro.cluster import ConsistentHashRing
        ring = ConsistentHashRing(["A"])
        for index in range(50):
            key = f"key-{index}"
            partition_id = partition_map.partition_of(key)
            start, end = partition_map.partition_range(partition_id)
            assert start <= ring.key_position(key) < end

    def test_unknown_partition_range_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionMap(4).partition_range(4)

    def test_len_and_ids(self):
        partition_map = PartitionMap(5)
        assert len(partition_map) == 5
        assert list(partition_map.partition_ids()) == [0, 1, 2, 3, 4]


class TestVnodeRouting:
    def test_keys_land_in_their_partitions_vnode(self):
        partition_map = PartitionMap(8)
        storage = NodeStorage(DVVMechanism(), partition_map=partition_map)
        node = StorageNode("A", DVVMechanism(), partition_map=partition_map)
        client = ClientSession("writer")
        keys = [f"key-{i}" for i in range(20)]
        for key in keys:
            write(node, client, key, f"{key}-v")
        for key in keys:
            partition_id = partition_map.partition_of(key)
            assert key in node.storage.vnode_keys(partition_id)
        # the flat API is preserved on top of the vnode layout
        assert node.storage.keys() == sorted(keys)
        assert len(node.storage) == len(keys)
        assert sum(node.storage.vnode_len(pid)
                   for pid in node.storage.vnode_ids()) == len(keys)
        assert storage.partition_count == 8

    def test_without_a_map_everything_is_one_vnode(self):
        storage = NodeStorage(DVVMechanism())
        assert storage.partition_count == 1
        assert storage.partition_of("anything") == 0
        assert list(storage.vnode_ids()) == [0]

    def test_vnode_manager_is_the_storage_type(self):
        assert VnodeManager is NodeStorage

    def test_wipe_vnode_drops_only_that_range(self):
        node, index = vnode_node()
        client = ClientSession("writer")
        keys = [f"key-{i}" for i in range(24)]
        for key in keys:
            write(node, client, key, f"{key}-v")
        occupied = [pid for pid in node.storage.vnode_ids()
                    if node.storage.vnode_len(pid) > 0]
        victim = occupied[0]
        lost = set(node.storage.vnode_keys(victim))
        survivors = set(keys) - lost
        dropped = node.storage.wipe_vnode(victim)
        assert dropped == len(lost)
        assert set(node.storage.keys()) == survivors
        # the listener stream kept the per-range trees consistent
        assert index.index_for(victim).keys() == []
        assert index.root_digest == MerkleTree.for_node(
            node, fanout=index.fanout, depth=index.depth).root_digest

    def test_wipe_vnode_loses_that_ranges_hints(self):
        partition_map = PartitionMap(8)
        node = StorageNode("A", DVVMechanism(), partition_map=partition_map)
        client = ClientSession("writer")
        keys = [f"key-{i}" for i in range(16)]
        for key in keys:
            write(node, client, key, "v")
            node.store_hint("B", key, node.state_of(key))
        victim = partition_map.partition_of(keys[0])
        in_range = [k for k in keys if partition_map.partition_of(k) == victim]
        before = node.pending_hints()
        node.storage.wipe_vnode(victim)
        assert node.pending_hints() == before - len(in_range)
        assert all(partition_map.partition_of(hint.key) != victim
                   for hint in node.hints_for("B"))


class TestHintCoalescing:
    def test_repeat_writes_merge_into_one_hint(self):
        node = StorageNode("A", DVVMechanism())
        writer_a, writer_b = ClientSession("ca"), ClientSession("cb")
        write(node, writer_a, "k", "v1")
        first = node.store_hint("B", "k", node.state_of("k"))
        write(node, writer_b, "k", "v2")
        second = node.store_hint("B", "k", node.state_of("k"))
        assert node.pending_hints() == 1
        assert second is first                     # merged in place
        assert second.hint_id == first.hint_id     # replay acks still match

    def test_replay_of_merged_hint_delivers_everything(self):
        mechanism = DVVMechanism()
        holder = StorageNode("A", mechanism)
        # two causally concurrent (blind) writes held for the same down target
        write(holder, ClientSession("ca"), "k", "v1")
        holder.store_hint("B", "k", holder.state_of("k"))
        write(holder, ClientSession("cb"), "k", "v2")
        holder.store_hint("B", "k", holder.state_of("k"))
        [hint] = holder.hints_for("B")
        target = StorageNode("B", mechanism)
        target.local_merge("k", hint.state, reason="hint")
        # one replay delivered the union of both held writes
        assert sorted(map(str, target.values_of("k"))) == \
            sorted(map(str, holder.values_of("k")))
        assert "v2" in set(map(str, target.values_of("k")))

    def test_different_keys_keep_separate_hints(self):
        node = StorageNode("A", DVVMechanism())
        client = ClientSession("writer")
        for key in ("k1", "k2"):
            write(node, client, key, "v")
            node.store_hint("B", key, node.state_of(key))
        assert node.pending_hints() == 2
        hint_ids = {hint.hint_id for hint in node.hints_for("B")}
        assert len(hint_ids) == 2


class TestFlushCounterRegression:
    def test_popping_an_emptied_bucket_is_not_counted_as_a_rehash(self):
        node = StorageNode("A", DVVMechanism())
        index = MerkleIndex(node.mechanism, counters=node.stats)
        node.attach_merkle_index(index)
        client = ClientSession("writer")
        write(node, client, "k", "v1")
        index.flush()
        node.storage.delete("k")
        assert index.dirty_buckets() == 1
        before = node.stats["buckets_rehashed"]
        assert index.flush() == 0                  # nothing was hashed
        assert node.stats["buckets_rehashed"] == before
        assert index.root_digest == MerkleTree({}).root_digest


class TestVnodeIndexSet:
    def test_union_digest_equals_whole_node_rebuild(self):
        node, index = vnode_node()
        client = ClientSession("writer")
        for i in range(30):
            write(node, client, f"key-{i}", f"v{i}")
        assert index.root_digest == MerkleTree.for_node(
            node, fanout=index.fanout, depth=index.depth).root_digest
        assert index.keys() == node.storage.keys()
        assert index.key_count == len(node.storage)

    def test_partition_roots_match_per_range_rebuilds(self):
        node, index = vnode_node()
        client = ClientSession("writer")
        for i in range(30):
            write(node, client, f"key-{i}", f"v{i}")
        for partition_id in index.partition_ids():
            expected = MerkleTree(
                {key: state_fingerprint(node.mechanism, state)
                 for key, state in node.storage.vnode_items(partition_id)},
                fanout=index.fanout, depth=index.depth,
            ).root_digest
            assert index.partition_root(partition_id) == expected

    def test_a_write_moves_only_its_ranges_root(self):
        node, index = vnode_node()
        client = ClientSession("writer")
        for i in range(30):
            write(node, client, f"key-{i}", f"v{i}")
        roots_before = {pid: index.partition_root(pid)
                        for pid in index.partition_ids()}
        write(node, client, "key-0", "changed")
        mutated = index.partition_of("key-0")
        for partition_id in index.partition_ids():
            if partition_id == mutated:
                assert index.partition_root(partition_id) != \
                    roots_before[partition_id]
            else:
                assert index.partition_root(partition_id) == \
                    roots_before[partition_id]

    def test_empty_range_hashes_to_the_well_known_empty_root(self):
        _node, index = vnode_node()
        for partition_id in index.partition_ids():
            assert index.partition_root(partition_id) == index.empty_root_digest
        assert index.empty_root_digest == MerkleTree({}).root_digest

    def test_rebuild_pays_only_for_occupied_vnodes(self):
        node, index = vnode_node(partitions=16)
        client = ClientSession("writer")
        for i in range(6):
            write(node, client, f"key-{i}", f"v{i}")
        occupied = sum(1 for pid in index.partition_ids()
                       if node.storage.vnode_len(pid) > 0)
        assert 0 < occupied < 16
        before = node.stats["full_rebuilds"]
        node.restart()
        assert node.stats["full_rebuilds"] == before + occupied
        assert index.root_digest == MerkleTree.for_node(
            node, fanout=index.fanout, depth=index.depth).root_digest

    def test_fingerprint_import_skips_hashing(self):
        node, index = vnode_node()
        client = ClientSession("writer")
        write(node, client, "k", "v1")
        state = node.state_of("k")
        fingerprint = index.fingerprint("k")
        assert fingerprint == state_fingerprint(node.mechanism, state)
        other, other_index = vnode_node("B")
        hashed_before = other.stats["keys_hashed"]
        other.storage.put_state("k", state, fingerprint=fingerprint)
        assert other.stats["keys_hashed"] == hashed_before
        assert other.stats["fingerprints_imported"] == 1
        assert other_index.fingerprint("k") == fingerprint
        assert other_index.root_digest == index.root_digest


class TestIngestHandoff:
    def test_new_key_adopts_the_senders_digest(self):
        sender, sender_index = vnode_node("A")
        receiver, receiver_index = vnode_node("B")
        client = ClientSession("writer")
        write(sender, client, "k", "v1")
        hashed_before = receiver.stats["keys_hashed"]
        receiver.ingest_handoff("k", sender.state_of("k"),
                                sender_index.fingerprint("k"))
        assert receiver.stats["keys_hashed"] == hashed_before
        assert receiver.stats["fingerprints_imported"] == 1
        assert receiver.stats["handoffs"] == 1
        assert receiver_index.root_digest == MerkleTree.for_node(
            receiver, fanout=receiver_index.fanout,
            depth=receiver_index.depth).root_digest

    def test_matching_fingerprint_is_a_noop(self):
        sender, sender_index = vnode_node("A")
        receiver, _ = vnode_node("B")
        client = ClientSession("writer")
        write(sender, client, "k", "v1")
        state = sender.state_of("k")
        fingerprint = sender_index.fingerprint("k")
        receiver.ingest_handoff("k", state, fingerprint)
        hashed = receiver.stats["keys_hashed"]
        imported = receiver.stats["fingerprints_imported"]
        receiver.ingest_handoff("k", state, fingerprint)   # duplicate delivery
        assert receiver.stats["keys_hashed"] == hashed
        assert receiver.stats["fingerprints_imported"] == imported
        assert receiver.stats["handoffs"] == 2

    def test_mismatched_fingerprint_falls_back_to_a_real_merge(self):
        sender, sender_index = vnode_node("A")
        receiver, receiver_index = vnode_node("B")
        writer_a, writer_b = ClientSession("ca"), ClientSession("cb")
        write(sender, writer_a, "k", "v1")
        write(receiver, writer_b, "k", "v2")   # concurrent local version
        receiver.ingest_handoff("k", sender.state_of("k"),
                                sender_index.fingerprint("k"))
        assert sorted(map(str, receiver.values_of("k"))) == ["v1", "v2"]
        assert receiver_index.root_digest == MerkleTree.for_node(
            receiver, fanout=receiver_index.fanout,
            depth=receiver_index.depth).root_digest

    def test_no_fingerprint_degrades_to_local_merge(self):
        sender, _ = vnode_node("A")
        receiver, _ = vnode_node("B")
        client = ClientSession("writer")
        write(sender, client, "k", "v1")
        hashed_before = receiver.stats["keys_hashed"]
        receiver.ingest_handoff("k", sender.state_of("k"), None)
        assert receiver.stats["handoffs"] == 1
        assert receiver.stats["keys_hashed"] == hashed_before + 1


class _FixedRing:
    """Stand-in ring returning scripted preference lists (priority order)."""

    def __init__(self, lists):
        self._lists = lists

    def preference_list(self, key, count):
        return list(self._lists[key][:count])


class TestRebalancePlanRegression:
    def test_priority_permutation_without_set_change_emits_no_move(self):
        before = _FixedRing({"k": ["A", "B", "C"]})
        after = _FixedRing({"k": ["B", "A", "C"]})   # permuted, same set
        assert rebalance_plan(before, after, ["k"], replication=3) == []

    def test_genuine_set_change_still_moves(self):
        before = _FixedRing({"k": ["A", "B", "C"]})
        after = _FixedRing({"k": ["B", "A", "D"]})
        [move] = rebalance_plan(before, after, ["k"], replication=3)
        assert move.gained == ["D"]
        assert move.lost == ["C"]

    def test_mixed_keys_only_changed_sets_move(self):
        before = _FixedRing({"stay": ["A", "B"], "move": ["A", "B"]})
        after = _FixedRing({"stay": ["B", "A"], "move": ["A", "C"]})
        moves = rebalance_plan(before, after, ["stay", "move"], replication=2)
        assert [move.key for move in moves] == ["move"]
