"""Unit tests for the synchronous replicated store."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, ServerVVMechanism, create
from repro.cluster import ConsistentHashRing, Membership, PlacementService, QuorumConfig
from repro.core import ConfigurationError, StaleContextError
from repro.kvstore import ClientSession, SyncReplicatedStore


def make_store(mechanism=None, servers=("A", "B"), **kwargs):
    return SyncReplicatedStore(mechanism or DVVMechanism(), server_ids=servers, **kwargs)


class TestBasicOperations:
    def test_empty_get(self):
        store = make_store()
        client = ClientSession("c1")
        result = store.get("k", client)
        assert result.values == []
        assert result.context.key == "k"

    def test_put_then_get(self):
        store = make_store()
        client = ClientSession("c1")
        store.get("k", client)
        put_result = store.put("k", "v1", client, context=client.last_context("k"))
        assert put_result.coordinator in ("A", "B")
        assert store.values("k", put_result.coordinator) == ["v1"]

    def test_put_records_write_log(self):
        store = make_store()
        client = ClientSession("c1")
        client.get(store, "k")
        client.put(store, "k", "v1")
        assert len(store.write_log) == 1
        record = store.write_log.for_key("k")[0]
        assert record.client_id == "c1"
        assert record.sibling.value == "v1"

    def test_context_from_wrong_mechanism_rejected(self):
        dvv_store = make_store(DVVMechanism())
        other_store = make_store(ServerVVMechanism())
        client = ClientSession("c1")
        result = client.get(dvv_store, "k")
        with pytest.raises(StaleContextError):
            other_store.put("k", "v", client, context=result.context)

    def test_unknown_server_rejected(self):
        store = make_store()
        client = ClientSession("c1")
        with pytest.raises(ConfigurationError):
            store.get("k", client, server_id="Z")

    def test_requires_servers(self):
        with pytest.raises(ConfigurationError):
            SyncReplicatedStore(DVVMechanism(), server_ids=())


class TestReplication:
    def test_writes_stay_local_until_sync(self):
        store = make_store()
        client = ClientSession("c1")
        client.get(store, "k", server_id="A")
        client.put(store, "k", "v1", server_id="A")
        assert store.values("k", "A") == ["v1"]
        assert store.values("k", "B") == []
        store.sync_key("k", "A", "B")
        assert store.values("k", "B") == ["v1"]

    def test_replicate_on_write(self):
        store = make_store(replicate_on_write=True)
        client = ClientSession("c1")
        client.get(store, "k", server_id="A")
        client.put(store, "k", "v1", server_id="A")
        assert store.values("k", "B") == ["v1"]

    def test_sync_all_and_converge(self):
        store = make_store(servers=("A", "B", "C"))
        client = ClientSession("c1")
        for index, server in enumerate(("A", "B", "C")):
            fresh = ClientSession(f"client-{index}")
            fresh.get(store, "k", server_id=server)
            fresh.put(store, "k", f"v-{server}", server_id=server)
        assert not store.is_converged("k")
        rounds = store.converge("k")
        assert rounds >= 1
        assert store.is_converged("k")
        values = store.values("k", "A")
        assert sorted(values) == ["v-A", "v-B", "v-C"]

    def test_sibling_counts(self):
        store = make_store()
        alice, bob = ClientSession("alice"), ClientSession("bob")
        alice.get(store, "k", server_id="A")
        bob.get(store, "k", server_id="A")
        alice.put(store, "k", "a", server_id="A")
        bob.put(store, "k", "b", server_id="A")
        counts = store.sibling_counts("k")
        assert counts["A"] == 2
        assert counts["B"] == 0


class TestPlacementIntegration:
    def make_placed_store(self):
        servers = ("n1", "n2", "n3", "n4")
        ring = ConsistentHashRing(servers, virtual_nodes=16)
        membership = Membership(servers)
        placement = PlacementService(ring, membership, QuorumConfig(n=2, r=1, w=1))
        return SyncReplicatedStore(DVVMechanism(), server_ids=servers, placement=placement)

    def test_keys_replicate_only_on_preference_list(self):
        store = self.make_placed_store()
        client = ClientSession("c1")
        client.get(store, "mykey")
        client.put(store, "mykey", "v1")
        store.converge("mykey")
        replicas = store.replicas_for("mykey")
        assert len(replicas) == 2
        for server_id in store.servers:
            values = store.values("mykey", server_id)
            if server_id in replicas:
                assert values == ["v1"]
            else:
                assert values == []

    def test_coordinator_is_first_active_replica(self):
        store = self.make_placed_store()
        assert store.coordinator_for("mykey") == store.replicas_for("mykey")[0]


class TestMetadataAccounting:
    def test_metadata_totals_and_max(self):
        store = make_store()
        client = ClientSession("c1")
        client.get(store, "k", server_id="A")
        client.put(store, "k", "v1", server_id="A")
        assert store.metadata_entries() >= 1
        assert store.metadata_bytes() > 0
        assert store.max_metadata_entries_per_key() >= 1

    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset", "client_vv", "server_vv"])
    def test_every_mechanism_runs_through_the_store(self, mechanism_name):
        store = make_store(create(mechanism_name))
        client = ClientSession("c1")
        client.get(store, "k")
        client.put(store, "k", "value")
        store.converge()
        assert store.is_converged()
