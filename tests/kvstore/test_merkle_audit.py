"""Audit path: cold-verifying the maintained Merkle index against storage.

The incremental index is only trustworthy if its cached per-key fingerprints
actually match what a from-scratch hash of the stored state would produce.
:meth:`MerkleIndex.audit` samples stored keys and recomputes each fingerprint
cold (bypassing every cache layer); these tests pin that a healthy index
audits clean, that an injected drift is detected and counted, and that the
vnode index set routes each sampled key to its own partition's tree.
"""

from __future__ import annotations

import random

from repro.clocks import DVVMechanism
from repro.kvstore import ClientSession
from repro.kvstore.merkle_index import MerkleIndex, VnodeIndexSet
from repro.kvstore.server import StorageNode
from repro.cluster import PartitionMap


def indexed_node(node_id="A"):
    node = StorageNode(node_id, DVVMechanism())
    index = MerkleIndex(node.mechanism, fanout=16, depth=2,
                        counters=node.stats)
    node.attach_merkle_index(index)
    return node, index


def vnode_node(node_id="A", partitions=8):
    partition_map = PartitionMap(partitions)
    node = StorageNode(node_id, DVVMechanism(), partition_map=partition_map)
    index = VnodeIndexSet(node.mechanism, partition_map=partition_map,
                          counters=node.stats)
    node.attach_merkle_index(index)
    return node, index


def write(node, client, key, value):
    read = node.local_read(key)
    context = client.absorb_read(key, read, node.mechanism.name)
    sibling = client.prepare_write(key, value, context)
    node.local_write(key, context, sibling, client.client_id)


def populate(node, count=20):
    client = ClientSession("writer")
    for index in range(count):
        write(node, client, f"key-{index}", f"v{index}")


class TestMerkleIndexAudit:
    def test_healthy_index_audits_clean(self):
        node, index = indexed_node()
        populate(node)
        report = index.audit(node.storage, sample_size=64)
        assert report == {"keys_checked": 20, "mismatches": 0}
        assert node.stats["audit_keys_checked"] == 20
        assert node.stats["audit_mismatches"] == 0

    def test_sample_size_bounds_the_walk(self):
        node, index = indexed_node()
        populate(node, count=20)
        report = index.audit(node.storage, sample_size=5,
                             rng=random.Random(7))
        assert report["keys_checked"] == 5
        assert report["mismatches"] == 0

    def test_injected_drift_is_detected_and_counted(self):
        node, index = indexed_node()
        populate(node)
        index.flush()
        index._fingerprints["key-3"] = b"\x00" * 32  # simulate bit-rot
        report = index.audit(node.storage, sample_size=64)
        assert report["mismatches"] == 1
        assert node.stats["audit_mismatches"] == 1
        # counters accumulate across audits
        index.audit(node.storage, sample_size=64)
        assert node.stats["audit_mismatches"] == 2
        assert node.stats["audit_keys_checked"] == 40

    def test_audit_flushes_pending_mutations_first(self):
        node, index = indexed_node()
        populate(node)  # leaves dirty buckets until the next flush
        report = index.audit(node.storage, sample_size=64)
        assert report["mismatches"] == 0
        assert index.dirty_buckets() == 0


class TestVnodeAudit:
    def test_vnode_set_audits_clean_across_partitions(self):
        node, index = vnode_node()
        populate(node, count=30)
        # keys spread over several partition trees
        assert sum(1 for i in index.indexes.values() if i.key_count) > 1
        report = index.audit(node.storage, sample_size=64)
        assert report == {"keys_checked": 30, "mismatches": 0}

    def test_drift_in_one_partition_tree_is_caught(self):
        node, index = vnode_node()
        populate(node, count=30)
        index.flush()
        victim = index.index_for(index.partition_of("key-5"))
        victim._fingerprints["key-5"] = b"\xff" * 32
        report = index.audit(node.storage, sample_size=64)
        assert report["mismatches"] == 1


class TestNodeAuditEntryPoint:
    def test_node_without_index_reports_zeros(self):
        node = StorageNode("A", DVVMechanism())
        assert node.audit_merkle_index() == {"keys_checked": 0,
                                             "mismatches": 0}
        assert node.stats["audit_keys_checked"] == 0

    def test_node_delegates_to_attached_index(self):
        node, _index = indexed_node()
        populate(node, count=8)
        report = node.audit_merkle_index(sample_size=4,
                                        rng=random.Random(11))
        assert report["keys_checked"] == 4
        assert node.stats["audit_keys_checked"] == 4
