"""Unit tests for the oracle write log and the sibling resolution strategies."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, Sibling
from repro.core import CausalHistory, ConfigurationError, Dot
from repro.kvstore import (
    CallbackResolver,
    ClientSession,
    LastWriterWins,
    SyncReplicatedStore,
    UnionMerge,
    WriteLog,
    WriteRecord,
    resolve_and_writeback,
)


def record(key, writer, seq, past=(), value=None):
    dot = Dot(writer, seq)
    sibling = Sibling(value=value if value is not None else f"{writer}-{seq}",
                      origin_dot=dot,
                      history=CausalHistory(dot, past),
                      writer=writer)
    return WriteRecord(key=key, sibling=sibling, server_id="A", client_id=writer)


class TestWriteLog:
    def test_append_and_query(self):
        log = WriteLog()
        log.record(record("k", "c1", 1))
        log.append("k", record("k", "c2", 1).sibling, "A", "c2")
        assert len(log) == 2
        assert log.keys() == ["k"]
        assert len(log.for_key("k")) == 2
        assert len(log.for_key("other")) == 0
        assert len(list(iter(log))) == 2

    def test_latest_frontier_excludes_dominated_writes(self):
        log = WriteLog()
        first = record("k", "c1", 1)
        second = record("k", "c1", 2, past=first.history.events())
        concurrent = record("k", "c2", 1)
        for entry in (first, second, concurrent):
            log.record(entry)
        frontier_dots = {entry.origin_dot for entry in log.latest_frontier("k")}
        assert frontier_dots == {Dot("c1", 2), Dot("c2", 1)}

    def test_record_for_dot(self):
        log = WriteLog()
        entry = record("k", "c1", 1)
        log.record(entry)
        assert log.record_for_dot("k", Dot("c1", 1)) is entry
        assert log.record_for_dot("k", Dot("c9", 9)) is None


class TestResolvers:
    def make_siblings(self, *values):
        return [
            Sibling(value=value, origin_dot=Dot("c", index + 1),
                    history=CausalHistory(Dot("c", index + 1)), writer="c")
            for index, value in enumerate(values)
        ]

    def test_last_writer_wins_picks_highest_dot(self):
        resolver = LastWriterWins()
        siblings = self.make_siblings("old", "new")
        assert resolver.resolve(siblings) == "new"
        with pytest.raises(ConfigurationError):
            resolver.resolve([])

    def test_union_merge(self):
        resolver = UnionMerge()
        siblings = self.make_siblings(["a", "b"], ["b", "c"])
        assert resolver.resolve(siblings) == ["a", "b", "c"]

    def test_union_merge_rejects_non_iterables(self):
        resolver = UnionMerge()
        with pytest.raises(ConfigurationError):
            resolver.resolve(self.make_siblings("scalar", ["x"]))
        with pytest.raises(ConfigurationError):
            resolver.resolve([])

    def test_callback_resolver(self):
        resolver = CallbackResolver(lambda siblings: max(s.value for s in siblings))
        assert resolver.resolve(self.make_siblings(3, 7, 5)) == 7


class TestResolveAndWriteback:
    def test_conflict_is_resolved_and_persisted(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A",))
        alice, bob, fixer = ClientSession("alice"), ClientSession("bob"), ClientSession("fixer")
        alice.get(store, "cart")
        bob.get(store, "cart")
        alice.put(store, "cart", ["apple"])
        bob.put(store, "cart", ["banana"])
        assert len(store.values("cart", "A")) == 2

        merged = resolve_and_writeback(store, "cart", fixer, UnionMerge())
        assert sorted(merged) == ["apple", "banana"]
        assert store.values("cart", "A") == [merged]

    def test_no_conflict_returns_single_value(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A",))
        writer, reader = ClientSession("writer"), ClientSession("reader")
        writer.get(store, "k")
        writer.put(store, "k", "only")
        assert resolve_and_writeback(store, "k", reader, UnionMerge()) == "only"
        assert resolve_and_writeback(store, "missing", reader, UnionMerge()) is None
