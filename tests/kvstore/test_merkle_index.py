"""Unit tests for the incremental Merkle index (write-maintained hash trees)."""

from __future__ import annotations

import random

import pytest

from repro.clocks import DVVMechanism
from repro.core import ConfigurationError
from repro.kvstore import ClientSession, SyncReplicatedStore
from repro.kvstore.merkle import (
    MerkleAntiEntropy,
    MerkleTree,
    diff_keys,
    state_fingerprint,
)
from repro.kvstore.merkle_index import MerkleIndex
from repro.kvstore.server import StorageNode


def indexed_node(node_id="A", fanout=16, depth=2):
    node = StorageNode(node_id, DVVMechanism())
    index = MerkleIndex(node.mechanism, fanout=fanout, depth=depth,
                        counters=node.stats)
    node.attach_merkle_index(index)
    return node, index


def write(node, client, key, value):
    read = node.local_read(key)
    context = client.absorb_read(key, read, node.mechanism.name)
    sibling = client.prepare_write(key, value, context)
    node.local_write(key, context, sibling, client.client_id)


def rebuilt_digest(node, fanout=16, depth=2):
    return MerkleTree.for_node(node, fanout=fanout, depth=depth).root_digest


class TestIncrementalEqualsRebuild:
    def test_empty_index_matches_empty_tree(self):
        _node, index = indexed_node()
        assert index.root_digest == MerkleTree({}).root_digest

    def test_writes_deletes_and_merges_track_a_rebuild(self):
        node, index = indexed_node()
        client = ClientSession("writer")
        rng = random.Random(42)
        keys = [f"key-{i}" for i in range(40)]
        for step in range(200):
            key = rng.choice(keys)
            if rng.random() < 0.15 and node.storage.has_key(key):
                node.storage.delete(key)
            else:
                write(node, client, key, f"v{step}")
            if step % 25 == 0:
                assert index.root_digest == rebuilt_digest(node)
        assert index.root_digest == rebuilt_digest(node)

    def test_remote_merge_updates_index(self):
        node_a, index_a = indexed_node("A")
        node_b, index_b = indexed_node("B")
        client = ClientSession("writer")
        write(node_a, client, "k", "v1")
        assert index_a.root_digest != index_b.root_digest
        node_b.local_merge("k", node_a.state_of("k"))
        assert index_a.root_digest == index_b.root_digest
        assert index_b.root_digest == rebuilt_digest(node_b)

    def test_different_shapes_validated(self):
        with pytest.raises(ConfigurationError):
            MerkleIndex(DVVMechanism(), fanout=1)
        with pytest.raises(ConfigurationError):
            MerkleIndex(DVVMechanism(), depth=0)


class TestLazyMaintenance:
    def test_burst_into_one_bucket_costs_one_rehash(self):
        node, index = indexed_node()
        client = ClientSession("writer")
        for step in range(10):
            write(node, client, "hot", f"v{step}")
        assert index.dirty_buckets() == 1
        before = node.stats["buckets_rehashed"]
        index.flush()
        assert node.stats["buckets_rehashed"] - before == 1
        assert index.dirty_buckets() == 0

    def test_noop_merge_does_not_dirty(self):
        node, index = indexed_node()
        client = ClientSession("writer")
        write(node, client, "k", "v1")
        index.flush()
        node.local_merge("k", node.state_of("k"))   # idempotent self-merge
        assert index.dirty_buckets() == 0

    def test_delete_of_unknown_key_is_noop(self):
        node, index = indexed_node()
        node.storage.delete("never-written")
        assert index.dirty_buckets() == 0

    def test_fingerprint_matches_state_fingerprint(self):
        node, index = indexed_node()
        client = ClientSession("writer")
        write(node, client, "k", "v1")
        assert index.fingerprint("k") == state_fingerprint(node.mechanism,
                                                           node.state_of("k"))
        assert index.fingerprint("missing") is None
        assert index.keys() == ["k"]


class TestSnapshots:
    def test_snapshot_is_a_frozen_merkle_tree(self):
        node, index = indexed_node()
        client = ClientSession("writer")
        for i in range(12):
            write(node, client, f"key-{i}", f"v{i}")
        snap = index.snapshot()
        assert isinstance(snap, MerkleTree)
        assert snap.root_digest == rebuilt_digest(node)
        frozen = snap.root_digest
        write(node, client, "key-0", "changed")
        assert snap.root_digest == frozen                 # snapshot unaffected
        assert index.root_digest != frozen                # index moved on
        assert index.root_digest == rebuilt_digest(node)

    def test_snapshot_supports_the_wire_protocol_queries(self):
        node, index = indexed_node(fanout=4, depth=2)
        client = ClientSession("writer")
        for i in range(8):
            write(node, client, f"key-{i}", f"v{i}")
        snap = index.snapshot()
        full = MerkleTree.for_node(node, fanout=4, depth=2)
        assert snap.digest_at(()) == full.digest_at(())
        for path, digest in snap.child_digests(()):
            assert digest == full.digest_at(path)
            for leaf_path, leaf_digest in snap.child_digests(path):
                assert leaf_digest == full.digest_at(leaf_path)
                assert snap.bucket_fingerprints(leaf_path) == \
                    full.bucket_fingerprints(leaf_path)

    def test_diff_of_snapshots_localises_divergence(self):
        node_a, index_a = indexed_node("A")
        node_b, index_b = indexed_node("B")
        client = ClientSession("writer")
        for i in range(20):
            write(node_a, client, f"key-{i}", f"v{i}")
            node_b.local_merge(f"key-{i}", node_a.state_of(f"key-{i}"))
        late = ClientSession("late")
        write(node_a, late, "key-7", "changed")
        assert diff_keys(index_a.snapshot(), index_b.snapshot()) == ["key-7"]

    def test_snapshot_digest_counter_advances(self):
        node, index = indexed_node()
        before = node.stats["snapshot_digests"]
        index.snapshot()
        assert node.stats["snapshot_digests"] > before


class TestDurability:
    def test_restart_rebuilds_from_storage(self):
        node, index = indexed_node()
        client = ClientSession("writer")
        for i in range(10):
            write(node, client, f"key-{i}", f"v{i}")
        digest = index.root_digest
        rebuilds_before = node.stats["full_rebuilds"]
        node.restart()
        assert node.stats["full_rebuilds"] == rebuilds_before + 1
        assert index.root_digest == digest
        assert index.root_digest == rebuilt_digest(node)

    def test_wipe_empties_index_with_the_disk(self):
        node, index = indexed_node()
        client = ClientSession("writer")
        write(node, client, "k", "v1")
        node.wipe()
        assert index.root_digest == MerkleTree({}).root_digest
        assert index.keys() == []
        # the replacement disk is tracked: new writes index normally
        write(node, client, "k2", "v2")
        assert index.root_digest == rebuilt_digest(node)

    def test_attach_replaces_previous_index(self):
        node, first = indexed_node()
        second = MerkleIndex(node.mechanism, counters=node.stats)
        node.attach_merkle_index(second)
        client = ClientSession("writer")
        write(node, client, "k", "v1")
        assert node.merkle_index is second
        assert second.keys() == ["k"]
        assert first.keys() == []   # detached: no longer fed mutations


class TestSyncStoreAntiEntropyUsesIndex:
    def populated_store(self, keys=30):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A", "B", "C"))
        client = ClientSession("writer")
        for index in range(keys):
            key = f"key-{index}"
            client.get(store, key, server_id="A")
            client.put(store, key, f"value-{index}", server_id="A")
        return store

    def test_incremental_round_attaches_and_converges(self):
        store = self.populated_store()
        anti_entropy = MerkleAntiEntropy(store)
        assert all(node.merkle_index is not None
                   for node in store.servers.values())
        anti_entropy.run_until_converged()
        assert store.is_converged()
        assert all(node.stats["full_rebuilds"] == 1    # the attach-time seed
                   for node in store.servers.values())

    def test_incremental_matches_rebuild_outcome(self):
        store_a, store_b = self.populated_store(), self.populated_store()
        MerkleAntiEntropy(store_a, maintenance="incremental").run_until_converged()
        MerkleAntiEntropy(store_b, maintenance="rebuild").run_until_converged()
        for key in store_a.write_log.keys():
            assert sorted(map(str, store_a.values(key, "A"))) == \
                sorted(map(str, store_b.values(key, "A")))

    def test_incremental_skips_synced_keys_like_rebuild(self):
        store = self.populated_store()
        store.converge()
        client = ClientSession("late-writer")
        client.get(store, "key-9", server_id="A")
        client.put(store, "key-9", "changed", server_id="A")
        anti_entropy = MerkleAntiEntropy(store)
        anti_entropy.run_until_converged()
        assert anti_entropy.efficiency() > 0.5
        assert anti_entropy.keys_synced < 30

    def test_unknown_maintenance_mode_rejected(self):
        store = self.populated_store(keys=2)
        with pytest.raises(ConfigurationError):
            MerkleAntiEntropy(store, maintenance="clairvoyant")
