"""Unit tests for node storage and the replica-local server operations."""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, Sibling
from repro.core import CausalHistory, Dot, StaleContextError
from repro.kvstore import NodeStorage, StorageNode
from repro.kvstore.context import CausalContext


def sibling(value, writer="c1", seq=1):
    dot = Dot(writer, seq)
    return Sibling(value=value, origin_dot=dot, history=CausalHistory(dot), writer=writer)


class TestNodeStorage:
    def test_missing_key_returns_empty_state(self):
        storage = NodeStorage(DVVMechanism())
        state = storage.get_state("nope")
        assert storage.mechanism.is_empty(state)
        assert "nope" not in storage

    def test_put_and_get_state(self):
        mechanism = DVVMechanism()
        storage = NodeStorage(mechanism)
        state = mechanism.write(mechanism.empty_state(), mechanism.empty_context(),
                                sibling("v1"), "A", "c1")
        storage.put_state("k", state)
        assert storage.has_key("k")
        assert storage.sibling_count("k") == 1
        assert storage.keys() == ["k"]

    def test_storing_empty_state_removes_key(self):
        mechanism = DVVMechanism()
        storage = NodeStorage(mechanism)
        state = mechanism.write(mechanism.empty_state(), mechanism.empty_context(),
                                sibling("v1"), "A", "c1")
        storage.put_state("k", state)
        storage.put_state("k", mechanism.empty_state())
        assert not storage.has_key("k")

    def test_delete_and_len(self):
        mechanism = DVVMechanism()
        storage = NodeStorage(mechanism)
        state = mechanism.write(mechanism.empty_state(), mechanism.empty_context(),
                                sibling("v1"), "A", "c1")
        storage.put_state("k1", state)
        storage.put_state("k2", state)
        assert len(storage) == 2
        storage.delete("k1")
        assert len(storage) == 1
        assert list(dict(storage.items())) == ["k2"]

    def test_metadata_accounting_aggregates(self):
        mechanism = DVVMechanism()
        storage = NodeStorage(mechanism)
        state = mechanism.write(mechanism.empty_state(), mechanism.empty_context(),
                                sibling("v1"), "A", "c1")
        storage.put_state("k1", state)
        storage.put_state("k2", state)
        assert storage.metadata_entries() == 2 * storage.metadata_entries("k1")
        assert storage.metadata_bytes() == 2 * storage.metadata_bytes("k1")
        assert storage.metadata_entries("missing") == 0


class TestStorageNode:
    def test_local_write_then_read(self):
        node = StorageNode("A", DVVMechanism())
        node.local_write("k", None, sibling("v1"), "c1")
        read = node.local_read("k")
        assert [s.value for s in read.siblings] == ["v1"]
        assert node.values_of("k") == ["v1"]
        assert node.stats["writes"] == 1
        assert node.stats["reads"] == 1

    def test_context_key_mismatch_rejected(self):
        node = StorageNode("A", DVVMechanism())
        bad_context = CausalContext.initial("other-key", "dvv",
                                            DVVMechanism().empty_context())
        with pytest.raises(StaleContextError):
            node.local_write("k", bad_context, sibling("v1"), "c1")

    def test_local_merge_brings_in_remote_state(self):
        mechanism = DVVMechanism()
        source = StorageNode("A", mechanism)
        target = StorageNode("B", mechanism)
        source.local_write("k", None, sibling("v1"), "c1")
        target.local_merge("k", source.state_of("k"))
        assert target.values_of("k") == ["v1"]
        assert target.stats["merges"] == 1

    def test_metadata_passthrough(self):
        node = StorageNode("A", DVVMechanism())
        node.local_write("k", None, sibling("v1"), "c1")
        assert node.metadata_entries("k") >= 1
        assert node.metadata_bytes() > 0


class TestHintDurability:
    """Hints live in the storage layer and share the disk's fate."""

    def make_node(self):
        node = StorageNode("A", DVVMechanism())
        state = node.local_write("k", None, sibling("v1"), "c1")
        return node, state

    def test_hints_are_persisted_in_node_storage(self):
        node, state = self.make_node()
        hint = node.store_hint("B", "k", state)
        assert node.pending_hints() == 1
        assert node.hint_targets() == ["B"]
        # The hint is held by the storage layer, not by in-memory server state.
        assert node.storage.pending_hints() == 1
        assert [h.hint_id for h in node.storage.hints_for("B")] == [hint.hint_id]
        assert node.stats["hints_stored"] == 1

    def test_hints_survive_when_storage_object_is_retained(self):
        """A process restart keeps the disk — and with it the hints."""
        node, state = self.make_node()
        node.store_hint("B", "k", state)
        disk = node.storage
        restarted = StorageNode("A", DVVMechanism())
        restarted.storage = disk            # same disk, new process
        assert restarted.pending_hints() == 1
        assert restarted.hints_for("B")[0].key == "k"

    def test_wiped_storage_loses_hints(self):
        node, state = self.make_node()
        node.store_hint("B", "k", state)
        node.storage = NodeStorage(DVVMechanism())   # disk loss
        assert node.pending_hints() == 0
        assert node.hint_targets() == []

    def test_clear_hints_partial_and_full(self):
        node, state = self.make_node()
        first = node.store_hint("B", "k", state)
        second = node.store_hint("B", "k2", state)
        node.clear_hints("B", [first.hint_id])
        assert [h.hint_id for h in node.hints_for("B")] == [second.hint_id]
        node.clear_hints("B")
        assert node.pending_hints() == 0
