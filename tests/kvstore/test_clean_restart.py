"""Persisting the Merkle index across clean restarts (satellite of PR 5).

A clean shutdown flushes the write-maintained hash trees and marks the
on-disk index clean, so the following restart adopts the maintained digests
instead of rebuilding them (Riak's "hashtree marked clean on graceful stop"
optimisation) — counted per occupied vnode in ``rebuilds_skipped``.  A crash
or any post-flush mutation voids the cleanliness, and the restart pays the
``full_rebuilds`` it always did.
"""

from __future__ import annotations

from repro.clocks import DVVMechanism
from repro.cluster import QuorumConfig
from repro.kvstore import ClientSession, SimulatedCluster
from repro.kvstore.merkle_index import MerkleIndex
from repro.kvstore.server import StorageNode
from repro.network import FixedLatency


def build_cluster(**kwargs):
    kwargs.setdefault("server_ids", ("A", "B", "C"))
    kwargs.setdefault("quorum", QuorumConfig(n=3, r=2, w=2))
    kwargs.setdefault("latency", FixedLatency(1.0))
    kwargs.setdefault("anti_entropy_interval_ms", None)
    kwargs.setdefault("seed", 7)
    return SimulatedCluster(DVVMechanism(), **kwargs)


def populate(cluster, keys=12):
    client = cluster.client("writer")
    for index in range(keys):
        client.put(f"key-{index}", f"v{index}")
    cluster.drain()


class TestSimulatedClusterRestarts:
    def test_clean_shutdown_then_recover_skips_rebuilds(self):
        cluster = build_cluster()
        populate(cluster)
        node = cluster.servers["B"].node
        rebuilds_before = node.stats["full_rebuilds"]
        assert node.stats["rebuilds_skipped"] == 0

        cluster.shutdown_node("B")
        cluster.recover_node("B")
        cluster.drain()

        assert node.stats["rebuilds_skipped"] > 0
        assert node.stats["full_rebuilds"] == rebuilds_before

    def test_crash_recover_still_pays_full_rebuilds(self):
        cluster = build_cluster()
        populate(cluster)
        node = cluster.servers["B"].node
        rebuilds_before = node.stats["full_rebuilds"]

        cluster.fail_node("B")
        cluster.recover_node("B")
        cluster.drain()

        assert node.stats["full_rebuilds"] > rebuilds_before
        assert node.stats["rebuilds_skipped"] == 0

    def test_wipe_on_recover_never_skips(self):
        cluster = build_cluster()
        populate(cluster)
        node = cluster.servers["B"].node

        # even a *clean* stop cannot save an index whose disk was replaced
        cluster.shutdown_node("B")
        cluster.recover_node("B", wipe=True)
        cluster.drain()

        assert node.stats["rebuilds_skipped"] == 0

    def test_restart_cycle_preserves_anti_entropy_correctness(self):
        """The adopted index must still drive exchanges correctly."""
        cluster = build_cluster()
        populate(cluster)
        cluster.shutdown_node("B")
        cluster.recover_node("B")
        cluster.drain()
        assert cluster.servers["B"].node.stats["rebuilds_skipped"] > 0
        cluster.converge()
        states = [
            {key: server.node.values_of(key) for key in cluster.key_universe()}
            for server in cluster.servers.values()
        ]
        assert states[0] == states[1] == states[2]


class TestStorageNodeRestarts:
    def build_node(self):
        node = StorageNode("A", DVVMechanism())
        node.attach_merkle_index(MerkleIndex(node.mechanism, fanout=16,
                                             depth=2, counters=node.stats))
        client = ClientSession("writer")
        for index in range(5):
            sibling = client.prepare_write(f"key-{index}", f"v{index}", None)
            node.local_write(f"key-{index}", None, sibling, client.client_id)
        return node, client

    def test_shutdown_marks_clean_and_restart_adopts(self):
        node, _client = self.build_node()
        digest_before = node.merkle_index.root_digest
        rebuilds_before = node.stats["full_rebuilds"]
        node.shutdown()
        node.restart()
        assert node.stats["rebuilds_skipped"] > 0
        assert node.stats["full_rebuilds"] == rebuilds_before
        assert node.merkle_index.root_digest == digest_before

    def test_mutation_after_shutdown_voids_cleanliness(self):
        node, client = self.build_node()
        node.shutdown()
        # a write that sneaks in after the flush invalidates the clean mark
        sibling = client.prepare_write("late", "surprise", None)
        node.local_write("late", None, sibling, client.client_id)
        rebuilds_before = node.stats["full_rebuilds"]
        node.restart()
        assert node.stats["rebuilds_skipped"] == 0
        assert node.stats["full_rebuilds"] > rebuilds_before

    def test_restart_without_shutdown_rebuilds(self):
        node, _client = self.build_node()
        rebuilds_before = node.stats["full_rebuilds"]
        node.restart()
        assert node.stats["rebuilds_skipped"] == 0
        assert node.stats["full_rebuilds"] > rebuilds_before
