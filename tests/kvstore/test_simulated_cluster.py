"""Unit tests for the message-passing simulated cluster."""

from __future__ import annotations

import pytest

from repro.clocks import ClientVVMechanism, DVVMechanism
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster, default_value_size
from repro.network import FixedLatency, SizeDependentLatency


def build_cluster(mechanism=None, **kwargs):
    kwargs.setdefault("server_ids", ("n1", "n2", "n3"))
    kwargs.setdefault("latency", FixedLatency(1.0))
    kwargs.setdefault("anti_entropy_interval_ms", None)
    kwargs.setdefault("seed", 1)
    return SimulatedCluster(mechanism or DVVMechanism(), **kwargs)


class TestBasicRequestFlow:
    def test_put_then_get(self):
        cluster = build_cluster()
        client = cluster.client("alice")
        outcomes = {}
        client.put("k", "v1", lambda result: outcomes.setdefault("put", result))
        cluster.run(until=50)
        client.get("k", lambda result: outcomes.setdefault("get", result))
        cluster.drain()
        assert outcomes["put"].coordinator in cluster.servers
        assert outcomes["get"].values == ["v1"]
        records = cluster.all_request_records()
        assert len(records) == 2
        assert all(record.ok for record in records)
        assert all(record.latency_ms > 0 for record in records)

    def test_read_modify_write_chain(self):
        cluster = build_cluster()
        client = cluster.client("alice")
        final = {}

        def third(result):
            final["values"] = result.values

        def second(_):
            client.get("counter", lambda r: client.put("counter", "2",
                                                       lambda _r: client.get("counter", third)))

        client.put("counter", "1", second)
        cluster.drain()
        assert final["values"] == ["2"]

    def test_client_reuse(self):
        cluster = build_cluster()
        assert cluster.client("alice") is cluster.client("alice")


class TestReplicationAndQuorums:
    def test_write_reaches_quorum_replicas(self):
        cluster = build_cluster(quorum=QuorumConfig(n=3, r=2, w=2))
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.drain()
        holding = [
            server_id for server_id, server in cluster.servers.items()
            if server.node.values_of("k") == ["v1"]
        ]
        assert len(holding) >= 2

    def test_read_repair_fixes_stale_replica(self):
        cluster = build_cluster(quorum=QuorumConfig(n=3, r=3, w=1))
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=30)
        # Reading with R=3 forces the coordinator to notice and repair any
        # replica that missed the write.
        client.get("k")
        cluster.drain()
        holding = [
            server_id for server_id, server in cluster.servers.items()
            if server.node.values_of("k") == ["v1"]
        ]
        assert len(holding) == 3

    def test_anti_entropy_converges_without_reads(self):
        cluster = build_cluster(anti_entropy_interval_ms=20.0,
                                quorum=QuorumConfig(n=3, r=1, w=1))
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=500)
        cluster.drain()
        counts = cluster.sibling_counts("k")
        assert all(count == 1 for count in counts.values())

    def test_concurrent_clients_create_siblings(self):
        cluster = build_cluster()
        alice, bob = cluster.client("alice"), cluster.client("bob")
        # both read the empty key, then write concurrently
        alice.get("cart", lambda _1: None)
        bob.get("cart", lambda _2: None)
        cluster.run(until=30)
        alice.put("cart", ["apple"])
        bob.put("cart", ["banana"])
        cluster.run(until=80)
        observed = {}
        cluster.client("carol").get("cart", lambda r: observed.setdefault("values", r.values))
        cluster.drain()
        assert sorted(map(tuple, observed["values"])) == [("apple",), ("banana",)]


class TestFailuresAndMetrics:
    def test_failed_node_is_bypassed(self):
        cluster = build_cluster(quorum=QuorumConfig(n=2, r=1, w=1))
        victim = cluster.placement.coordinator_for("k")
        cluster.fail_node(victim)
        client = cluster.client("alice")
        outcome = {}
        client.put("k", "v1", lambda result: outcome.setdefault("coordinator", result.coordinator))
        cluster.drain()
        assert outcome["coordinator"] != victim
        cluster.recover_node(victim)
        assert cluster.membership.is_up(victim)

    def test_metadata_accounting(self):
        cluster = build_cluster()
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.drain()
        assert cluster.metadata_entries() >= 1
        assert cluster.metadata_bytes() > 0

    def test_larger_metadata_means_slower_requests(self):
        """The latency experiment's causal chain in miniature: same workload,
        size-dependent latency, bigger clocks, slower requests."""
        def run(mechanism, client_count=6):
            cluster = SimulatedCluster(
                mechanism,
                server_ids=("n1", "n2", "n3"),
                latency=SizeDependentLatency(base=FixedLatency(0.2), bytes_per_ms=300.0),
                anti_entropy_interval_ms=None,
                seed=3,
            )
            clients = [cluster.client(f"c{i}") for i in range(client_count)]
            for round_index in range(4):
                for client in clients:
                    client.get("hot", lambda _r, c=client, i=round_index:
                               c.put("hot", f"{c.client_id}:{i}"))
                cluster.run(until=cluster.simulation.now + 200)
            cluster.drain()
            records = [r for r in cluster.all_request_records() if r.operation == "put"]
            return sum(r.latency_ms for r in records) / len(records)

        dvv_latency = run(DVVMechanism())
        client_vv_latency = run(ClientVVMechanism())
        assert client_vv_latency > dvv_latency

    def test_value_size_estimation(self):
        assert default_value_size(b"1234") == 4
        assert default_value_size("abc") == len(repr("abc"))
        assert default_value_size({"a": 1}) > 0
