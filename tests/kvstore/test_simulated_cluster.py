"""Unit tests for the message-passing simulated cluster."""

from __future__ import annotations

import pytest

from repro.clocks import ClientVVMechanism, DVVMechanism
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster, default_value_size
from repro.network import FixedLatency, SizeDependentLatency


def build_cluster(mechanism=None, **kwargs):
    kwargs.setdefault("server_ids", ("n1", "n2", "n3"))
    kwargs.setdefault("latency", FixedLatency(1.0))
    kwargs.setdefault("anti_entropy_interval_ms", None)
    kwargs.setdefault("seed", 1)
    return SimulatedCluster(mechanism or DVVMechanism(), **kwargs)


class TestBasicRequestFlow:
    def test_put_then_get(self):
        cluster = build_cluster()
        client = cluster.client("alice")
        outcomes = {}
        client.put("k", "v1", lambda result: outcomes.setdefault("put", result))
        cluster.run(until=50)
        client.get("k", lambda result: outcomes.setdefault("get", result))
        cluster.drain()
        assert outcomes["put"].coordinator in cluster.servers
        assert outcomes["get"].values == ["v1"]
        records = cluster.all_request_records()
        assert len(records) == 2
        assert all(record.ok for record in records)
        assert all(record.latency_ms > 0 for record in records)

    def test_read_modify_write_chain(self):
        cluster = build_cluster()
        client = cluster.client("alice")
        final = {}

        def third(result):
            final["values"] = result.values

        def second(_):
            client.get("counter", lambda r: client.put("counter", "2",
                                                       lambda _r: client.get("counter", third)))

        client.put("counter", "1", second)
        cluster.drain()
        assert final["values"] == ["2"]

    def test_client_reuse(self):
        cluster = build_cluster()
        assert cluster.client("alice") is cluster.client("alice")


class TestAsyncRequestMode:
    def build_async(self, **kwargs):
        kwargs.setdefault("server_ids", ("n1", "n2", "n3", "n4", "n5"))
        kwargs.setdefault("quorum", QuorumConfig(n=3, r=2, w=2, sloppy=True))
        kwargs.setdefault("request_mode", "async")
        kwargs.setdefault("replica_timeout_ms", 6.0)
        kwargs.setdefault("request_timeout_ms", 30.0)
        return build_cluster(**kwargs)

    def test_unknown_request_mode_rejected(self):
        from repro.core.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            build_cluster(request_mode="psychic")
        with pytest.raises(ConfigurationError):
            build_cluster(request_mode="async", replica_timeout_ms=0)

    def test_healthy_cluster_serves_without_deadline_firing(self):
        cluster = self.build_async()
        client = cluster.client("alice")
        outcomes = {}
        client.put("k", "v1", lambda result: outcomes.setdefault("put", result))
        cluster.run(until=50)
        client.get("k", lambda result: outcomes.setdefault("get", result))
        cluster.drain()
        assert outcomes["put"] is not None
        assert outcomes["get"].values == ["v1"]
        # All replica/request deadlines were disarmed by timely acks.
        stats = cluster.transport.stats
        assert stats.deadlines_set > 0
        assert stats.deadlines_fired == 0

    def test_crashed_primary_is_handed_off_even_after_quorum(self):
        """The quorum completes without the crashed primary, and the write
        still reaches a fallback with a hint naming it."""
        cluster = self.build_async()
        key = "k"
        victim = cluster.placement.primary_replicas(key)[2]
        cluster.fail_node(victim)
        client = cluster.client("alice")
        outcomes = {}
        client.put(key, "v1", lambda result: outcomes.setdefault("put", result))
        cluster.run(until=cluster.simulation.now + 100.0)
        assert outcomes["put"] is not None
        holders = [server_id for server_id, server in cluster.servers.items()
                   if server.node.hints_for(victim)]
        assert holders and victim not in holders

    def test_strict_mode_records_failed_write(self):
        cluster = self.build_async(quorum=QuorumConfig(n=3, r=2, w=2, sloppy=False))
        key = "k"
        primaries = cluster.placement.primary_replicas(key)
        for victim in primaries[1:]:
            cluster.fail_node(victim)
        client = cluster.client("alice")
        results = []
        client.put(key, "v1", results.append)
        cluster.run(until=cluster.simulation.now + 200.0)
        assert results == [None]
        record = client.records[-1]
        assert not record.ok
        assert record.error in ("quorum_unreachable", "request_timeout")
        # Deadline accounting stays consistent: every set deadline either
        # fired, was cancelled, or is still pending — never both.
        stats = cluster.transport.stats
        assert stats.deadlines_fired + stats.deadlines_cancelled <= stats.deadlines_set

    def test_strict_non_primary_coordinator_does_not_self_vote(self):
        """A strict W=1 quorum must not be satisfied by a non-home
        coordinator's own copy when every primary is unreachable."""
        cluster = self.build_async(quorum=QuorumConfig(n=3, r=1, w=1, sloppy=False))
        key = "k"
        primaries = cluster.placement.primary_replicas(key)
        for victim in primaries:
            cluster.fail_node(victim)
        client = cluster.client("alice")
        results = []
        client.put(key, "v1", results.append)
        cluster.run(until=cluster.simulation.now + 800.0)
        assert results == [None]
        assert not client.records[-1].ok

    def test_client_fails_over_to_fallback_coordinator(self):
        cluster = self.build_async()
        key = "k"
        primaries = cluster.placement.primary_replicas(key)
        for victim in primaries:
            cluster.fail_node(victim)
        client = cluster.client("alice")
        results = []
        client.put(key, "v1", results.append)
        cluster.run(until=cluster.simulation.now + 800.0)
        assert results and results[0] is not None
        assert results[0].coordinator not in primaries


class TestReplicationAndQuorums:
    def test_write_reaches_quorum_replicas(self):
        cluster = build_cluster(quorum=QuorumConfig(n=3, r=2, w=2))
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.drain()
        holding = [
            server_id for server_id, server in cluster.servers.items()
            if server.node.values_of("k") == ["v1"]
        ]
        assert len(holding) >= 2

    def test_read_repair_fixes_stale_replica(self):
        cluster = build_cluster(quorum=QuorumConfig(n=3, r=3, w=1))
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=30)
        # Reading with R=3 forces the coordinator to notice and repair any
        # replica that missed the write.
        client.get("k")
        cluster.drain()
        holding = [
            server_id for server_id, server in cluster.servers.items()
            if server.node.values_of("k") == ["v1"]
        ]
        assert len(holding) == 3

    def test_anti_entropy_converges_without_reads(self):
        cluster = build_cluster(anti_entropy_interval_ms=20.0,
                                quorum=QuorumConfig(n=3, r=1, w=1))
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=500)
        cluster.drain()
        counts = cluster.sibling_counts("k")
        assert all(count == 1 for count in counts.values())

    def test_concurrent_clients_create_siblings(self):
        cluster = build_cluster()
        alice, bob = cluster.client("alice"), cluster.client("bob")
        # both read the empty key, then write concurrently
        alice.get("cart", lambda _1: None)
        bob.get("cart", lambda _2: None)
        cluster.run(until=30)
        alice.put("cart", ["apple"])
        bob.put("cart", ["banana"])
        cluster.run(until=80)
        observed = {}
        cluster.client("carol").get("cart", lambda r: observed.setdefault("values", r.values))
        cluster.drain()
        assert sorted(map(tuple, observed["values"])) == [("apple",), ("banana",)]


class TestFailuresAndMetrics:
    def test_failed_node_is_bypassed(self):
        cluster = build_cluster(quorum=QuorumConfig(n=2, r=1, w=1))
        victim = cluster.placement.coordinator_for("k")
        cluster.fail_node(victim)
        client = cluster.client("alice")
        outcome = {}
        client.put("k", "v1", lambda result: outcome.setdefault("coordinator", result.coordinator))
        cluster.drain()
        assert outcome["coordinator"] != victim
        cluster.recover_node(victim)
        assert cluster.membership.is_up(victim)

    def test_metadata_accounting(self):
        cluster = build_cluster()
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.drain()
        assert cluster.metadata_entries() >= 1
        assert cluster.metadata_bytes() > 0

    def test_larger_metadata_means_slower_requests(self):
        """The latency experiment's causal chain in miniature: same workload,
        size-dependent latency, bigger clocks, slower requests."""
        def run(mechanism, client_count=6):
            cluster = SimulatedCluster(
                mechanism,
                server_ids=("n1", "n2", "n3"),
                latency=SizeDependentLatency(base=FixedLatency(0.2), bytes_per_ms=300.0),
                anti_entropy_interval_ms=None,
                seed=3,
            )
            clients = [cluster.client(f"c{i}") for i in range(client_count)]
            for round_index in range(4):
                for client in clients:
                    client.get("hot", lambda _r, c=client, i=round_index:
                               c.put("hot", f"{c.client_id}:{i}"))
                cluster.run(until=cluster.simulation.now + 200)
            cluster.drain()
            records = [r for r in cluster.all_request_records() if r.operation == "put"]
            return sum(r.latency_ms for r in records) / len(records)

        dvv_latency = run(DVVMechanism())
        client_vv_latency = run(ClientVVMechanism())
        assert client_vv_latency > dvv_latency

    def test_value_size_estimation(self):
        assert default_value_size(b"1234") == 4
        assert default_value_size("abc") == len(repr("abc"))
        assert default_value_size({"a": 1}) > 0


def seed_converged(cluster, keys):
    client = cluster.client("seeder")
    for key in keys:
        client.put(key, f"{key}-v1")
    cluster.simulation.run_until_idle()
    return client


class TestMerkleAntiEntropyProtocol:
    def test_clean_exchange_costs_one_digest_roundtrip(self):
        cluster = build_cluster(hint_replay_interval_ms=None)
        seed_converged(cluster, [f"k{i}" for i in range(10)])
        assert cluster.is_converged()
        sent_before = cluster.transport.stats.sent
        cluster.start_exchange("n1", "n2")
        cluster.simulation.run_until_idle()
        assert cluster.merkle_stats.exchanges_clean == 1
        # root request + "nothing differs" response, no key states
        assert cluster.transport.stats.sent - sent_before == 2
        assert cluster.transport.stats.per_type.get("merkle_key_states", 0) == 0

    def test_diverged_exchange_transfers_only_divergent_keys(self):
        cluster = build_cluster(quorum=QuorumConfig(n=3, r=1, w=1, sloppy=False),
                                hint_replay_interval_ms=None)
        client = seed_converged(cluster, [f"k{i}" for i in range(12)])
        cluster.run_anti_entropy_round()
        assert cluster.is_converged()
        # diverge one key via a write that only reaches the coordinator's
        # side: partition the other two servers away first
        key = next(k for k in cluster.key_universe()
                   if cluster.placement.coordinator_for(k) == "n1")
        cluster.partitions.partition({"n1"}, {"n2", "n3"})
        client.get(key, lambda _r: client.put(key, "diverged"))
        cluster.simulation.run_until_idle()
        cluster.partitions.heal()

        cluster.start_exchange("n1", "n2")
        cluster.simulation.run_until_idle()
        assert cluster.servers["n2"].node.stats["merkle_syncs"] >= 1
        # ordinary merges on n2 were not inflated by the merkle transfer
        assert "diverged" in map(str, cluster.servers["n2"].node.values_of(key))
        assert cluster.merkle_stats.keys_transferred <= 2  # one key, both directions

    def test_full_strategy_still_available(self):
        cluster = build_cluster(anti_entropy_strategy="full", hint_replay_interval_ms=None)
        seed_converged(cluster, ["a", "b"])
        cluster.start_exchange("n1", "n2")
        cluster.simulation.run_until_idle()
        assert cluster.transport.stats.per_type.get("sync_request", 0) == 1
        assert cluster.merkle_stats.exchanges_started == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(Exception):
            build_cluster(anti_entropy_strategy="telepathy")

    def test_sync_batching_splits_large_transfers(self):
        cluster = build_cluster(sync_batch_size=2, hint_replay_interval_ms=None)
        client = seed_converged(cluster, [f"k{i}" for i in range(8)])
        cluster.run_anti_entropy_round()
        cluster.partitions.partition({"n1"}, {"n2", "n3"})
        for key in [k for k in cluster.key_universe()
                    if cluster.placement.coordinator_for(k) == "n1"][:5]:
            client.get(key, lambda _r, k=key: client.put(k, f"{k}-late"))
        cluster.simulation.run_until_idle()
        cluster.partitions.heal()
        sent_before = cluster.transport.stats.per_type.get("merkle_key_states", 0)
        cluster.start_exchange("n1", "n2")
        cluster.simulation.run_until_idle()
        sent = cluster.transport.stats.per_type.get("merkle_key_states", 0) - sent_before
        if cluster.merkle_stats.keys_transferred > 2:
            assert sent >= 2  # batches of two keys each


class TestBatchedReadRepair:
    def stale_replica_setup(self, keys=12):
        """Converge, crash n3, write late versions, restart n3 stale."""
        cluster = build_cluster(quorum=QuorumConfig(n=3, r=3, w=2),
                                hint_replay_interval_ms=None)
        client = seed_converged(cluster, [f"k{i}" for i in range(keys)])
        cluster.run_anti_entropy_round()
        assert cluster.is_converged()
        # Keys coordinated by n1 while everyone is up: reads after recovery
        # route through n1 again, so n1 is the node whose repair queue we
        # observe (a key coordinated by n3 would repair n3 locally instead).
        stale_keys = [key for key in cluster.key_universe()
                      if cluster.placement.coordinator_for(key) == "n1"]
        cluster.fail_node("n3")
        for key in stale_keys:
            client.get(key, lambda _r, k=key: client.put(k, f"{k}-late"))
        cluster.simulation.run_until_idle()
        cluster.recover_node("n3")   # restart: pre-crash (stale) state kept
        return cluster, client, stale_keys

    def test_repairs_to_one_replica_coalesce_into_one_message(self):
        cluster, client, stale_keys = self.stale_replica_setup()
        assert len(stale_keys) >= 2, "setup needs several keys on one coordinator"
        before = cluster.transport.stats.per_type.get("read_repair", 0)
        for key in stale_keys:
            client.get(key)   # R=3 reads notice n3's stale copies
        cluster.drain()
        messages = cluster.transport.stats.per_type.get("read_repair", 0) - before
        coordinator = cluster.servers["n1"]
        repaired = coordinator.read_repair_stats.replicas_repaired
        assert repaired >= len(stale_keys)
        # Coalescing is the point: strictly fewer messages than repaired
        # (key, replica) pairs, mirroring MERKLE_KEY_STATES batching.
        assert 0 < messages < repaired
        assert coordinator.read_repair_stats.batches_sent == messages
        for key in stale_keys:
            assert f"{key}-late" in map(str, cluster.servers["n3"].node.values_of(key))

    def test_byte_accounting_preserved(self):
        cluster, client, stale_keys = self.stale_replica_setup()
        stats = cluster.transport.stats
        before_sent = stats.bytes_per_type.get("read_repair", 0)
        before_delivered = stats.delivered_bytes_per_type.get("read_repair", 0)
        for key in stale_keys:
            client.get(key)
        cluster.drain()
        sent = stats.bytes_per_type.get("read_repair", 0) - before_sent
        delivered = stats.delivered_bytes_per_type.get("read_repair", 0) - before_delivered
        assert sent > 0
        assert delivered == sent      # healed cluster: nothing dropped
        assert stats.bytes_for("read_repair") == stats.attempted_bytes_for("read_repair")

    def test_zero_window_sends_immediately(self):
        cluster = build_cluster(quorum=QuorumConfig(n=3, r=3, w=1),
                                hint_replay_interval_ms=None,
                                read_repair_batch_ms=0.0)
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=30)
        client.get("k")
        cluster.drain()
        holding = [server_id for server_id, server in cluster.servers.items()
                   if server.node.values_of("k") == ["v1"]]
        assert len(holding) == 3

    def test_full_batch_flushes_without_waiting(self):
        cluster, client, stale_keys = self.stale_replica_setup()
        cluster.sync_batch_size = 1   # every queued repair is a full batch
        before = cluster.transport.stats.per_type.get("read_repair", 0)
        for key in stale_keys:
            client.get(key)
        cluster.drain()
        messages = cluster.transport.stats.per_type.get("read_repair", 0) - before
        assert messages >= len(stale_keys)   # no coalescing at batch size 1

    def test_negative_window_rejected(self):
        with pytest.raises(Exception):
            build_cluster(read_repair_batch_ms=-1.0)

    def test_crash_during_window_drops_queued_repairs(self):
        """A coordinator crashing mid-window must not emit repairs while down:
        the queue is process memory and dies with the crash."""
        cluster, client, stale_keys = self.stale_replica_setup()
        for key in stale_keys:
            client.get(key)
        # Run just long enough for the replica replies to arrive (three 1ms
        # hops) and the repairs to queue, but not for the 2ms coalescing
        # window that starts at reply time to close.
        cluster.run(until=cluster.simulation.now + 3.5)
        coordinator = cluster.servers["n1"]
        assert coordinator._repair_queue, "setup: repairs should be queued"
        before = cluster.transport.stats.per_type.get("read_repair", 0)
        cluster.fail_node("n1")
        cluster.run(until=cluster.simulation.now + 20.0)
        assert cluster.transport.stats.per_type.get("read_repair", 0) == before
        assert not coordinator._repair_queue
        cluster.recover_node("n1", wipe=True)
        cluster.drain()
        assert cluster.transport.stats.per_type.get("read_repair", 0) == before


class TestAdaptiveDeadlines:
    def build_adaptive(self, **kwargs):
        kwargs.setdefault("server_ids", ("n1", "n2", "n3", "n4", "n5"))
        kwargs.setdefault("quorum", QuorumConfig(n=3, r=2, w=2, sloppy=True))
        kwargs.setdefault("request_mode", "async")
        kwargs.setdefault("replica_timeout_ms", 6.0)
        kwargs.setdefault("request_timeout_ms", 30.0)
        kwargs.setdefault("deadline_mode", "adaptive")
        return build_cluster(**kwargs)

    def test_configuration_validated(self):
        from repro.core.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            build_cluster(deadline_mode="prophetic")
        with pytest.raises(ConfigurationError):
            self.build_adaptive(deadline_floor_ms=0.0)
        with pytest.raises(ConfigurationError):
            self.build_adaptive(deadline_floor_ms=5.0, deadline_ceiling_ms=1.0)

    def test_deadline_tracks_ewma_within_floor_and_ceiling(self):
        cluster = self.build_adaptive(deadline_floor_ms=2.0)
        server = next(iter(cluster.servers.values()))
        # never observed: fall back to the fixed timeout
        assert server._replica_deadline_ms("peer") == cluster.replica_timeout_ms
        server._ack_latency_ewma["peer"] = 1.0
        assert server._replica_deadline_ms("peer") == pytest.approx(3.0)  # 3x EWMA
        server._ack_latency_ewma["peer"] = 0.1
        assert server._replica_deadline_ms("peer") == pytest.approx(2.0)  # floor
        server._ack_latency_ewma["peer"] = 100.0
        assert server._replica_deadline_ms("peer") == pytest.approx(
            cluster.deadline_ceiling_ms)                                  # ceiling

    def test_fixed_mode_ignores_observations(self):
        cluster = self.build_adaptive(deadline_mode="fixed")
        server = next(iter(cluster.servers.values()))
        server._ack_latency_ewma["peer"] = 1.0
        assert server._replica_deadline_ms("peer") == cluster.replica_timeout_ms

    def test_acks_feed_the_ewma(self):
        cluster = self.build_adaptive()
        client = cluster.client("alice")
        for i in range(6):
            client.put("k", f"v{i}")
            cluster.run(until=cluster.simulation.now + 40.0)
        observed = [server._ack_latency_ewma
                    for server in cluster.servers.values()
                    if server._ack_latency_ewma]
        assert observed, "coordinators should have recorded ack latencies"
        for ewma_map in observed:
            for latency in ewma_map.values():
                assert latency > 0

    def test_healthy_cluster_serves_under_adaptive_deadlines(self):
        cluster = self.build_adaptive()
        client = cluster.client("alice")
        outcomes = {}
        client.put("k", "v1", lambda result: outcomes.setdefault("put", result))
        cluster.run(until=60)
        client.get("k", lambda result: outcomes.setdefault("get", result))
        cluster.drain()
        assert outcomes["put"] is not None
        assert outcomes["get"].values == ["v1"]
        assert all(record.ok for record in cluster.all_request_records())

    def test_crashed_primary_still_handed_off(self):
        """Tightened deadlines must not break the sloppy-quorum handoff path."""
        cluster = self.build_adaptive()
        key = "k"
        client = cluster.client("alice")
        # Warm the EWMAs so the adaptive path (not the fixed fallback) is used.
        for i in range(4):
            client.put(key, f"warm{i}")
            cluster.run(until=cluster.simulation.now + 40.0)
        victim = cluster.placement.primary_replicas(key)[2]
        cluster.fail_node(victim)
        outcomes = {}
        client.put(key, "v1", lambda result: outcomes.setdefault("put", result))
        cluster.run(until=cluster.simulation.now + 100.0)
        assert outcomes["put"] is not None
        holders = [server_id for server_id, server in cluster.servers.items()
                   if server.node.hints_for(victim)]
        assert holders and victim not in holders


class TestHintedHandoff:
    def test_write_to_down_primary_stores_hint(self):
        cluster = build_cluster(hint_replay_interval_ms=None)
        # hinted handoff disabled => no hints
        cluster.fail_node("n3")
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.simulation.run_until_idle()
        assert sum(s.node.pending_hints() for s in cluster.servers.values()) == 0

        cluster = build_cluster(hint_replay_interval_ms=40.0)
        cluster.fail_node("n3")
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=cluster.simulation.now + 10.0)
        holders = [s for s in cluster.servers.values() if s.node.pending_hints()]
        assert holders
        assert holders[0].node.stats["hints_stored"] == 1
        assert holders[0].node.hints_for("n3")[0].key == "k"

    def test_hint_replayed_on_recovery(self):
        cluster = build_cluster(hint_replay_interval_ms=30.0)
        cluster.fail_node("n3")
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=cluster.simulation.now + 10.0)
        assert "v1" not in map(str, cluster.servers["n3"].node.values_of("k"))
        cluster.recover_node("n3")
        cluster.run(until=cluster.simulation.now + 60.0)
        assert list(map(str, cluster.servers["n3"].node.values_of("k"))) == ["v1"]
        assert cluster.servers["n3"].node.stats["hint_replays"] == 1
        # acked hints are cleared everywhere
        assert sum(s.node.pending_hints() for s in cluster.servers.values()) == 0


class TestElasticMembership:
    def test_join_node_receives_handoff(self):
        cluster = build_cluster(hint_replay_interval_ms=None)
        seed_converged(cluster, [f"k{i}" for i in range(10)])
        handed_off = cluster.join_node("n4")
        cluster.simulation.run_until_idle()
        joiner = cluster.servers["n4"]
        assert handed_off > 0
        assert joiner.node.stats["handoffs"] > 0
        assert len(joiner.node.storage.keys()) > 0
        # the joiner serves reads for keys it now coordinates
        assert "n4" in cluster.ring.nodes()
        assert cluster.membership.is_up("n4")
        if cluster.anti_entropy is not None:
            assert "n4" in cluster.anti_entropy.nodes()
        # every key the joiner is now a primary home for was pushed to it
        for key in cluster.key_universe():
            if "n4" in cluster.placement.primary_replicas(key):
                assert cluster.servers["n4"].node.storage.has_key(key)

    def test_duplicate_join_rejected(self):
        cluster = build_cluster()
        with pytest.raises(Exception):
            cluster.join_node("n1")

    def test_decommission_preserves_sole_copies(self):
        # W=1 without replication fan-out beyond the coordinator would lose
        # data on departure if the node did not hand its keys off.
        cluster = build_cluster(quorum=QuorumConfig(n=1, r=1, w=1, sloppy=False),
                                hint_replay_interval_ms=None)
        client = seed_converged(cluster, [f"k{i}" for i in range(12)])
        victim = "n2"
        sole_keys = [key for key in cluster.key_universe()
                     if cluster.servers[victim].node.storage.has_key(key)]
        handed_off = cluster.decommission_node(victim)
        cluster.simulation.run_until_idle()
        assert victim not in cluster.servers
        assert victim not in cluster.ring.nodes()
        assert victim not in cluster.membership
        if sole_keys:
            assert handed_off >= len(sole_keys)
            for key in sole_keys:
                holders = [s for s in cluster.servers.values()
                           if s.node.storage.has_key(key)]
                assert holders, f"key {key!r} lost on decommission"

    def test_crashed_node_is_never_a_handoff_source(self):
        cluster = build_cluster(hint_replay_interval_ms=None)
        seed_converged(cluster, [f"k{i}" for i in range(8)])
        cluster.fail_node("n2")
        cluster.transport.trace_enabled = True
        cluster.join_node("n4")
        cluster.simulation.run_until_idle()
        handoffs = [m for m in cluster.transport.trace
                    if m.msg_type.value == "key_handoff"]
        assert handoffs, "live holders should still hand keys to the joiner"
        assert all(m.sender != "n2" for m in handoffs), \
            "a crashed node must never be the handoff source"
        # the joiner still got every key it now owns, from live holders
        for key in cluster.key_universe():
            if "n4" in cluster.placement.primary_replicas(key):
                assert cluster.servers["n4"].node.storage.has_key(key)

    def test_decommission_of_down_node_skips_handoff_and_purges_hints(self):
        cluster = build_cluster(hint_replay_interval_ms=40.0)
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=cluster.simulation.now + 10.0)
        cluster.fail_node("n3")
        client.get("k", lambda _r: client.put("k", "v2"))
        cluster.run(until=cluster.simulation.now + 10.0)
        assert sum(s.node.pending_hints() for s in cluster.servers.values()) > 0
        handed_off = cluster.decommission_node("n3")
        assert handed_off == 0  # a crashed disk cannot push its keys
        # hints for the removed node are purged everywhere
        assert sum(s.node.pending_hints() for s in cluster.servers.values()) == 0
        assert cluster.stat_totals()["pending_hints"] == 0

    def test_decommission_into_partition_refused(self):
        # Handing keys off into a partition would silently drop sole copies;
        # the graceful leave must refuse instead, leaving the ring intact.
        cluster = build_cluster(hint_replay_interval_ms=None)
        seed_converged(cluster, [f"k{i}" for i in range(6)])
        cluster.partitions.partition({"n1"}, {"n2", "n3"})
        with pytest.raises(Exception):
            cluster.decommission_node("n1")
        assert "n1" in cluster.servers
        assert "n1" in cluster.ring.nodes()
        assert cluster.membership.is_up("n1")
        cluster.partitions.heal()
        cluster.decommission_node("n1")      # now it succeeds
        assert "n1" not in cluster.servers

    def test_departed_node_stats_still_counted(self):
        cluster = build_cluster(hint_replay_interval_ms=None)
        seed_converged(cluster, ["a", "b", "c"])
        writes_before = cluster.stat_totals()["writes"]
        assert writes_before > 0
        victim = next(iter(sorted(cluster.servers)))
        victim_writes = cluster.servers[victim].node.stats["writes"]
        cluster.decommission_node(victim)
        cluster.simulation.run_until_idle()
        totals = cluster.stat_totals()
        assert totals["writes"] == writes_before
        if victim_writes:
            # the departed node's work survives in the totals
            live_writes = sum(s.node.stats["writes"] for s in cluster.servers.values())
            assert totals["writes"] == live_writes + victim_writes

    def test_cluster_still_serves_after_churn(self):
        cluster = build_cluster(hint_replay_interval_ms=None)
        seed_converged(cluster, ["a", "b"])
        cluster.join_node("n4")
        cluster.simulation.run_until_idle()
        cluster.decommission_node("n1")
        cluster.simulation.run_until_idle()
        outcome = {}
        client = cluster.client("reader")
        client.put("a", "after-churn", lambda r: outcome.setdefault("put", r))
        cluster.simulation.run_until_idle()
        client.get("a", lambda r: outcome.setdefault("get", r))
        cluster.drain()
        assert outcome["put"].coordinator in cluster.servers
        assert "after-churn" in map(str, outcome["get"].values)
