"""Concurrent per-range descents in one Merkle exchange (satellite of PR 5).

When a per-vnode digest comparison names several differing ranges, the
source opens every range's descent at once rather than walking them one
after another — their level messages interleave in flight.  The
``MerkleSyncStats.max_concurrent_ranges`` high-water mark is the observable
evidence, asserted here against both transports: the deterministic
simulator and the asyncio backend over real unix sockets.
"""

from __future__ import annotations

import asyncio

from repro.clocks import DVVMechanism, create
from repro.cluster import QuorumConfig
from repro.kvstore import ClientSession, SimulatedCluster
from repro.kvstore.asyncio_cluster import AsyncioCluster
from repro.network import FixedLatency

#: Enough keys that several of the 16 vnode ranges hold divergent data.
DIVERGENT_KEYS = 40


def diverge(node, keys=DIVERGENT_KEYS) -> None:
    """Write keys into one node's storage behind the others' backs."""
    client = ClientSession("divergent-writer")
    for index in range(keys):
        key = f"key-{index}"
        sibling = client.prepare_write(key, f"v{index}", None)
        node.local_write(key, None, sibling, client.client_id)


def test_simulator_descends_differing_ranges_concurrently():
    cluster = SimulatedCluster(
        DVVMechanism(),
        server_ids=("A", "B"),
        quorum=QuorumConfig(n=2, r=1, w=1),
        latency=FixedLatency(1.0),
        anti_entropy_interval_ms=None,
        seed=3,
    )
    diverge(cluster.servers["A"].node)
    assert cluster.merkle_stats.max_concurrent_ranges == 0

    cluster.servers["A"].start_merkle_sync_with("B")
    cluster.drain()

    # several ranges differed, and their descents overlapped in flight
    assert cluster.merkle_stats.partitions_differing >= 2
    assert cluster.merkle_stats.max_concurrent_ranges >= 2
    # the exchange finished: no descent left open, replicas agree
    engine = cluster.servers["A"].protocol.anti_entropy
    assert engine.open_range_count() == 0
    for index in range(DIVERGENT_KEYS):
        assert cluster.servers["B"].node.values_of(f"key-{index}") == [f"v{index}"]


def test_asyncio_backend_descends_differing_ranges_concurrently():
    async def scenario():
        cluster = AsyncioCluster(
            create("dvv"),
            server_ids=("A", "B"),
            quorum=QuorumConfig(n=2, r=1, w=1),
            anti_entropy_interval_ms=None,
            hint_replay_interval_ms=None,
        )
        async with cluster:
            diverge(cluster.servers["A"].node)
            assert cluster.merkle_stats.max_concurrent_ranges == 0

            cluster.servers["A"].start_merkle_sync_with("B")
            await cluster.converge(timeout_s=10.0)

            assert cluster.merkle_stats.partitions_differing >= 2
            assert cluster.merkle_stats.max_concurrent_ranges >= 2
            engine = cluster.servers["A"].protocol.anti_entropy
            assert engine.open_range_count() == 0

    asyncio.run(scenario())
