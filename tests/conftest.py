"""Shared pytest fixtures for the whole test suite.

Also makes the test suite runnable without an installed package by falling
back to the in-repo ``src`` layout when the ``repro`` import fails (useful on
machines where ``pip install -e .`` is not possible).
"""

from __future__ import annotations

import pathlib
import sys

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover - only on uninstalled checkouts
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.clocks import (
    CausalHistoryMechanism,
    ClientVVMechanism,
    DottedVVEMechanism,
    DVVMechanism,
    DVVSetMechanism,
    ServerVVMechanism,
    available,
    create,
)
from repro.core import CausalHistory, Dot, VersionVector
from repro.kvstore import ClientSession, SyncReplicatedStore


# --------------------------------------------------------------------------- #
# Markers
# --------------------------------------------------------------------------- #
def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "soak: long-running churn+skew+partition soak scenarios "
        "(deselected by default; run with -m soak)",
    )


def pytest_collection_modifyitems(config, items):
    """Keep soak runs out of the tier-1 suite unless explicitly requested."""
    if "soak" in (config.getoption("-m") or ""):
        return
    skip_soak = pytest.mark.skip(reason="soak test: run with -m soak")
    for item in items:
        if "soak" in item.keywords:
            item.add_marker(skip_soak)


# --------------------------------------------------------------------------- #
# Mechanism fixtures
# --------------------------------------------------------------------------- #
EXACT_MECHANISMS = ["dvv", "dvvset", "client_vv", "dotted_vve", "causal_history"]
INEXACT_MECHANISMS = ["server_vv", "client_vv_pruned_5", "client_vv_pruned_10"]
ALL_MECHANISMS = EXACT_MECHANISMS + INEXACT_MECHANISMS


@pytest.fixture(params=ALL_MECHANISMS)
def any_mechanism(request):
    """One fixture instantiation per registered mechanism under test."""
    return create(request.param)


@pytest.fixture(params=EXACT_MECHANISMS)
def exact_mechanism(request):
    """Mechanisms expected to agree with the causal-history ground truth."""
    return create(request.param)


@pytest.fixture
def dvv_mechanism():
    """The paper's mechanism."""
    return DVVMechanism()


@pytest.fixture
def server_vv_mechanism():
    """The Figure 1b baseline."""
    return ServerVVMechanism()


# --------------------------------------------------------------------------- #
# Clock value fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture
def empty_vv():
    """The zero version vector."""
    return VersionVector.empty()


@pytest.fixture
def sample_vv():
    """A small three-entry version vector."""
    return VersionVector({"A": 3, "B": 1, "C": 2})


@pytest.fixture
def sample_history():
    """A causal history with a distinguished event."""
    return CausalHistory(Dot("A", 3), [Dot("A", 1), Dot("A", 2), Dot("B", 1)])


# --------------------------------------------------------------------------- #
# Store fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture
def two_server_store(dvv_mechanism):
    """A two-replica synchronous store running DVVs (the Figure 1 topology)."""
    return SyncReplicatedStore(dvv_mechanism, server_ids=("A", "B"))


@pytest.fixture
def client_pair():
    """Two independent client sessions."""
    return ClientSession("c1"), ClientSession("c2")
