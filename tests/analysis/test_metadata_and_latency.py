"""Unit tests for metadata accounting and latency analysis."""

from __future__ import annotations

import pytest

from repro.analysis import (
    LatencyReport,
    MetadataReport,
    analyze_requests,
    compare_reports,
    measure_simulated_cluster,
    measure_sync_store,
)
from repro.clocks import ClientVVMechanism, DVVMechanism, create
from repro.kvstore import RequestRecord, SimulatedCluster
from repro.network import FixedLatency
from repro.workloads import WorkloadConfig, generate_workload, replay_trace


class TestMeasureSyncStore:
    def build_reports(self, clients=12, operations=80, seed=3):
        trace = generate_workload(WorkloadConfig(clients=clients, operations=operations,
                                                 seed=seed))
        reports = {}
        for name in ("dvv", "client_vv"):
            result = replay_trace(trace, create(name))
            result.store.converge()
            reports[name] = measure_sync_store(result.store)
        return reports

    def test_report_fields(self):
        reports = self.build_reports()
        report = reports["dvv"]
        assert report.mechanism == "dvv"
        assert report.keys >= 1
        assert report.total_entries > 0
        assert report.total_bytes > 0
        assert report.per_key_entries.mean > 0
        assert len(report.as_row()) == len(MetadataReport.table_headers())

    def test_dvv_smaller_than_client_vv(self):
        reports = self.build_reports()
        comparison = compare_reports(reports, baseline="client_vv", challenger="dvv")
        assert comparison["entries_ratio"] > 1.0
        assert comparison["bytes_ratio"] > 1.0

    def test_empty_store(self):
        from repro.kvstore import SyncReplicatedStore
        report = measure_sync_store(SyncReplicatedStore(DVVMechanism(), server_ids=("A",)))
        assert report.keys == 0
        assert report.total_entries == 0


class TestMeasureSimulatedCluster:
    def test_cluster_measurement(self):
        cluster = SimulatedCluster(DVVMechanism(), server_ids=("n1", "n2", "n3"),
                                   latency=FixedLatency(0.5),
                                   anti_entropy_interval_ms=None, seed=2)
        client = cluster.client("alice")
        client.put("k", "v1", lambda r: client.get("k"))
        cluster.drain()
        report = measure_simulated_cluster(cluster)
        assert report.keys == 1
        assert report.total_entries >= 1
        assert report.context_bytes is not None


class TestAnalyzeRequests:
    def make_records(self):
        return [
            RequestRecord("get", "k", "c1", started_at=0.0, finished_at=2.0, ok=True,
                          context_bytes=10),
            RequestRecord("get", "k", "c1", started_at=1.0, finished_at=5.0, ok=True,
                          context_bytes=10),
            RequestRecord("put", "k", "c1", started_at=2.0, finished_at=3.0, ok=True,
                          context_bytes=30),
            RequestRecord("put", "k", "c1", started_at=9.0, finished_at=9.5, ok=False),
        ]

    def test_report_contents(self):
        report = analyze_requests("dvv", self.make_records())
        assert report.requests == 3          # the failed one is excluded
        assert report.overall.mean == pytest.approx((2 + 4 + 1) / 3)
        assert set(report.by_operation) == {"get", "put"}
        assert report.by_operation["put"].mean == pytest.approx(1.0)
        assert report.mean_context_bytes == pytest.approx((10 + 10 + 30) / 3)
        assert report.throughput_per_s > 0
        assert len(report.as_row()) == len(LatencyReport.table_headers())

    def test_empty_records(self):
        report = analyze_requests("dvv", [])
        assert report.requests == 0
        assert report.throughput_per_s == 0.0

    def test_explicit_duration(self):
        report = analyze_requests("dvv", self.make_records(), duration_ms=1000.0)
        assert report.duration_ms == 1000.0
        assert report.throughput_per_s == pytest.approx(3.0)
