"""Unit tests for the correctness oracle."""

from __future__ import annotations

import pytest

from repro.analysis import CorrectnessReport, check_key, check_store
from repro.clocks import DVVMechanism, ServerVVMechanism, Sibling, create
from repro.core import CausalHistory, Dot
from repro.kvstore import ClientSession, SyncReplicatedStore, WriteLog
from repro.workloads import figure1_trace, replay_trace


def make_sibling(value, writer, seq, past=()):
    dot = Dot(writer, seq)
    return Sibling(value=value, origin_dot=dot, history=CausalHistory(dot, past), writer=writer)


class TestCheckKey:
    def build_log(self, *siblings):
        log = WriteLog()
        for sibling in siblings:
            log.append("k", sibling, "A", sibling.writer or "client")
        return log

    def test_exact_survival_is_correct(self):
        first = make_sibling("v1", "c1", 1)
        concurrent = make_sibling("v2", "c2", 1)
        log = self.build_log(first, concurrent)
        verdict = check_key("k", [first, concurrent], log)
        assert verdict.is_correct
        assert verdict.lost_updates == []
        assert verdict.sibling_surplus == 0
        assert verdict.sibling_deficit == 0

    def test_lost_update_detected(self):
        first = make_sibling("v1", "c1", 1)
        concurrent = make_sibling("v2", "c2", 1)
        log = self.build_log(first, concurrent)
        verdict = check_key("k", [concurrent], log)
        assert not verdict.is_correct
        assert verdict.lost_updates == [Dot("c1", 1)]
        assert verdict.sibling_deficit == 1

    def test_superseded_write_is_not_lost(self):
        first = make_sibling("v1", "c1", 1)
        second = make_sibling("v2", "c2", 1, past=first.history.events())
        log = self.build_log(first, second)
        verdict = check_key("k", [second], log)
        assert verdict.is_correct
        assert verdict.lost_updates == []

    def test_false_concurrency_detected(self):
        first = make_sibling("v1", "c1", 1)
        second = make_sibling("v2", "c2", 1, past=first.history.events())
        log = self.build_log(first, second)
        verdict = check_key("k", [first, second], log)
        assert not verdict.is_correct
        assert len(verdict.false_concurrency_pairs) == 1
        assert verdict.spurious_siblings == [Dot("c1", 1)]
        assert verdict.sibling_surplus == 1

    def test_session_superseded_classified_separately(self):
        first = make_sibling("v1", "c1", 1)
        second_same_client = make_sibling("v2", "c1", 2)   # concurrent per context
        log = self.build_log(first, second_same_client)
        verdict = check_key("k", [second_same_client], log)
        assert verdict.lost_updates == []
        assert verdict.session_superseded == [Dot("c1", 1)]
        assert verdict.is_correct


class TestCheckStore:
    def test_figure1_verdicts(self):
        dvv_report = check_store(replay_trace(figure1_trace(), DVVMechanism()).store)
        server_report = check_store(replay_trace(figure1_trace(), ServerVVMechanism()).store)
        assert dvv_report.is_correct
        assert not server_report.is_correct
        assert server_report.total_lost_updates >= 1

    def test_report_rows_and_headers_align(self):
        report = check_store(replay_trace(figure1_trace(), DVVMechanism()).store)
        assert len(report.as_row()) == len(CorrectnessReport.table_headers())
        assert report.keys_checked == 1
        assert report.lost_update_rate == 0.0

    def test_check_store_without_convergence(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A", "B"))
        client = ClientSession("c1")
        client.get(store, "k", server_id="A")
        client.put(store, "k", "v1", server_id="A")
        report = check_store(store, converge_first=False)
        assert report.keys_checked == 1
        # replica A holds the write; the (divergent) replica B is not consulted
        assert report.total_lost_updates == 0

    @pytest.mark.parametrize("name", ["dvv", "dvvset", "dotted_vve", "causal_history"])
    def test_exact_mechanisms_pass_on_figure1(self, name):
        report = check_store(replay_trace(figure1_trace(), create(name)).store)
        assert report.is_correct

    def test_empty_store_report(self):
        store = SyncReplicatedStore(DVVMechanism(), server_ids=("A",))
        report = check_store(store)
        assert report.keys_checked == 0
        assert report.is_correct
