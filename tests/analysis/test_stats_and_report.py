"""Unit tests for the statistics helpers and the table renderer."""

from __future__ import annotations

import pytest

from repro.analysis import percentile, print_table, ratio, render_kv, render_table, speedup, summarize
from repro.core import AnalysisError


class TestPercentile:
    def test_basic(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 10
        assert percentile(values, 0.5) == pytest.approx(5.5)

    def test_interpolation(self):
        assert percentile([1, 2], 0.25) == pytest.approx(1.25)

    def test_single_value(self):
        assert percentile([42], 0.9) == 42

    def test_errors(self):
        with pytest.raises(AnalysisError):
            percentile([], 0.5)
        with pytest.raises(AnalysisError):
            percentile([1], 1.5)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1, 2, 3, 4, 100])
        assert summary.count == 5
        assert summary.minimum == 1
        assert summary.maximum == 100
        assert summary.total == 110
        assert summary.mean == pytest.approx(22.0)
        assert summary.median == 3
        assert summary.p99 >= summary.p95 >= summary.median
        assert summary.as_dict()["count"] == 5

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize([])


class TestRatios:
    def test_ratio(self):
        assert ratio(10, 4) == 2.5
        assert ratio(10, 0) == 0.0

    def test_speedup(self):
        assert speedup(100, 20) == 5.0
        assert speedup(100, 0) == float("inf")
        assert speedup(0, 0) == 1.0


class TestRenderTable:
    def test_alignment_and_title(self):
        output = render_table(
            ["mechanism", "bytes"],
            [["dvv", 336], ["client_vv", 2535]],
            title="metadata",
        )
        lines = output.splitlines()
        assert lines[0] == "metadata"
        assert "mechanism" in lines[2]
        assert any("dvv" in line and "336" in line for line in lines)
        # numeric column is right aligned: both value columns end aligned
        dvv_line = next(line for line in lines if line.startswith("dvv"))
        client_line = next(line for line in lines if line.startswith("client_vv"))
        assert len(dvv_line) == len(client_line)

    def test_float_formatting_and_bools(self):
        output = render_table(["m", "v", "ok"], [["x", 1.23456, True]], float_digits=3)
        assert "1.235" in output
        assert "yes" in output

    def test_render_kv_and_print(self, capsys):
        block = render_kv([["keys", 3], ["bytes", 120]], title="totals")
        assert "keys" in block
        print_table(["a"], [[1]])
        assert "1" in capsys.readouterr().out
