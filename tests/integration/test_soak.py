"""Bounded soak runs: churn × skew × WAN partition flap, end to end.

The full matrix (every exact mechanism, long virtual duration, several WAN
flaps) is marked ``soak`` and deselected from the tier-1 run — CI runs it as
a separate job with ``-m soak``.  A single short smoke variant stays in the
default suite so the scenario itself can never silently rot.

The exit bar is the same everywhere: the cluster converges, the write-log
oracle finds no lost update and no false concurrency for exact mechanisms,
and the scheduled churn (join, decommission, WAN flaps) actually happened.
"""

from __future__ import annotations

import pytest

from repro.clocks import create
from repro.workloads import run_soak_scenario

EXACT = ["dvv", "dvvset", "causal_history", "dotted_vve"]


def assert_soak_invariants(report, mechanism_name: str) -> None:
    assert report.converged, f"{mechanism_name}: soak run failed to converge"
    assert report.lost_updates == 0, (
        f"{mechanism_name}: soak run lost {report.lost_updates} frontier writes"
    )
    assert report.false_concurrency == 0, (
        f"{mechanism_name}: soak run fabricated "
        f"{report.false_concurrency} falsely concurrent pairs"
    )
    # The churn schedule really ran: node joined, node left, WAN flapped.
    assert report.joined == ["n7"]
    assert report.departed == ["n1"]
    assert report.partition_flaps >= 1
    assert report.requests_completed > 0


class TestSoakSmoke:
    """Short soak kept in the default suite so the scenario cannot rot."""

    def test_short_soak_holds_invariants(self):
        report = run_soak_scenario(create("dvv"), seed=29, duration_ms=600.0,
                                   flaps=1)
        assert_soak_invariants(report, "dvv")


@pytest.mark.soak
class TestSoakLong:
    """The long matrix: every exact mechanism, more flaps, longer runs."""

    @pytest.mark.parametrize("mechanism_name", EXACT)
    @pytest.mark.parametrize("seed", [29, 31])
    def test_long_soak_holds_invariants(self, mechanism_name, seed):
        report = run_soak_scenario(create(mechanism_name), seed=seed,
                                   duration_ms=4000.0, flaps=3)
        assert_soak_invariants(report, mechanism_name)
        # A long skewed run must actually generate sibling pressure.
        assert report.max_sibling_count >= 2

    def test_long_soak_server_vv_loses_updates(self):
        """Control: the per-server VV baseline must show losses on a long
        soak — otherwise the oracle (or the workload) went soft."""
        report = run_soak_scenario(create("server_vv"), seed=29,
                                   duration_ms=4000.0, flaps=3)
        assert report.converged
        assert report.lost_updates > 0
