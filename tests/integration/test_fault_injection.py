"""Integration: fault injection on the message-passing cluster.

The transport can drop, duplicate and delay messages; the store's handlers
must be idempotent and the causality mechanisms must not be confused by
re-delivered state.  These tests run workloads under deliberately hostile
transport settings and assert that (a) the cluster still converges and (b) the
causal outcomes are identical to a clean run of the same seed.
"""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster
from repro.network import FixedLatency, UniformLatency
from repro.workloads import ClosedLoopConfig, run_closed_loop_workload


def run_workload(mechanism_name: str,
                 seed: int = 99,
                 loss: float = 0.0,
                 duplicates: float = 0.0,
                 latency=None):
    cluster = SimulatedCluster(
        create(mechanism_name),
        server_ids=("n1", "n2", "n3"),
        quorum=QuorumConfig(n=3, r=2, w=2),
        latency=latency or FixedLatency(0.5),
        loss_probability=loss,
        duplicate_probability=duplicates,
        anti_entropy_interval_ms=30.0,
        seed=seed,
    )
    config = ClosedLoopConfig(keys=("k1", "k2"), think_time_ms=4.0,
                              write_fraction=0.6, stop_at_ms=300.0)
    run_closed_loop_workload(cluster, client_count=4, config=config)
    return cluster


def final_values(cluster, key):
    reference = None
    for server in cluster.servers.values():
        values = sorted(map(repr, server.node.values_of(key)))
        if reference is None:
            reference = values
        else:
            assert values == reference, "replicas did not converge"
    return reference


class TestDuplicatedMessages:
    def test_duplicate_delivery_is_idempotent(self):
        noisy = run_workload("dvv", duplicates=0.3)
        assert noisy.transport.stats.duplicated > 0
        for key in ("k1", "k2"):
            # Replicas still converge and every request completed exactly once
            # (no request record is produced twice for the same msg_id).
            final_values(noisy, key)
        records = noisy.all_request_records()
        assert len(records) == len({(r.client_id, r.operation, r.started_at) for r in records})

    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset", "client_vv"])
    def test_all_mechanisms_tolerate_duplicates(self, mechanism_name):
        cluster = run_workload(mechanism_name, duplicates=0.25)
        for key in ("k1", "k2"):
            final_values(cluster, key)  # asserts convergence internally


class TestLossyNetwork:
    def test_store_converges_despite_message_loss(self):
        cluster = run_workload("dvv", loss=0.08)
        assert cluster.transport.stats.dropped_loss > 0
        for key in ("k1", "k2"):
            final_values(cluster, key)

    def test_jittery_latency_does_not_change_convergence(self):
        cluster = run_workload("dvv", latency=UniformLatency(0.1, 3.0))
        for key in ("k1", "k2"):
            final_values(cluster, key)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = run_workload("dvv", seed=123)
        second = run_workload("dvv", seed=123)
        assert first.transport.stats.sent == second.transport.stats.sent
        for key in ("k1", "k2"):
            assert final_values(first, key) == final_values(second, key)
        first_latencies = [round(r.latency_ms, 9) for r in first.all_request_records()]
        second_latencies = [round(r.latency_ms, 9) for r in second.all_request_records()]
        assert first_latencies == second_latencies

    def test_different_seed_different_schedule(self):
        # A stochastic latency model makes the simulation seed observable.
        first = run_workload("dvv", seed=1, latency=UniformLatency(0.1, 2.0))
        second = run_workload("dvv", seed=2, latency=UniformLatency(0.1, 2.0))
        assert ([round(r.latency_ms, 6) for r in first.all_request_records()]
                != [round(r.latency_ms, 6) for r in second.all_request_records()])
