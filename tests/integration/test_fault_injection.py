"""Integration: fault injection on the message-passing cluster.

The transport can drop, duplicate and delay messages; the store's handlers
must be idempotent and the causality mechanisms must not be confused by
re-delivered state.  These tests run workloads under deliberately hostile
transport settings and assert that (a) the cluster still converges and (b) the
causal outcomes are identical to a clean run of the same seed.

The second half targets the newer protocol paths: partitions healing in the
middle of a Merkle anti-entropy round, coordinators crashing while they hold
outstanding hints, and hint replay to a replica that rejoined with wiped
storage.
"""

from __future__ import annotations

import pytest

from repro.clocks import DVVMechanism, create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster
from repro.network import FixedLatency, UniformLatency
from repro.workloads import ClosedLoopConfig, run_closed_loop_workload


def run_workload(mechanism_name: str,
                 seed: int = 99,
                 loss: float = 0.0,
                 duplicates: float = 0.0,
                 latency=None):
    cluster = SimulatedCluster(
        create(mechanism_name),
        server_ids=("n1", "n2", "n3"),
        quorum=QuorumConfig(n=3, r=2, w=2),
        latency=latency or FixedLatency(0.5),
        loss_probability=loss,
        duplicate_probability=duplicates,
        anti_entropy_interval_ms=30.0,
        seed=seed,
    )
    config = ClosedLoopConfig(keys=("k1", "k2"), think_time_ms=4.0,
                              write_fraction=0.6, stop_at_ms=300.0)
    run_closed_loop_workload(cluster, client_count=4, config=config)
    return cluster


def final_values(cluster, key):
    reference = None
    for server in cluster.servers.values():
        values = sorted(map(repr, server.node.values_of(key)))
        if reference is None:
            reference = values
        else:
            assert values == reference, "replicas did not converge"
    return reference


class TestDuplicatedMessages:
    def test_duplicate_delivery_is_idempotent(self):
        noisy = run_workload("dvv", duplicates=0.3)
        assert noisy.transport.stats.duplicated > 0
        for key in ("k1", "k2"):
            # Replicas still converge and every request completed exactly once
            # (no request record is produced twice for the same msg_id).
            final_values(noisy, key)
        records = noisy.all_request_records()
        assert len(records) == len({(r.client_id, r.operation, r.started_at) for r in records})

    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset", "client_vv"])
    def test_all_mechanisms_tolerate_duplicates(self, mechanism_name):
        cluster = run_workload(mechanism_name, duplicates=0.25)
        for key in ("k1", "k2"):
            final_values(cluster, key)  # asserts convergence internally


class TestLossyNetwork:
    def test_store_converges_despite_message_loss(self):
        cluster = run_workload("dvv", loss=0.08)
        assert cluster.transport.stats.dropped_loss > 0
        for key in ("k1", "k2"):
            final_values(cluster, key)

    def test_jittery_latency_does_not_change_convergence(self):
        cluster = run_workload("dvv", latency=UniformLatency(0.1, 3.0))
        for key in ("k1", "k2"):
            final_values(cluster, key)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = run_workload("dvv", seed=123)
        second = run_workload("dvv", seed=123)
        assert first.transport.stats.sent == second.transport.stats.sent
        for key in ("k1", "k2"):
            assert final_values(first, key) == final_values(second, key)
        first_latencies = [round(r.latency_ms, 9) for r in first.all_request_records()]
        second_latencies = [round(r.latency_ms, 9) for r in second.all_request_records()]
        assert first_latencies == second_latencies

    def test_different_seed_different_schedule(self):
        # A stochastic latency model makes the simulation seed observable.
        first = run_workload("dvv", seed=1, latency=UniformLatency(0.1, 2.0))
        second = run_workload("dvv", seed=2, latency=UniformLatency(0.1, 2.0))
        assert ([round(r.latency_ms, 6) for r in first.all_request_records()]
                != [round(r.latency_ms, 6) for r in second.all_request_records()])


def build_quiet_cluster(seed=7, **kwargs):
    """A cluster with no background daemons: faults are injected by hand."""
    kwargs.setdefault("server_ids", ("n1", "n2", "n3"))
    kwargs.setdefault("quorum", QuorumConfig(n=3, r=2, w=2))
    kwargs.setdefault("latency", FixedLatency(0.5))
    kwargs.setdefault("anti_entropy_interval_ms", None)
    kwargs.setdefault("hint_replay_interval_ms", None)
    return SimulatedCluster(create("dvv"), seed=seed, **kwargs)


def seed_keys(cluster, keys, settle_ms=30.0):
    """Write one value per key and settle: with N=3/W=2 over three servers the
    put fan-out reaches every replica, so the cluster starts converged without
    needing an anti-entropy pass (which would stop the background daemons)."""
    client = cluster.client("seeder")
    for key in keys:
        client.put(key, f"{key}-v1")
    cluster.run(until=cluster.simulation.now + settle_ms)
    return client


class TestPartitionHealingMidAntiEntropy:
    def test_heal_mid_merkle_round_still_converges(self):
        cluster = build_quiet_cluster()
        client = seed_keys(cluster, [f"k{i}" for i in range(8)])

        # Diverge keys coordinated away from n3 while n3 is cut off (a GET
        # through a partitioned coordinator could not reach its R=2 quorum).
        divergers = [key for key in cluster.key_universe()
                     if cluster.placement.coordinator_for(key) != "n3"][:2]
        assert divergers
        cluster.partitions.partition({"n1", "n2"}, {"n3"})
        for key in divergers:
            client.get(key, lambda _r, k=key: client.put(k, f"{k}-late"))
        cluster.simulation.run_until_idle()

        # Start a Merkle round toward the partitioned node: the level-0
        # request is dropped at the sender, leaving a dangling session.
        cluster.start_exchange("n1", "n3")
        cluster.simulation.run_until_idle()
        assert cluster.transport.stats.dropped_partition > 0
        assert not cluster.is_converged()

        # Now start a round between the connected pair and heal the partition
        # mid-exchange: the first messages flow, the partition heals before
        # the next level, and later rounds finish the job without the stale
        # n1->n3 session corrupting anything.
        cluster.start_exchange("n1", "n2")
        cluster.run(until=cluster.simulation.now + 0.6)  # level-0 delivered
        cluster.partitions.heal()
        rounds = cluster.converge(max_rounds=20)
        assert cluster.is_converged()
        assert rounds >= 1
        merkle_transfers = sum(server.node.stats["merkle_syncs"]
                               for server in cluster.servers.values())
        assert merkle_transfers > 0

    def test_partition_cut_mid_round_then_heal(self):
        """A partition cutting an exchange after level 0 corrupts nothing."""
        cluster = build_quiet_cluster()
        client = seed_keys(cluster, [f"k{i}" for i in range(6)])
        # Diverge a key coordinated away from n3 while n3 is cut off.
        diverger = next(key for key in cluster.key_universe()
                        if cluster.placement.coordinator_for(key) != "n3")
        cluster.partitions.partition({"n1", "n2"}, {"n3"})
        client.get(diverger, lambda _r, k=diverger: client.put(k, f"{k}-late"))
        cluster.simulation.run_until_idle()
        cluster.partitions.heal()
        assert not cluster.is_converged()
        # Start an exchange toward n3 and cut the link again mid-round: the
        # level-0 request is delivered but the deeper levels are dropped.
        cluster.start_exchange("n1", "n3")
        cluster.run(until=cluster.simulation.now + 0.6)  # level-0 delivered
        cluster.partitions.partition({"n1", "n2"}, {"n3"})
        cluster.simulation.run_until_idle()              # rest of round dropped
        assert not cluster.is_converged()
        cluster.partitions.heal()
        cluster.converge(max_rounds=20)
        assert cluster.is_converged()


class TestCoordinatorCrashWithHints:
    def test_hints_survive_coordinator_restart_and_replay(self):
        """Hints are persisted in the storage layer: a coordinator crash no
        longer silently loses them — replay resumes after the restart."""
        cluster = build_quiet_cluster(hint_replay_interval_ms=30.0)
        keys = ["h1", "h2", "h3"]
        client = seed_keys(cluster, keys)

        cluster.fail_node("n3")
        for key in keys:
            client.get(key, lambda _r, k=key: client.put(k, f"{k}-while-down"))
        cluster.run(until=cluster.simulation.now + 25.0)

        holders = [server_id for server_id, server in cluster.servers.items()
                   if server.node.pending_hints() > 0]
        assert holders, "expected coordinators to hold hints for the down replica"
        total_hints = sum(server.node.stats["hints_stored"]
                          for server in cluster.servers.values())
        assert total_hints >= len(keys)

        # Crash every coordinator holding hints, then restart them: the
        # persisted hints are still there afterwards.
        for holder in holders:
            cluster.fail_node(holder)
        cluster.run(until=cluster.simulation.now + 10.0)
        for holder in holders:
            cluster.recover_node(holder)
            assert cluster.servers[holder].node.pending_hints() > 0

        # The victim comes back; the restarted holders' hints replay to it.
        cluster.recover_node("n3")
        cluster.run(until=cluster.simulation.now + 90.0)
        assert cluster.servers["n3"].node.stats["hint_replays"] >= len(keys)
        assert sum(server.node.pending_hints()
                   for server in cluster.servers.values()) == 0
        for key in keys:
            assert f"{key}-while-down" in map(str, cluster.servers["n3"].node.values_of(key))

        cluster.converge(max_rounds=20)
        assert cluster.is_converged()

    def test_wiped_holder_loses_hints_but_cluster_recovers(self):
        """A disk wipe on the holder loses the hints with the disk; the write
        still survives on the holder's peers and anti-entropy converges."""
        cluster = build_quiet_cluster(hint_replay_interval_ms=30.0)
        keys = ["h1", "h2"]
        client = seed_keys(cluster, keys)

        cluster.fail_node("n3")
        for key in keys:
            client.get(key, lambda _r, k=key: client.put(k, f"{k}-while-down"))
        cluster.run(until=cluster.simulation.now + 25.0)
        holders = [server_id for server_id, server in cluster.servers.items()
                   if server.node.pending_hints() > 0]
        assert holders

        # Wipe one holder's disk: its hints go with it.  The write itself
        # survives on the other live replica (W=2 reached it), so healing
        # still converges everyone onto the while-down values.
        wiped = holders[0]
        cluster.fail_node(wiped)
        cluster.run(until=cluster.simulation.now + 10.0)
        cluster.recover_node(wiped, wipe=True)
        assert cluster.servers[wiped].node.pending_hints() == 0

        cluster.recover_node("n3")
        cluster.converge(max_rounds=20)
        assert cluster.is_converged()
        for key in keys:
            values = {tuple(sorted(map(str, server.node.values_of(key))))
                      for server in cluster.servers.values()}
            assert len(values) == 1
            assert f"{key}-while-down" in values.pop()


def build_async_cluster(mechanism_name="dvv", sloppy=True, seed=7, **kwargs):
    """A five-server cluster in async (deadline-driven) request mode."""
    kwargs.setdefault("server_ids", ("n1", "n2", "n3", "n4", "n5"))
    kwargs.setdefault("latency", FixedLatency(0.5))
    kwargs.setdefault("anti_entropy_interval_ms", None)
    kwargs.setdefault("hint_replay_interval_ms", 25.0)
    kwargs.setdefault("replica_timeout_ms", 6.0)
    kwargs.setdefault("request_timeout_ms", 30.0)
    return SimulatedCluster(
        create(mechanism_name),
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=sloppy),
        request_mode="async",
        seed=seed,
        **kwargs,
    )


class TestSloppyQuorumWrites:
    """Acceptance criterion: with a primary partitioned away, sloppy mode
    completes W=2 writes that strict mode fails, and after healing all
    replicas converge to the same sibling set."""

    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset"])
    def test_sloppy_completes_what_strict_fails(self, mechanism_name):
        outcomes = {}
        for sloppy in (True, False):
            cluster = build_async_cluster(mechanism_name, sloppy=sloppy)
            key = "contested"
            client = cluster.client("writer")
            client.put(key, "base")
            cluster.run(until=cluster.simulation.now + 20.0)

            # Cut two of the key's three primaries off together; the
            # coordinator stays on the majority side with the client.
            primaries = cluster.placement.primary_replicas(key)
            minority = set(primaries[1:3])
            majority = {server for server in cluster.servers
                        if server not in minority}
            cluster.partitions.partition(minority, majority)

            client.get(key, lambda _r: client.put(key, "during-partition"))
            cluster.run(until=cluster.simulation.now + 300.0)
            put_records = [record for record in client.records
                           if record.operation == "put"][1:]
            assert put_records, "the partitioned write never finished"
            outcomes[sloppy] = (cluster, put_records[-1])

        sloppy_cluster, sloppy_record = outcomes[True]
        strict_cluster, strict_record = outcomes[False]
        assert sloppy_record.ok, "sloppy mode should complete the W=2 write"
        assert not strict_record.ok, "strict mode should fail the W=2 write"
        assert strict_record.error in ("quorum_unreachable", "request_timeout")

        # Sloppy mode parked the write on fallback nodes with hints naming
        # the unreachable primaries.
        fallback_hints = sum(server.node.pending_hints()
                             for server in sloppy_cluster.servers.values())
        assert fallback_hints > 0

        # After healing, hint replay + anti-entropy converge every replica
        # onto an identical sibling set containing the partitioned write.
        for cluster, record in ((sloppy_cluster, sloppy_record),
                                (strict_cluster, strict_record)):
            cluster.partitions.heal()
            cluster.run(until=cluster.simulation.now + 100.0)
            cluster.converge(max_rounds=30)
            assert cluster.is_converged()
        reference = None
        for server_id, server in sorted(sloppy_cluster.servers.items()):
            values = sorted(map(str, server.node.values_of("contested")))
            assert "during-partition" in values
            if reference is None:
                reference = values
            else:
                assert values == reference, f"{server_id} diverged: {values}"
        assert sum(server.node.pending_hints()
                   for server in sloppy_cluster.servers.values()) == 0

    def test_fallback_write_reaches_primary_via_hint_replay(self):
        """The Dynamo loop: fallback accepts with a hint, primary recovers,
        hint replay returns the data to the primary."""
        cluster = build_async_cluster("dvv")
        key = "handoff"
        client = cluster.client("writer")
        client.put(key, "base")
        cluster.run(until=cluster.simulation.now + 20.0)

        primaries = cluster.placement.primary_replicas(key)
        victim = primaries[1]
        cluster.fail_node(victim)
        client.get(key, lambda _r: client.put(key, "hinted"))
        cluster.run(until=cluster.simulation.now + 100.0)

        holders = {server_id: server.node.hints_for(victim)
                   for server_id, server in cluster.servers.items()
                   if server.node.hints_for(victim)}
        assert holders, "expected a fallback (or the coordinator) to hold a hint"
        assert all(hint.key == key for hints in holders.values() for hint in hints)
        assert victim not in holders

        cluster.recover_node(victim)
        cluster.run(until=cluster.simulation.now + 100.0)
        assert "hinted" in map(str, cluster.servers[victim].node.values_of(key))
        assert cluster.servers[victim].node.stats["hint_replays"] >= 1
        assert sum(server.node.pending_hints()
                   for server in cluster.servers.values()) == 0


class TestHintReplayToWipedNode:
    def test_wiped_rejoin_is_repopulated_by_hint_replay(self):
        cluster = build_quiet_cluster(hint_replay_interval_ms=20.0)
        keys = ["w1", "w2"]
        client = seed_keys(cluster, keys)

        cluster.fail_node("n3")
        for key in keys:
            client.get(key, lambda _r, k=key: client.put(k, f"{k}-hinted"))
        cluster.run(until=cluster.simulation.now + 25.0)
        pending_before = sum(server.node.pending_hints()
                             for server in cluster.servers.values())
        assert pending_before >= len(keys)

        # The victim rejoins with wiped storage; hint replay (nudged by the
        # membership listener and driven by the daemon) repopulates it.
        cluster.recover_node("n3", wipe=True)
        assert cluster.servers["n3"].node.storage.keys() == []
        cluster.run(until=cluster.simulation.now + 80.0)

        replays = cluster.servers["n3"].node.stats["hint_replays"]
        assert replays >= len(keys)
        for key in keys:
            assert f"{key}-hinted" in map(str, cluster.servers["n3"].node.values_of(key))
        # Acked hints are cleared, and replays were counted separately from
        # ordinary merges on the receiving node.
        assert sum(server.node.pending_hints()
                   for server in cluster.servers.values()) == 0
        cluster.converge(max_rounds=20)
        assert cluster.is_converged()
