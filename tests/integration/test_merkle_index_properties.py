"""Property tests: the incremental Merkle index always matches a rebuild.

The incremental index subsystem's core invariant is that a node's
write-maintained hash tree is indistinguishable from one rebuilt from scratch
over its current storage — for **every** mutation path.  These tests drive
randomized churn with fault injection (crash-restart, wiped recovery,
partitions and heals, hint replay, Merkle-delta transfers, read repair, join
handoff) and after every step compare each live node's incremental root
digest against ``MerkleTree.for_node`` on the same storage.  Any write path
that forgets to go through the mutation listener — or any staleness bug in
the dirty-bucket bookkeeping — shows up as a digest mismatch at the first
checkpoint after it fires.
"""

from __future__ import annotations

import random

import pytest

from repro.clocks import create
from repro.cluster import QuorumConfig
from repro.kvstore import MerkleTree, SimulatedCluster
from repro.network import FixedLatency

KEYS = ("alpha", "beta", "gamma", "delta")
SERVERS = ("n1", "n2", "n3")


def build_cluster(mechanism_name: str, seed: int, **kwargs) -> SimulatedCluster:
    kwargs.setdefault("server_ids", SERVERS)
    kwargs.setdefault("quorum", QuorumConfig(n=3, r=2, w=2))
    kwargs.setdefault("latency", FixedLatency(0.5))
    kwargs.setdefault("anti_entropy_interval_ms", None)
    kwargs.setdefault("hint_replay_interval_ms", 20.0)
    return SimulatedCluster(create(mechanism_name), seed=seed, **kwargs)


def assert_index_matches_rebuild(cluster: SimulatedCluster, context: str = "") -> None:
    """Every live node's incremental root digest equals a from-scratch rebuild."""
    for server_id, server in sorted(cluster.servers.items()):
        index = server.node.merkle_index
        assert index is not None, f"{server_id} lost its Merkle index ({context})"
        rebuilt = MerkleTree.for_node(server.node,
                                      fanout=cluster.merkle_fanout,
                                      depth=cluster.merkle_depth)
        assert index.root_digest == rebuilt.root_digest, (
            f"{server_id}: incremental root diverged from rebuild ({context}); "
            f"index keys={index.keys()} storage keys={server.node.storage.keys()}"
        )


class TestIndexEqualsRebuildUnderChurn:
    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset", "causal_history"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_churn_with_fault_injection(self, mechanism_name, seed):
        cluster = build_cluster(mechanism_name, seed)
        rng = random.Random(seed * 6007 + sum(map(ord, mechanism_name)))
        clients = [cluster.client(f"c{index}") for index in range(3)]
        crashed = None
        counter = 0

        for step in range(40):
            action = rng.choice(
                ["put", "put", "put", "get", "partition", "heal",
                 "crash", "recover", "sync"]
            )
            if action == "put":
                client = rng.choice(clients)
                key = rng.choice(KEYS)
                counter += 1
                value = f"{client.client_id}-v{counter}"
                client.get(key, lambda _r, c=client, k=key, v=value: c.put(k, v))
            elif action == "get":
                rng.choice(clients).get(rng.choice(KEYS))
            elif action == "partition":
                loner = rng.choice(SERVERS)
                cluster.partitions.partition(
                    {loner}, {node for node in SERVERS if node != loner}
                )
            elif action == "heal":
                cluster.partitions.heal()
            elif action == "crash" and crashed is None:
                crashed = rng.choice(SERVERS)
                cluster.fail_node(crashed)
            elif action == "recover" and crashed is not None:
                # crash-restart (index rebuilt from surviving storage) or
                # disk wipe (index emptied with the disk)
                cluster.recover_node(crashed, wipe=rng.random() < 0.4)
                crashed = None
            elif action == "sync":
                cluster.run_anti_entropy_round(settle=False)
            cluster.run(until=cluster.simulation.now + rng.uniform(2.0, 10.0))
            assert_index_matches_rebuild(cluster, context=f"step {step}: {action}")

        cluster.partitions.heal()
        if crashed is not None:
            cluster.recover_node(crashed)
        cluster.drain()
        cluster.converge(max_rounds=40)
        assert cluster.is_converged()
        assert_index_matches_rebuild(cluster, context="after convergence")

    def test_hint_replay_to_wiped_node_keeps_index_current(self):
        """Hint replay repopulates a wiped disk *through the index listener*."""
        cluster = build_cluster("dvv", seed=11)
        client = cluster.client("writer")
        for key in KEYS:
            client.put(key, f"{key}-v1")
        cluster.run(until=cluster.simulation.now + 30.0)
        cluster.fail_node("n2")
        for key in KEYS:
            client.get(key, lambda _r, k=key: client.put(k, f"{k}-v2"))
        cluster.run(until=cluster.simulation.now + 30.0)
        cluster.recover_node("n2", wipe=True)
        assert_index_matches_rebuild(cluster, context="right after wipe")
        cluster.drain()
        assert cluster.servers["n2"].node.stats["hint_replays"] > 0
        assert_index_matches_rebuild(cluster, context="after hint replay")
        cluster.converge(max_rounds=40)
        assert_index_matches_rebuild(cluster, context="after convergence")

    def test_join_handoff_feeds_the_newcomers_index(self):
        """KEY_HANDOFF ingestion lands in the joiner's (fresh) index."""
        cluster = build_cluster("dvv", seed=13, hint_replay_interval_ms=None)
        client = cluster.client("writer")
        for index in range(12):
            client.put(f"key-{index}", f"v{index}")
        cluster.simulation.run_until_idle()
        handed_off = cluster.join_node("n4")
        cluster.simulation.run_until_idle()
        assert handed_off > 0
        assert cluster.servers["n4"].node.stats["handoffs"] > 0
        assert_index_matches_rebuild(cluster, context="after join handoff")

    def test_decommission_handoff_feeds_survivor_indexes(self):
        cluster = build_cluster("dvv", seed=17, hint_replay_interval_ms=None,
                                quorum=QuorumConfig(n=1, r=1, w=1))
        client = cluster.client("writer")
        for index in range(12):
            client.put(f"key-{index}", f"v{index}")
        cluster.simulation.run_until_idle()
        cluster.decommission_node("n2")
        cluster.simulation.run_until_idle()
        assert_index_matches_rebuild(cluster, context="after decommission")

    def test_read_repair_path_keeps_index_current(self):
        """Batched READ_REPAIR merges flow through the mutation listener."""
        cluster = build_cluster("dvv", seed=19, hint_replay_interval_ms=None,
                                quorum=QuorumConfig(n=3, r=3, w=1))
        client = cluster.client("writer")
        for key in KEYS:
            client.put(key, f"{key}-v1")
        cluster.run(until=cluster.simulation.now + 20.0)
        for key in KEYS:
            client.get(key)   # R=3 reads notice and repair stale replicas
        cluster.drain()
        assert_index_matches_rebuild(cluster, context="after read repair")

    def test_rebuild_maintenance_mode_has_no_index(self):
        cluster = build_cluster("dvv", seed=23, merkle_maintenance="rebuild",
                                hint_replay_interval_ms=None)
        client = cluster.client("writer")
        client.put("k", "v1")
        cluster.drain()
        assert all(server.node.merkle_index is None
                   for server in cluster.servers.values())
        cluster.run_anti_entropy_round()
        assert cluster.is_converged()
        # the rebuild cost is visible in the maintenance counters instead
        totals = cluster.stat_totals()
        assert totals["full_rebuilds"] > 0
