"""Integration tests: vnode durability edges and per-range anti-entropy.

The vnode-scoped layout introduces failure granularities the whole-node model
could not express: a single partition's slice of a disk dying while the rest
survives, a crash-restart that only pays index rebuilds for occupied vnodes,
and a handoff landing on a node that already holds part of the moved range.
These tests drive them through the simulated cluster, and pin the two
structural properties of the refactor:

* the union of a node's per-vnode root digests equals the whole-node digest
  of a from-scratch rebuild, after randomized churn (any range-routing bug
  shows up as a digest mismatch);
* moving a vnode's keys between nodes re-hashes O(1) states, because the
  maintained fingerprints travel with the handoff.
"""

from __future__ import annotations

import random

import pytest

from repro.clocks import create
from repro.cluster import QuorumConfig
from repro.kvstore import MerkleTree, SimulatedCluster
from repro.kvstore.merkle import state_fingerprint
from repro.network import FixedLatency

SERVERS = ("n1", "n2", "n3")


def build_cluster(seed: int, **kwargs) -> SimulatedCluster:
    kwargs.setdefault("server_ids", SERVERS)
    kwargs.setdefault("quorum", QuorumConfig(n=3, r=2, w=2))
    kwargs.setdefault("latency", FixedLatency(0.5))
    kwargs.setdefault("anti_entropy_interval_ms", None)
    kwargs.setdefault("hint_replay_interval_ms", None)
    return SimulatedCluster(create("dvv"), seed=seed, **kwargs)


def assert_vnode_roots_match_rebuild(cluster: SimulatedCluster,
                                     context: str = "") -> None:
    """Per-range roots and their union both equal from-scratch rebuilds."""
    for server_id, server in sorted(cluster.servers.items()):
        index = server.node.merkle_index
        assert index is not None, f"{server_id} lost its index ({context})"
        union = {}
        for partition_id in index.partition_ids():
            expected = MerkleTree(
                {key: state_fingerprint(server.node.mechanism, state)
                 for key, state in server.node.storage.vnode_items(partition_id)},
                fanout=index.fanout, depth=index.depth,
            ).root_digest
            assert index.partition_root(partition_id) == expected, (
                f"{server_id} partition {partition_id}: per-range root "
                f"diverged from rebuild ({context})"
            )
            union.update(index.index_for(partition_id)._fingerprints)
        whole_node = MerkleTree.for_node(server.node, fanout=index.fanout,
                                         depth=index.depth).root_digest
        assert MerkleTree(union, fanout=index.fanout,
                          depth=index.depth).root_digest == whole_node, (
            f"{server_id}: union of per-vnode digests diverged from the "
            f"whole-node digest ({context})"
        )
        assert index.root_digest == whole_node


def populate(cluster: SimulatedCluster, count: int = 24) -> list:
    client = cluster.client("writer")
    keys = [f"key-{i}" for i in range(count)]
    for key in keys:
        client.put(key, f"{key}-v1")
    cluster.simulation.run_until_idle()
    return keys


class TestUnionDigestProperty:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_union_of_vnode_roots_survives_randomized_churn(self, seed):
        cluster = build_cluster(seed, hint_replay_interval_ms=20.0)
        rng = random.Random(seed * 7177)
        clients = [cluster.client(f"c{index}") for index in range(3)]
        keys = [f"key-{i}" for i in range(12)]
        crashed = None
        counter = 0

        for step in range(30):
            action = rng.choice(["put", "put", "put", "get", "crash",
                                 "recover", "sync"])
            if action == "put":
                client = rng.choice(clients)
                key = rng.choice(keys)
                counter += 1
                value = f"{client.client_id}-v{counter}"
                client.get(key, lambda _r, c=client, k=key, v=value: c.put(k, v))
            elif action == "get":
                rng.choice(clients).get(rng.choice(keys))
            elif action == "crash" and crashed is None:
                crashed = rng.choice(SERVERS)
                cluster.fail_node(crashed)
            elif action == "recover" and crashed is not None:
                if rng.random() < 0.3:
                    # partial disk loss: one vnode's slice dies
                    victim = rng.randrange(len(cluster.partition_map))
                    cluster.recover_node(crashed, wipe_partitions=[victim])
                else:
                    cluster.recover_node(crashed, wipe=rng.random() < 0.4)
                crashed = None
            elif action == "sync":
                cluster.run_anti_entropy_round(settle=False)
            cluster.run(until=cluster.simulation.now + rng.uniform(2.0, 10.0))
            assert_vnode_roots_match_rebuild(cluster,
                                             context=f"step {step}: {action}")

        if crashed is not None:
            cluster.recover_node(crashed)
        cluster.drain()
        cluster.converge(max_rounds=40)
        assert cluster.is_converged()
        assert_vnode_roots_match_rebuild(cluster, context="after convergence")


class TestVnodeDurabilityEdges:
    def test_wiping_one_vnode_spares_the_others(self):
        cluster = build_cluster(seed=5)
        keys = populate(cluster)
        node = cluster.servers["n2"].node
        occupied = [pid for pid in node.storage.vnode_ids()
                    if node.storage.vnode_len(pid) > 0]
        victim = occupied[0]
        lost = set(node.storage.vnode_keys(victim))
        survivors = set(node.storage.keys()) - lost
        assert lost and survivors

        cluster.fail_node("n2")
        cluster.recover_node("n2", wipe_partitions=[victim])
        assert set(node.storage.keys()) == survivors
        assert_vnode_roots_match_rebuild(cluster, context="after partial wipe")

        # anti-entropy notices exactly the dead range and repopulates it
        before = cluster.merkle_stats.partitions_differing
        cluster.converge(max_rounds=20)
        assert cluster.is_converged()
        assert cluster.merkle_stats.partitions_differing > before
        assert set(node.storage.keys()) == set(keys)

    def test_partial_wipe_confines_transfers_to_the_lost_range(self):
        cluster = build_cluster(seed=7)
        populate(cluster)
        cluster.converge(max_rounds=10)
        node = cluster.servers["n1"].node
        occupied = [pid for pid in node.storage.vnode_ids()
                    if node.storage.vnode_len(pid) > 0]
        victim = occupied[-1]
        lost = node.storage.vnode_keys(victim)

        cluster.fail_node("n1")
        cluster.recover_node("n1", wipe_partitions=[victim])
        transferred_before = cluster.merkle_stats.keys_transferred
        cluster.run_anti_entropy_round()
        # only the dead range's keys travel — both directions of the exchange
        # for one wiped range are bounded by 2x its key count per peer pair
        transferred = cluster.merkle_stats.keys_transferred - transferred_before
        assert 0 < transferred <= 2 * len(lost) * (len(SERVERS) - 1)

    def test_crash_restart_rebuilds_only_occupied_vnodes(self):
        cluster = build_cluster(seed=9)
        populate(cluster, count=8)
        node = cluster.servers["n3"].node
        occupied = sum(1 for pid in node.storage.vnode_ids()
                       if node.storage.vnode_len(pid) > 0)
        assert 0 < occupied < len(cluster.partition_map)
        before = node.stats["full_rebuilds"]
        cluster.fail_node("n3")
        cluster.recover_node("n3")            # restart, disk intact
        assert node.stats["full_rebuilds"] == before + occupied
        assert_vnode_roots_match_rebuild(cluster, context="after restart")


class TestHandoffFingerprintTransfer:
    def test_join_handoff_imports_digests_instead_of_hashing(self):
        cluster = build_cluster(seed=11)
        populate(cluster)
        cluster.converge(max_rounds=10)
        totals = cluster.stat_totals()
        hashed_before = totals["keys_hashed"]
        imported_before = totals["fingerprints_imported"]

        handed_off = cluster.join_node("n4")
        cluster.simulation.run_until_idle()
        assert handed_off > 0

        totals = cluster.stat_totals()
        # the moved range's states arrive with maintained digests: nothing is
        # re-fingerprinted on either side
        assert totals["keys_hashed"] == hashed_before
        assert totals["fingerprints_imported"] - imported_before >= handed_off
        assert cluster.servers["n4"].node.stats["handoffs"] > 0
        assert_vnode_roots_match_rebuild(cluster, context="after join")

    def test_handoff_onto_a_node_already_holding_the_range_is_free(self):
        # decommissioning pushes each key to its remaining replica homes,
        # which (converged, n=3-of-3) already hold identical states: equal
        # fingerprints prove the merge is a no-op and no state is re-hashed
        cluster = build_cluster(seed=13)
        populate(cluster)
        cluster.converge(max_rounds=10)
        totals = cluster.stat_totals()
        hashed_before = totals["keys_hashed"]

        cluster.decommission_node("n2")
        cluster.simulation.run_until_idle()

        totals = cluster.stat_totals()
        assert totals["keys_hashed"] == hashed_before
        assert_vnode_roots_match_rebuild(cluster, context="after decommission")
        cluster.converge(max_rounds=10)
        assert cluster.is_converged()
