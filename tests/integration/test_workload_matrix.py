"""Integration: identical synthetic workloads replayed under every mechanism,
checking both the correctness claims and the metadata-size claims end to end.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_store, compare_reports, measure_sync_store
from repro.clocks import create
from repro.workloads import WorkloadConfig, generate_workload, replay_trace

WORKLOAD = WorkloadConfig(
    clients=24,
    servers=("A", "B", "C"),
    keys=3,
    operations=240,
    stale_read_probability=0.35,
    blind_write_probability=0.05,
    seed=2012,                      # the paper's year, for luck and determinism
)


@pytest.fixture(scope="module")
def trace():
    return generate_workload(WORKLOAD)


@pytest.fixture(scope="module")
def results(trace):
    names = ["dvv", "dvvset", "client_vv", "client_vv_pruned_5", "server_vv",
             "dotted_vve", "causal_history"]
    out = {}
    for name in names:
        replay = replay_trace(trace, create(name))
        replay.store.converge()
        out[name] = replay
    return out


class TestCorrectnessMatrix:
    @pytest.mark.parametrize("name", ["dvv", "dvvset", "client_vv", "dotted_vve",
                                      "causal_history"])
    def test_exact_mechanisms_are_flawless(self, results, name):
        report = check_store(results[name].store)
        assert report.total_lost_updates == 0
        assert report.total_false_concurrency == 0

    def test_server_vv_loses_updates(self, results):
        report = check_store(results["server_vv"].store)
        assert report.total_lost_updates > 0

    def test_pruned_client_vv_misbehaves(self, results):
        report = check_store(results["client_vv_pruned_5"].store)
        assert report.total_lost_updates + report.total_false_concurrency > 0

    def test_all_replicas_converge(self, results):
        for replay in results.values():
            assert replay.store.is_converged()


class TestMetadataMatrix:
    def test_dvv_metadata_much_smaller_than_client_vv(self, results):
        reports = {name: measure_sync_store(replay.store) for name, replay in results.items()}
        ratio = compare_reports(reports, baseline="client_vv", challenger="dvv")
        assert ratio["entries_ratio"] > 1.5
        assert ratio["bytes_ratio"] > 1.5

    def test_dvvset_is_the_most_compact_exact_mechanism(self, results):
        reports = {name: measure_sync_store(replay.store) for name, replay in results.items()}
        exact = ["dvv", "dvvset", "client_vv", "dotted_vve", "causal_history"]
        smallest = min(exact, key=lambda name: reports[name].total_bytes)
        assert smallest == "dvvset"

    def test_causal_history_is_the_largest(self, results):
        reports = {name: measure_sync_store(replay.store) for name, replay in results.items()}
        largest = max(reports, key=lambda name: reports[name].total_bytes)
        assert largest == "causal_history"

    def test_dvv_per_key_entries_bounded_by_replication_degree(self, results):
        store = results["dvv"].store
        servers = len(WORKLOAD.servers)
        for key in store.write_log.keys():
            replica = store.replicas_for(key)[0]
            siblings = len(store.siblings(key, replica))
            entries = store.node(replica).metadata_entries(key)
            assert entries <= siblings * (servers + 1)

    def test_client_vv_per_key_entries_track_number_of_writers(self, results):
        store = results["client_vv"].store
        # at least one key accumulated far more entries than the replica count
        assert store.max_metadata_entries_per_key() > len(WORKLOAD.servers) + 1
