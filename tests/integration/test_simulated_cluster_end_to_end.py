"""Integration: full message-passing cluster runs (quorums, repair, partitions,
failures, latency) under the paper's mechanism and its baselines.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_requests, measure_simulated_cluster
from repro.clocks import ClientVVMechanism, DVVMechanism, create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster
from repro.network import FixedLatency, SizeDependentLatency
from repro.workloads import ClosedLoopConfig, run_closed_loop_workload


def build_cluster(mechanism, seed=0, latency=None, **kwargs):
    return SimulatedCluster(
        mechanism,
        server_ids=("n1", "n2", "n3"),
        latency=latency or FixedLatency(0.5),
        quorum=kwargs.pop("quorum", QuorumConfig(n=3, r=2, w=2)),
        anti_entropy_interval_ms=kwargs.pop("anti_entropy_interval_ms", 40.0),
        seed=seed,
        **kwargs,
    )


class TestClosedLoopWorkloads:
    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset", "client_vv", "server_vv"])
    def test_workload_completes_under_every_mechanism(self, mechanism_name):
        cluster = build_cluster(create(mechanism_name), seed=7)
        config = ClosedLoopConfig(keys=("k1", "k2"), think_time_ms=4.0,
                                  write_fraction=0.5, stop_at_ms=400.0)
        run_closed_loop_workload(cluster, client_count=4, config=config)
        records = cluster.all_request_records()
        assert len(records) > 20
        assert all(record.ok for record in records)
        report = analyze_requests(mechanism_name, records)
        assert report.overall.mean > 0

    def test_replicas_converge_after_drain(self):
        cluster = build_cluster(DVVMechanism(), seed=9)
        config = ClosedLoopConfig(keys=("hot",), think_time_ms=3.0,
                                  write_fraction=0.7, stop_at_ms=300.0)
        run_closed_loop_workload(cluster, client_count=5, config=config)
        fingerprints = {
            server_id: frozenset(s.origin_dot for s in server.node.siblings_of("hot"))
            for server_id, server in cluster.servers.items()
        }
        assert len(set(fingerprints.values())) == 1

    def test_message_loss_does_not_stall_the_store(self):
        cluster = build_cluster(DVVMechanism(), seed=11, loss_probability=0.05,
                                quorum=QuorumConfig(n=3, r=1, w=1))
        config = ClosedLoopConfig(keys=("k",), think_time_ms=5.0,
                                  write_fraction=0.5, stop_at_ms=300.0)
        run_closed_loop_workload(cluster, client_count=3, config=config)
        records = cluster.all_request_records()
        assert len(records) > 5


class TestPartitionsAndFailures:
    def test_writes_during_partition_merge_afterwards(self):
        cluster = build_cluster(DVVMechanism(), seed=13, quorum=QuorumConfig(n=3, r=1, w=1))
        alice = cluster.client("alice")
        bob = cluster.client("bob")

        servers = sorted(cluster.servers)
        # Alice can only reach the first server, Bob only the last two.
        cluster.partitions.partition({servers[0], alice.address},
                                     {servers[1], servers[2], bob.address})
        alice_coordinator = servers[0]
        bob_coordinator = servers[1]

        # Route around the placement service: send directly to reachable nodes.
        from repro.network.message import Message, MessageType
        alice_sibling = alice.session.prepare_write("k", "from-alice", None)
        cluster.transport.send(Message(
            sender=alice.address, receiver=alice_coordinator,
            msg_type=MessageType.COORDINATE_PUT,
            payload={"key": "k", "sibling": alice_sibling, "context": None,
                     "client_id": "alice"},
            size_bytes=32))
        bob_sibling = bob.session.prepare_write("k", "from-bob", None)
        cluster.transport.send(Message(
            sender=bob.address, receiver=bob_coordinator,
            msg_type=MessageType.COORDINATE_PUT,
            payload={"key": "k", "sibling": bob_sibling, "context": None,
                     "client_id": "bob"},
            size_bytes=32))
        cluster.run(until=100)

        cluster.partitions.heal()
        cluster.run(until=600)
        cluster.drain()

        values = {
            server_id: sorted(server.node.values_of("k"))
            for server_id, server in cluster.servers.items()
        }
        # After healing and anti-entropy every replica holds both concurrent writes.
        assert all(vals == ["from-alice", "from-bob"] for vals in values.values()), values

    def test_node_failure_and_recovery(self):
        cluster = build_cluster(DVVMechanism(), seed=17, quorum=QuorumConfig(n=3, r=2, w=2))
        client = cluster.client("alice")
        client.put("k", "v1")
        cluster.run(until=50)

        victim = cluster.placement.primary_replicas("k")[1]
        cluster.fail_node(victim)
        client.get("k", lambda r: client.put("k", "v2"))
        cluster.run(until=150)

        cluster.recover_node(victim)
        cluster.run(until=800)
        cluster.drain()
        assert cluster.servers[victim].node.values_of("k") == ["v2"]


class TestLatencyComparison:
    def test_metadata_size_shows_up_in_latency_and_bytes(self):
        """The E4 effect end-to-end: same workload, DVV requests carry less
        metadata and finish faster than per-client-VV requests."""
        def run(mechanism):
            cluster = build_cluster(
                mechanism, seed=23,
                latency=SizeDependentLatency(base=FixedLatency(0.2), bytes_per_ms=400.0),
                anti_entropy_interval_ms=60.0,
            )
            config = ClosedLoopConfig(keys=("hot",), think_time_ms=3.0,
                                      write_fraction=0.6, stop_at_ms=500.0)
            run_closed_loop_workload(cluster, client_count=8, config=config)
            report = analyze_requests(cluster.mechanism.name, cluster.all_request_records())
            meta = measure_simulated_cluster(cluster)
            return report, meta, cluster.transport.stats.bytes_sent

        dvv_report, dvv_meta, dvv_bytes = run(DVVMechanism())
        cvv_report, cvv_meta, cvv_bytes = run(ClientVVMechanism())

        assert cvv_meta.total_bytes > dvv_meta.total_bytes
        assert cvv_bytes > dvv_bytes
        assert cvv_report.overall.mean > dvv_report.overall.mean
