"""Property-style randomized churn tests for the simulated cluster.

Two generalized properties, checked over random interleavings of client
writes, partitions, node crash/recover (optionally with wiped storage) and
anti-entropy rounds:

* **Convergence** — once partitions heal, crashed nodes recover and enough
  anti-entropy rounds run, every replica must store the identical sibling set
  for every key, under *every* registered causality mechanism (even the
  inexact ones: they may lose or over-report concurrency, but replicas must
  still agree with each other).
* **No lost concurrent updates** — the paper's Figure 1 criterion,
  generalized: when several clients read the same state and write
  concurrently, DVV and DVVSet must preserve every one of those writes as a
  sibling until a later read-modify-write resolves them, no matter what
  churn (replica crash, wiped recovery, partitions) happens in between.
"""

from __future__ import annotations

import random

import pytest

from repro.clocks import available, create
from repro.cluster import QuorumConfig
from repro.kvstore import SimulatedCluster
from repro.network import FixedLatency

KEYS = ("alpha", "beta")
SERVERS = ("n1", "n2", "n3")


def build_cluster(mechanism_name: str, seed: int) -> SimulatedCluster:
    return SimulatedCluster(
        create(mechanism_name),
        server_ids=SERVERS,
        quorum=QuorumConfig(n=3, r=2, w=2),
        latency=FixedLatency(0.5),
        anti_entropy_interval_ms=None,   # sync happens only when the schedule says so
        hint_replay_interval_ms=20.0,
        seed=seed,
    )


def settle(cluster: SimulatedCluster, ms: float = 25.0) -> None:
    """Advance bounded virtual time (the hint daemon never lets the queue idle)."""
    cluster.run(until=cluster.simulation.now + ms)


def assert_identical_sibling_sets(cluster: SimulatedCluster) -> None:
    for key in cluster.key_universe():
        reference = None
        for server_id, server in sorted(cluster.servers.items()):
            values = sorted(map(repr, server.node.values_of(key)))
            if reference is None:
                reference = values
            else:
                assert values == reference, (
                    f"replica {server_id} disagrees on {key!r}: {values} != {reference}"
                )


def random_churn_run(cluster: SimulatedCluster, rng: random.Random, steps: int = 35) -> None:
    """Drive a random interleaving of puts, partitions, crashes and syncs."""
    clients = [cluster.client(f"c{index}") for index in range(3)]
    crashed = None
    counter = 0

    for _ in range(steps):
        action = rng.choice(
            ["put", "put", "put", "put", "get", "partition", "heal",
             "crash", "recover", "sync"]
        )
        if action == "put":
            client = rng.choice(clients)
            key = rng.choice(KEYS)
            counter += 1
            value = f"{client.client_id}-v{counter}"
            # Read-modify-write so causal chains build up; the put fires from
            # the read callback, preserving the session context.
            client.get(key, lambda _r, c=client, k=key, v=value: c.put(k, v))
        elif action == "get":
            rng.choice(clients).get(rng.choice(KEYS))
        elif action == "partition":
            loner = rng.choice(SERVERS)
            cluster.partitions.partition(
                {loner}, {node for node in SERVERS if node != loner}
            )
        elif action == "heal":
            cluster.partitions.heal()
        elif action == "crash" and crashed is None:
            crashed = rng.choice(SERVERS)
            cluster.fail_node(crashed)
        elif action == "recover" and crashed is not None:
            cluster.recover_node(crashed, wipe=rng.random() < 0.3)
            crashed = None
        elif action == "sync":
            cluster.run_anti_entropy_round(settle=False)
        cluster.run(until=cluster.simulation.now + rng.uniform(2.0, 10.0))

    # Quiesce: heal everything, bring everyone back, settle, converge.
    cluster.partitions.heal()
    if crashed is not None:
        cluster.recover_node(crashed)
    cluster.drain()
    cluster.converge(max_rounds=40)


class TestConvergenceUnderChurn:
    @pytest.mark.parametrize("mechanism_name", available())
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_replicas_converge_after_random_churn(self, mechanism_name, seed):
        cluster = build_cluster(mechanism_name, seed)
        # Stable per-mechanism seed (hash() is randomized across processes).
        rng = random.Random(seed * 7919 + sum(map(ord, mechanism_name)))
        random_churn_run(cluster, rng)
        assert cluster.is_converged()
        assert_identical_sibling_sets(cluster)

    def test_wiped_recovery_converges(self):
        """A node that loses its disk mid-run must still end up identical."""
        cluster = build_cluster("dvv", seed=9)
        client = cluster.client("writer")
        for key in KEYS:
            client.put(key, f"{key}-v1")
        settle(cluster)
        cluster.converge()
        cluster.fail_node("n2")
        for key in KEYS:
            client.get(key, lambda _r, k=key: client.put(k, f"{k}-v2"))
        settle(cluster)
        cluster.recover_node("n2", wipe=True)
        cluster.drain()
        cluster.converge(max_rounds=40)
        assert_identical_sibling_sets(cluster)
        for key in KEYS:
            assert [f"{key}-v2"] == sorted(map(str, cluster.servers["n2"].node.values_of(key)))


class TestSloppyQuorumConvergence:
    """Fault injection for the async request mode: a write that lands *only*
    on sloppy-quorum fallback nodes must reach the primaries through hint
    replay once they recover, and every mechanism must converge with no lost
    update."""

    SERVERS5 = ("n1", "n2", "n3", "n4", "n5")

    def build_async(self, mechanism_name: str, seed: int = 11) -> SimulatedCluster:
        return SimulatedCluster(
            create(mechanism_name),
            server_ids=self.SERVERS5,
            quorum=QuorumConfig(n=3, r=2, w=2, sloppy=True),
            latency=FixedLatency(0.5),
            anti_entropy_interval_ms=None,
            hint_replay_interval_ms=20.0,
            request_mode="async",
            replica_timeout_ms=6.0,
            request_timeout_ms=30.0,
            seed=seed,
        )

    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset", "causal_history"])
    def test_write_landing_only_on_fallbacks_survives(self, mechanism_name):
        cluster = self.build_async(mechanism_name)
        key = "orphaned"
        client = cluster.client("writer")
        client.put(key, "base")
        settle(cluster)
        cluster.converge()

        # Crash every primary: the client fails over through the dead
        # candidates until a fallback coordinates, and the write can only
        # land on fallback nodes (each holding a hint for a primary).
        primaries = cluster.placement.primary_replicas(key)
        for primary in primaries:
            cluster.fail_node(primary)
        results = []
        client.get(key, lambda _r: client.put(key, "fallback-only",
                                              callback=results.append))
        cluster.run(until=cluster.simulation.now + 800.0)
        assert results and results[-1] is not None, "the fallback write failed"

        fallbacks = [server_id for server_id in cluster.servers
                     if server_id not in primaries]
        assert any("fallback-only" in map(str, cluster.servers[s].node.values_of(key))
                   for s in fallbacks)
        for primary in primaries:
            assert "fallback-only" not in map(str, cluster.servers[primary].node.values_of(key))
        # Every crashed primary is covered by a hint somewhere.
        hinted_targets = set()
        for server in cluster.servers.values():
            hinted_targets.update(server.node.hint_targets())
        assert hinted_targets == set(primaries)

        # Primaries recover; hint replay + anti-entropy must converge all
        # five replicas with the fallback write intact (no lost update).
        for primary in primaries:
            cluster.recover_node(primary)
        cluster.run(until=cluster.simulation.now + 150.0)
        cluster.drain()
        cluster.converge(max_rounds=40)
        assert_identical_sibling_sets(cluster)
        for server_id, server in cluster.servers.items():
            assert "fallback-only" in map(str, server.node.values_of(key)), (
                f"{mechanism_name}: {server_id} lost the fallback-only write"
            )
        assert sum(server.node.pending_hints()
                   for server in cluster.servers.values()) == 0

    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_concurrent_writes_during_partition_all_survive(self, mechanism_name, seed):
        """Two clients race on the same key from opposite sides of a
        partition in async mode; DVV/DVVSet must keep both writes."""
        cluster = self.build_async(mechanism_name, seed=seed)
        key = "raced"
        seeder = cluster.client("seeder")
        seeder.put(key, "base")
        settle(cluster)
        cluster.converge()

        alice, bob = cluster.client("alice"), cluster.client("bob")
        alice.get(key)
        bob.get(key)
        settle(cluster)

        primaries = cluster.placement.primary_replicas(key)
        minority = set(primaries[1:3])
        majority = {server for server in cluster.servers if server not in minority}
        cluster.partitions.partition(minority, majority)

        alice.put(key, "alice-sloppy")
        bob.put(key, "bob-sloppy")
        cluster.run(until=cluster.simulation.now + 400.0)

        cluster.partitions.heal()
        cluster.drain()
        cluster.converge(max_rounds=40)
        assert_identical_sibling_sets(cluster)
        for server in cluster.servers.values():
            survivors = set(map(str, server.node.values_of(key)))
            assert {"alice-sloppy", "bob-sloppy"} <= survivors


class TestNoLostConcurrentUpdates:
    """The Figure 1 lost-update check, generalized to random churn."""

    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_concurrent_writes_all_survive(self, mechanism_name, seed):
        rng = random.Random(seed * 104729 + 17)
        cluster = build_cluster(mechanism_name, seed)
        key = "contested"

        # Seed the key and fully converge so every writer reads one state.
        seeder = cluster.client("seeder")
        seeder.put(key, "base")
        settle(cluster)
        cluster.converge()

        writers = [cluster.client(f"w{index}") for index in range(rng.randint(2, 4))]
        for writer in writers:
            writer.get(key)
        settle(cluster)

        # Inject churn between the reads and the concurrent writes.  The
        # crashed node is never the key's coordinator, so every write still
        # lands somewhere.
        churn = rng.choice(["crash", "crash_wipe", "partition", "none"])
        victim = None
        if churn in ("crash", "crash_wipe"):
            coordinator = cluster.placement.coordinator_for(key)
            victim = rng.choice([node for node in SERVERS if node != coordinator])
            cluster.fail_node(victim)
        elif churn == "partition":
            loner = rng.choice(SERVERS)
            cluster.partitions.partition(
                {loner}, {node for node in SERVERS if node != loner}
            )

        expected = set()
        for writer in writers:
            value = f"{writer.client_id}-concurrent"
            expected.add(value)
            writer.put(key, value)
        settle(cluster)

        # Quiesce and converge.
        cluster.partitions.heal()
        if victim is not None:
            cluster.recover_node(victim, wipe=(churn == "crash_wipe"))
        cluster.drain()
        cluster.converge(max_rounds=40)

        assert_identical_sibling_sets(cluster)
        for server_id, server in cluster.servers.items():
            survivors = set(map(str, server.node.values_of(key)))
            assert expected <= survivors, (
                f"{mechanism_name} dropped concurrent writes on {server_id}: "
                f"wrote {sorted(expected)}, kept {sorted(survivors)}"
            )

class TestHotKeyLostUpdates:
    """The lost-update invariant under Zipfian hot-key traffic.

    ``run_hot_key_scenario`` drives a skewed closed-loop workload (most
    traffic on one hot key, a fraction of writes deliberately stale) through
    a replica crash/recover window.  Every *exact* mechanism must come out
    of it with zero lost updates and zero false concurrency according to the
    write-log oracle — while actually having been under sibling pressure
    (the hot key accumulated concurrent versions at some point, so the
    invariant is not vacuously true).
    """

    EXACT = ["dvv", "dvvset", "causal_history", "dotted_vve"]

    @pytest.mark.parametrize("mechanism_name", EXACT)
    @pytest.mark.parametrize("seed", [17, 18])
    def test_exact_mechanisms_never_lose_updates_under_skew(
            self, mechanism_name, seed):
        from repro.workloads import run_hot_key_scenario
        report = run_hot_key_scenario(create(mechanism_name), seed=seed)
        assert report.converged, f"{mechanism_name} failed to converge"
        assert report.lost_updates == 0, (
            f"{mechanism_name} lost {report.lost_updates} frontier writes "
            f"under hot-key skew (seed={seed})"
        )
        assert report.false_concurrency == 0, (
            f"{mechanism_name} reported {report.false_concurrency} falsely "
            f"concurrent sibling pairs (seed={seed})"
        )
        # Non-vacuity: the skewed workload really did force concurrency.
        assert report.max_sibling_count >= 2, (
            "hot-key workload produced no sibling pressure — the invariant "
            "was checked against a trivially serial history"
        )

    def test_server_vv_loses_updates_under_skew(self):
        """The control: per-server VVs collapse concurrent writes to the
        same coordinator (Figure 1b), so skewed traffic *must* lose
        frontier writes — proving the oracle can detect losses."""
        from repro.workloads import run_hot_key_scenario
        report = run_hot_key_scenario(create("server_vv"), seed=17)
        assert report.converged
        assert report.lost_updates > 0

    def test_pruned_client_vv_shows_false_concurrency(self):
        """Aggressive pruning forgets causality, so ordered writes survive
        as bogus siblings — the other failure mode the oracle tracks."""
        from repro.workloads import run_hot_key_scenario
        report = run_hot_key_scenario(create("client_vv_pruned_5"), seed=17)
        assert report.converged
        assert report.false_concurrency > 0


class TestNoLostConcurrentUpdatesResolution:
    @pytest.mark.parametrize("mechanism_name", ["dvv", "dvvset"])
    def test_resolving_write_collapses_siblings(self, mechanism_name):
        """After the race, a read-modify-write resolves to one value everywhere."""
        cluster = build_cluster(mechanism_name, seed=5)
        key = "contested"
        alice, bob = cluster.client("alice"), cluster.client("bob")
        alice.get(key)
        bob.get(key)
        settle(cluster)
        alice.put(key, "alice-v")
        bob.put(key, "bob-v")
        settle(cluster)
        cluster.converge()

        resolver = cluster.client("resolver")
        resolver.get(key, lambda _r: resolver.put(key, "resolved"))
        cluster.drain()
        cluster.converge()
        for server in cluster.servers.values():
            assert list(map(str, server.node.values_of(key))) == ["resolved"]
