"""Integration: the Figure 1 experiment replayed under every mechanism.

This is the executable form of the paper's Figure 1 (panels a-c): the same
client/server interaction replayed under causal histories, per-server version
vectors and dotted version vectors (plus the other mechanisms in the library),
with the paper's qualitative outcomes asserted.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_store
from repro.clocks import create
from repro.workloads import figure1_trace, replay_trace, run_figure1_by_name

PRESERVING = ["causal_history", "dvv", "dvvset", "client_vv", "dotted_vve"]
LOSING = ["server_vv"]


class TestFigure1Matrix:
    @pytest.mark.parametrize("mechanism_name", PRESERVING)
    def test_exact_mechanisms_preserve_the_concurrent_writes(self, mechanism_name):
        result = run_figure1_by_name(mechanism_name)
        assert result.concurrency_preserved, (
            f"{mechanism_name} should keep v2 and v3 as siblings"
        )
        assert result.final_values == ["v4"]
        assert result.converged_to_single_value

    @pytest.mark.parametrize("mechanism_name", LOSING)
    def test_server_vv_loses_a_concurrent_write(self, mechanism_name):
        result = run_figure1_by_name(mechanism_name)
        assert result.lost_update
        assert result.values_at_b_after_sync == ["v3"]

    @pytest.mark.parametrize("mechanism_name", PRESERVING + LOSING)
    def test_every_mechanism_converges_at_the_end(self, mechanism_name):
        result = run_figure1_by_name(mechanism_name)
        assert len(result.final_values) == 1

    @pytest.mark.parametrize("mechanism_name", PRESERVING)
    def test_oracle_agrees_with_figure(self, mechanism_name):
        report = check_store(replay_trace(figure1_trace(), create(mechanism_name)).store)
        assert report.is_correct

    def test_oracle_flags_server_vv(self):
        report = check_store(replay_trace(figure1_trace(), create("server_vv")).store)
        assert report.total_lost_updates >= 1

    def test_dvv_clocks_match_figure_1c_annotations(self):
        """Check the actual clock values, not just the value sets."""
        from repro.clocks import DVVMechanism
        from repro.core import Dot, VersionVector
        from repro.kvstore import ClientSession, SyncReplicatedStore

        mechanism = DVVMechanism()
        store = SyncReplicatedStore(mechanism, server_ids=("A", "B"))
        c1, c2 = ClientSession("c1"), ClientSession("c2")

        c1.get(store, "obj", server_id="A")
        c1.put(store, "obj", "v1", server_id="A")
        c2.get(store, "obj", server_id="A")           # c2 reads {v1}
        c1.get(store, "obj", server_id="A")
        c1.put(store, "obj", "v2", server_id="A")     # (A,2)[A:1]
        c2.put(store, "obj", "v3", server_id="A")     # (A,3)[A:1]  -- concurrent

        state = store.node("A").state_of("obj")
        clocks = {stored.value: clock for clock, stored in state}
        assert clocks["v2"].dot == Dot("A", 2)
        assert clocks["v2"].causal_past == VersionVector({"A": 1})
        assert clocks["v3"].dot == Dot("A", 3)
        assert clocks["v3"].causal_past == VersionVector({"A": 1})
        assert clocks["v2"].concurrent_with(clocks["v3"])

        # resolution: c3 reads both at B and writes v4 = (B? no: through B) .
        store.sync_key("obj", "A", "B")
        c3 = ClientSession("c3")
        c3.get(store, "obj", server_id="B")
        c3.put(store, "obj", "v4", server_id="B")
        final_state = store.node("B").state_of("obj")
        (final_clock, final_sibling), = final_state
        assert final_sibling.value == "v4"
        assert final_clock.causal_past == VersionVector({"A": 3})
        assert final_clock.dot.actor == "B"
