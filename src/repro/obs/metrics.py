"""A unified metrics registry over the repo's scattered stats objects.

Five generations of subsystems each grew their own counters —
``StorageNode.stats`` dicts, :class:`~repro.network.transport.TransportStats`,
:class:`~repro.kvstore.protocol.anti_entropy.MerkleSyncStats`,
:class:`~repro.kvstore.read_repair.ReadRepairStats`, per-client request
records.  The :class:`MetricsRegistry` gives them one front door: direct
instruments (:class:`Counter` / :class:`Gauge` / :class:`Histogram`) for new
code, and *sources* — callables returning plain dicts — for the existing
stats objects, so none of them had to change shape to join.

One :meth:`MetricsRegistry.snapshot` call flattens everything into a stable,
JSON-serializable dict keyed by dotted names (``storage.hints_stored``,
``transport.bytes_delivered``, ``requests.latency_ms.p95``).  Nested dicts
returned by sources flatten recursively; keys are emitted sorted, so two
snapshots of identical state are identical objects.  Snapshots *read*; they
never mutate the underlying stats, so taking one is always safe mid-run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value: either set explicitly or read from a callable."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Any]] = None) -> None:
        self.name = name
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed; cannot set()")
        self._value = value

    def snapshot(self) -> Any:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """A distribution of observations (latencies, batch sizes, span widths).

    Keeps exact samples up to ``sample_limit`` for percentile queries;
    beyond the cap only the running aggregates (count/sum/min/max) stay
    exact and percentiles are computed over the retained prefix.  The
    snapshot is a plain dict, so it flattens into dotted names like any
    nested source (``<name>.count``, ``<name>.p95``, ...).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_sample_limit")

    def __init__(self, name: str, sample_limit: int = 100_000) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._sample_limit = sample_limit

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self._sample_limit:
            self._samples.append(value)

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    def percentile(self, q: float) -> float:
        """Exact percentile (nearest-rank) over the retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.min, 6) if self.min is not None else 0.0,
            "max": round(self.max, 6) if self.max is not None else 0.0,
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "p99": round(self.percentile(0.99), 6),
        }


class MetricsRegistry:
    """The cluster-wide metric namespace: instruments plus pluggable sources.

    Instruments are created on first use (``registry.counter("x")`` twice
    returns the same object).  A *source* is a zero-argument callable
    returning a dict; it is evaluated at snapshot time, which is how the
    pre-existing stats objects join without changing shape — register
    ``("storage", cluster.stat_totals)`` and every key it returns appears
    as ``storage.<key>``.  Sources registered later under the same prefix
    replace the earlier one (idempotent wiring).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._sources: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # ------------------------------------------------------------------ #
    # Instruments
    # ------------------------------------------------------------------ #
    def _instrument(self, name: str, factory: Callable[[], Any], kind: type):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}")
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._instrument(name, lambda: Counter(name), Counter)

    def gauge(self, name: str, fn: Optional[Callable[[], Any]] = None) -> Gauge:
        return self._instrument(name, lambda: Gauge(name, fn), Gauge)

    def histogram(self, name: str, sample_limit: int = 100_000) -> Histogram:
        return self._instrument(
            name, lambda: Histogram(name, sample_limit), Histogram)

    # ------------------------------------------------------------------ #
    # Sources (the bridge to pre-existing stats objects)
    # ------------------------------------------------------------------ #
    def register_source(self, prefix: str,
                        fn: Callable[[], Dict[str, Any]]) -> None:
        """Expose every key of ``fn()`` under ``<prefix>.<key>`` at snapshot."""
        self._sources[prefix] = fn

    # ------------------------------------------------------------------ #
    # Snapshot
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """Every metric as one flat, sorted, JSON-serializable dict."""
        items: Dict[str, Any] = {}
        for name, instrument in self._instruments.items():
            _flatten(name, instrument.snapshot(), items)
        for prefix, fn in self._sources.items():
            _flatten(prefix, fn(), items)
        return {name: items[name] for name in sorted(items)}


def _flatten(prefix: str, value: Any, into: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key, child in value.items():
            _flatten(f"{prefix}.{key}", child, into)
    else:
        into[prefix] = value
