"""Unified observability: metrics registry, trace spans, structured sinks.

Three pieces, all optional and all inert by default:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters, gauges
  and histograms, plus *sources* that adapt the pre-existing stats objects;
  one :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` returns the whole
  cluster's metrics as a flat, stable, JSON-serializable dict.
* :mod:`repro.obs.trace` — per-request span trees emitted by the protocol
  machines into a pluggable :class:`TraceSink` (in-memory for tests, JSONL
  for CLI runs), with a pretty-printer.  Disabled tracing is one attribute
  check per handler (:data:`NO_TRACER`), and enabled tracing never touches
  the effect system, so deterministic simulation is unperturbed.
* :mod:`repro.obs.cluster_metrics` — the duck-typed wiring that registers a
  cluster's stats into a registry with an identical schema in both the
  simulator and asyncio backends.
"""

from .cluster_metrics import build_cluster_registry
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    NO_TRACER,
    InMemoryTraceSink,
    JsonlTraceSink,
    Span,
    TraceSink,
    Tracer,
    format_span_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemoryTraceSink",
    "JsonlTraceSink",
    "MetricsRegistry",
    "NO_TRACER",
    "Span",
    "TraceSink",
    "Tracer",
    "build_cluster_registry",
    "format_span_tree",
]
