"""Per-request trace spans for the protocol layer, with pluggable sinks.

A *span* is one stage of a request's lifecycle — the client issuing a PUT,
the coordinator fanning out, one replica's ack window, a fallback promotion,
the eventual hint replay.  Spans form a tree under one *trace id* per client
request; the id is derived from the originating message
(``"<client-address>#<msg_id>"``), so both ends of a wire compute the same
id without any protocol change, and cross-node links ride an inert
``payload["trace"]`` entry (a ``(trace_id, span_id)`` string tuple the wire
codec already round-trips).

Design constraints, in order:

* **Zero behavioural perturbation.**  Span events go straight to the sink —
  never through the effect system, never onto the transport — so enabling
  tracing cannot reorder a single message, change a byte count, or move a
  deadline.  The golden-equivalence suite pins this bit-for-bit.
* **Zero cost when disabled.**  Protocol handlers guard with
  ``if tracer.enabled:``; the default :data:`NO_TRACER` is a null object
  whose ``enabled`` is ``False``, so the untraced hot path pays one
  attribute check.
* **Deterministic.**  Span ids come from a per-tracer counter (no RNG, no
  wall clock), and timestamps are whatever clock the backend already uses:
  virtual milliseconds in the simulator, wall-clock milliseconds in asyncio.

Sinks receive flat event dicts (``start`` / ``end`` / ``point``).
:class:`InMemoryTraceSink` keeps them and reconstructs :class:`Span` trees
for assertions; :class:`JsonlTraceSink` appends one JSON line per event for
CLI runs.  :func:`format_span_tree` pretty-prints a trace for humans.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "NO_TRACER",
    "InMemoryTraceSink",
    "JsonlTraceSink",
    "Span",
    "TraceSink",
    "Tracer",
    "format_span_tree",
]

#: A span reference: ``(trace_id, span_id)``.  This exact tuple is what
#: crosses node boundaries inside message payloads.
SpanRef = Tuple[str, str]


class TraceSink:
    """The sink protocol: anything with ``emit(event: dict)`` qualifies."""

    def emit(self, event: Dict[str, Any]) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Tracer:
    """Emits span lifecycle events into a sink.

    The protocol machines hold a tracer (via their env) and call
    :meth:`start` / :meth:`end` for stages with duration and :meth:`point`
    for instantaneous marks.  All three are cheap dict writes; the sink
    decides what storage means.
    """

    enabled = True

    def __init__(self, sink: TraceSink) -> None:
        self.sink = sink
        self._span_ids = itertools.count(1)

    def start(self, name: str, node: str, now: float, trace: str,
              parent: Optional[str] = None, **attrs: Any) -> SpanRef:
        """Open a span; returns the ``(trace_id, span_id)`` reference."""
        span_id = f"s{next(self._span_ids)}"
        event: Dict[str, Any] = {
            "event": "start", "trace": trace, "span": span_id,
            "name": name, "node": node, "at": now,
        }
        if parent is not None:
            event["parent"] = parent
        if attrs:
            event["attrs"] = attrs
        self.sink.emit(event)
        return (trace, span_id)

    def end(self, ref: SpanRef, now: float, status: str = "ok",
            **attrs: Any) -> None:
        """Close a previously started span with a terminal status."""
        event: Dict[str, Any] = {
            "event": "end", "trace": ref[0], "span": ref[1],
            "at": now, "status": status,
        }
        if attrs:
            event["attrs"] = attrs
        self.sink.emit(event)

    def point(self, name: str, node: str, now: float, trace: str,
              parent: Optional[str] = None, **attrs: Any) -> SpanRef:
        """Emit an instantaneous (zero-duration) span; returns its reference."""
        span_id = f"s{next(self._span_ids)}"
        event: Dict[str, Any] = {
            "event": "point", "trace": trace, "span": span_id,
            "name": name, "node": node, "at": now,
        }
        if parent is not None:
            event["parent"] = parent
        if attrs:
            event["attrs"] = attrs
        self.sink.emit(event)
        return (trace, span_id)


class _NullTracer:
    """The disabled tracer: every call is a no-op, ``enabled`` is False.

    Handlers guard span construction with ``if tracer.enabled:``, so with
    this tracer the instrumented paths cost one attribute read.
    """

    enabled = False

    def start(self, *args: Any, **kwargs: Any) -> None:
        return None

    def end(self, *args: Any, **kwargs: Any) -> None:
        return None

    def point(self, *args: Any, **kwargs: Any) -> None:
        return None


#: The default tracer everywhere a real one was not installed.
NO_TRACER = _NullTracer()


@dataclass
class Span:
    """One reconstructed span (see :meth:`InMemoryTraceSink.spans`)."""

    trace_id: str
    span_id: str
    name: str
    node: str
    started_at: float
    parent_id: Optional[str] = None
    ended_at: Optional[float] = None
    status: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list, repr=False)

    @property
    def duration(self) -> Optional[float]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    def find(self, name: str) -> List["Span"]:
        """Every descendant span (including self) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found


class InMemoryTraceSink(TraceSink):
    """Collects events in memory and reconstructs span trees for tests."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------ #
    # Reconstruction
    # ------------------------------------------------------------------ #
    def spans(self, trace_id: Optional[str] = None) -> Dict[str, Span]:
        """Reassemble events into spans, keyed by span id."""
        spans: Dict[str, Span] = {}
        for event in self.events:
            if trace_id is not None and event["trace"] != trace_id:
                continue
            span_id = event["span"]
            kind = event["event"]
            if kind in ("start", "point"):
                spans[span_id] = Span(
                    trace_id=event["trace"],
                    span_id=span_id,
                    name=event["name"],
                    node=event["node"],
                    started_at=event["at"],
                    parent_id=event.get("parent"),
                    ended_at=event["at"] if kind == "point" else None,
                    status="point" if kind == "point" else None,
                    attrs=dict(event.get("attrs") or {}),
                )
            elif kind == "end" and span_id in spans:
                span = spans[span_id]
                span.ended_at = event["at"]
                span.status = event["status"]
                span.attrs.update(event.get("attrs") or {})
        return spans

    def trace_ids(self) -> List[str]:
        """Every distinct trace id, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event["trace"], None)
        return list(seen)

    def trees(self, trace_id: str) -> List[Span]:
        """The trace's root spans, children wired up, siblings in span order."""
        spans = self.spans(trace_id)
        roots: List[Span] = []
        for span in spans.values():
            parent = spans.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent.children.append(span)
            else:
                roots.append(span)
        order = {span_id: index for index, span_id in enumerate(spans)}
        for span in spans.values():
            span.children.sort(key=lambda child: order[child.span_id])
        roots.sort(key=lambda root: order[root.span_id])
        return roots

    def find(self, name: str) -> List[Span]:
        """Every span with the given name, across all traces."""
        return [span for span in self.spans().values() if span.name == name]


class JsonlTraceSink(TraceSink):
    """Appends one JSON line per event — the CLI's ``--trace PATH`` format."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w")
        self.events_written = 0

    def emit(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def format_span_tree(roots: List[Span], indent: str = "") -> str:
    """Pretty-print a span tree, one line per span::

        client.put key=cart [client:c1] 0.000..14.500ms ok
        └─ coordinator.put [n1] 1.200..13.000ms ok
           ├─ replica.put replica=n2 [n1] 1.200..7.200ms timeout
           ├─ fallback.promotion primary=n2 fallback=n4 [n1] @7.200ms
           ...
    """
    lines: List[str] = []
    for root in roots:
        _format_span(root, "", True, True, lines)
    return "\n".join(lines)


def _format_span(span: Span, prefix: str, is_last: bool, is_root: bool,
                 lines: List[str]) -> None:
    attrs = " ".join(f"{key}={value}" for key, value in sorted(span.attrs.items())
                     if key != "status")
    if span.status == "point":
        timing = f"@{span.started_at:.3f}ms"
    elif span.ended_at is None:
        timing = f"{span.started_at:.3f}ms.. (open)"
    else:
        timing = f"{span.started_at:.3f}..{span.ended_at:.3f}ms {span.status}"
    label = " ".join(part for part in (span.name, attrs) if part)
    if is_root:
        lines.append(f"{label} [{span.node}] {timing}")
        child_prefix = ""
    else:
        branch = "└─ " if is_last else "├─ "
        lines.append(f"{prefix}{branch}{label} [{span.node}] {timing}")
        child_prefix = prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(span.children):
        _format_span(child, child_prefix, index == len(span.children) - 1,
                     False, lines)
