"""One registry wiring shared by both cluster backends.

:func:`build_cluster_registry` registers every pre-existing stats object of a
cluster — storage counters, transport byte/deadline accounting, Merkle
exchange stats, read-repair counters, request records — into one
:class:`~repro.obs.metrics.MetricsRegistry`, purely through duck-typed
attributes both :class:`~repro.kvstore.simulated.SimulatedCluster` and
:class:`~repro.kvstore.asyncio_cluster.AsyncioCluster` expose.  The snapshot
schema is therefore **identical across backends**: the only structural
difference (the simulator has one shared :class:`Transport`, the asyncio
backend one endpoint per node) is absorbed by summing per-endpoint stats
into the same ``transport.*`` names.

Sources read the live cluster at snapshot time, so nodes that join or leave
after wiring are picked up automatically, and a registry never goes stale.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from .metrics import Histogram, MetricsRegistry

__all__ = ["build_cluster_registry"]

#: The scalar TransportStats fields every snapshot reports (the per-type
#: dict fields are summarised by ``transport.sync_bytes`` instead of being
#: flattened — their key sets are data-dependent, which would make the
#: schema differ between runs).
_TRANSPORT_FIELDS = (
    "sent", "delivered", "dropped_partition", "dropped_loss",
    "dropped_unknown_destination", "duplicated",
    "bytes_sent", "bytes_delivered", "bytes_dropped",
    "deadlines_set", "deadlines_fired", "deadlines_cancelled",
)


def build_cluster_registry(cluster: Any) -> MetricsRegistry:
    """Wire every stats object of a (sim or asyncio) cluster into a registry."""
    registry = MetricsRegistry()
    registry.register_source("storage", cluster.stat_totals)
    registry.register_source("merkle", lambda: _merkle_totals(cluster))
    registry.register_source("read_repair", lambda: _read_repair_totals(cluster))
    registry.register_source("transport", lambda: _transport_totals(cluster))
    registry.register_source("requests", lambda: _request_totals(cluster))
    registry.register_source("node", lambda: _per_node(cluster))
    return registry


def _dataclass_dict(stats: Any) -> Dict[str, Any]:
    return {f.name: getattr(stats, f.name) for f in dataclasses.fields(stats)}


def _merkle_totals(cluster: Any) -> Dict[str, Any]:
    totals = _dataclass_dict(cluster.merkle_stats)
    # Index-drift audits are per-node counters, not part of the exchange
    # stats dataclass; surface the cluster-wide sums alongside it.
    totals["audit_keys_checked"] = sum(
        server.node.stats.get("audit_keys_checked", 0)
        for server in cluster.servers.values())
    totals["audit_mismatches"] = sum(
        server.node.stats.get("audit_mismatches", 0)
        for server in cluster.servers.values())
    return totals


def _read_repair_totals(cluster: Any) -> Dict[str, int]:
    totals = {"reads_checked": 0, "repairs_triggered": 0,
              "replicas_repaired": 0, "batches_sent": 0}
    for server in cluster.servers.values():
        stats = server.protocol.coordinator.read_repair_stats
        for name in totals:
            totals[name] += getattr(stats, name)
    return totals


def _endpoints(cluster: Any):
    for server in cluster.servers.values():
        yield server.endpoint
    for client in cluster.clients.values():
        yield client.endpoint


def _transport_totals(cluster: Any) -> Dict[str, int]:
    totals = {name: 0 for name in _TRANSPORT_FIELDS}
    if hasattr(cluster, "transport"):
        stats_objects = [cluster.transport.stats]
    else:
        # Asyncio backend: one endpoint per node; each message is counted
        # once as sent (sender endpoint) and once as delivered (receiver
        # endpoint), so the sum is the cluster total, like the simulator's
        # single shared transport.
        stats_objects = [endpoint.stats for endpoint in _endpoints(cluster)]
    for stats in stats_objects:
        for name in _TRANSPORT_FIELDS:
            totals[name] += getattr(stats, name)
    totals["sync_bytes"] = cluster.sync_bytes()
    return totals


def _request_totals(cluster: Any) -> Dict[str, Any]:
    records = cluster.all_request_records()
    ok = sum(1 for record in records if record.ok)
    latency = Histogram("latency_ms")
    latency.observe_many(record.latency_ms for record in records if record.ok)
    return {
        "completed": len(records),
        "ok": ok,
        "failed": len(records) - ok,
        "latency_ms": latency.snapshot(),
    }


def _per_node(cluster: Any) -> Dict[str, Dict[str, int]]:
    per_node: Dict[str, Dict[str, int]] = {}
    for node_id, server in cluster.servers.items():
        stats = dict(server.node.stats)
        stats["pending_hints"] = server.node.pending_hints()
        per_node[node_id] = stats
    return per_node
