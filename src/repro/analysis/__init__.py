"""Analysis layer: correctness oracle, metadata accounting, latency summaries."""

from .correctness import (CorrectnessReport, KeyCorrectness, check_cluster,
                          check_key, check_store)
from .latency import LatencyReport, analyze_requests
from .metadata import MetadataReport, compare_reports, measure_simulated_cluster, measure_sync_store
from .report import format_cell, print_table, render_kv, render_table
from .stats import Summary, percentile, ratio, speedup, summarize

__all__ = [
    "CorrectnessReport",
    "KeyCorrectness",
    "LatencyReport",
    "MetadataReport",
    "Summary",
    "analyze_requests",
    "check_cluster",
    "check_key",
    "check_store",
    "compare_reports",
    "format_cell",
    "measure_simulated_cluster",
    "measure_sync_store",
    "percentile",
    "print_table",
    "ratio",
    "render_kv",
    "render_table",
    "speedup",
    "summarize",
]
