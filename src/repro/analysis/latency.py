"""Request-latency analysis for simulated cluster runs (experiment E4).

The latency claim in the paper ("better latency when serving requests") is a
consequence of smaller causality metadata: less data to serialise, ship and
parse per request.  The simulated cluster charges transmission time per byte,
so the per-request latency records it produces already contain the effect;
this module reduces those records to the summaries the benchmark prints
(mean / median / p95 / p99 per operation type, plus throughput).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..kvstore.simulated import RequestRecord
from .stats import Summary, summarize


@dataclass
class LatencyReport:
    """Latency summary of one run under one mechanism."""

    mechanism: str
    overall: Summary
    by_operation: Dict[str, Summary]
    requests: int
    duration_ms: float
    mean_context_bytes: float

    @property
    def throughput_per_s(self) -> float:
        """Completed requests per simulated second."""
        if self.duration_ms <= 0:
            return 0.0
        return self.requests / (self.duration_ms / 1000.0)

    def as_row(self) -> List[object]:
        """Row for the benchmark report tables."""
        get_summary = self.by_operation.get("get")
        put_summary = self.by_operation.get("put")
        return [
            self.mechanism,
            self.requests,
            round(self.overall.mean, 3),
            round(self.overall.p95, 3),
            round(self.overall.p99, 3),
            round(get_summary.mean, 3) if get_summary else 0.0,
            round(put_summary.mean, 3) if put_summary else 0.0,
            round(self.mean_context_bytes, 1),
        ]

    @staticmethod
    def table_headers() -> List[str]:
        """Headers matching :meth:`as_row`."""
        return [
            "mechanism",
            "requests",
            "mean ms",
            "p95 ms",
            "p99 ms",
            "get mean ms",
            "put mean ms",
            "context bytes",
        ]


def analyze_requests(mechanism: str,
                     records: Sequence[RequestRecord],
                     duration_ms: Optional[float] = None) -> LatencyReport:
    """Reduce raw request records to a :class:`LatencyReport`."""
    completed = [record for record in records if record.ok]
    if not completed:
        empty = summarize([0.0])
        return LatencyReport(
            mechanism=mechanism,
            overall=empty,
            by_operation={},
            requests=0,
            duration_ms=duration_ms or 0.0,
            mean_context_bytes=0.0,
        )
    latencies = [record.latency_ms for record in completed]
    by_operation: Dict[str, Summary] = {}
    for operation in sorted({record.operation for record in completed}):
        operation_latencies = [
            record.latency_ms for record in completed if record.operation == operation
        ]
        by_operation[operation] = summarize(operation_latencies)
    if duration_ms is None:
        duration_ms = max(record.finished_at for record in completed)
    context_bytes = [record.context_bytes for record in completed]
    return LatencyReport(
        mechanism=mechanism,
        overall=summarize(latencies),
        by_operation=by_operation,
        requests=len(completed),
        duration_ms=duration_ms,
        mean_context_bytes=(sum(context_bytes) / len(context_bytes)) if context_bytes else 0.0,
    )
