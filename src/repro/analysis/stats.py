"""Small statistics helpers shared by the analysis and benchmark code.

Only depends on the standard library (``statistics``) so the analysis layer
stays importable in minimal environments; numpy is available in the benchmark
environment but is not required here.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..core.exceptions import AnalysisError


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` using linear interpolation.

    ``fraction`` is in [0, 1]; e.g. 0.95 for the 95th percentile.  Raises on
    empty input rather than inventing a number.
    """
    if not values:
        raise AnalysisError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise AnalysisError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    total: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for report tables."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
            "total": self.total,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` of a sample (raises on empty input)."""
    data: List[float] = [float(v) for v in values]
    if not data:
        raise AnalysisError("cannot summarise an empty sample")
    return Summary(
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        p95=percentile(data, 0.95),
        p99=percentile(data, 0.99),
        minimum=min(data),
        maximum=max(data),
        total=sum(data),
    )


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with a defined value (0.0) for a zero denominator."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def speedup(baseline: float, improved: float) -> float:
    """How many times smaller/faster ``improved`` is relative to ``baseline``.

    Used in the experiment reports ("DVV metadata is X times smaller").
    Returns ``inf`` when the improved value is zero but the baseline is not.
    """
    if improved == 0:
        return math.inf if baseline > 0 else 1.0
    return baseline / improved
