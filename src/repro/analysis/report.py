"""Plain-text table rendering for benchmark and example output.

The benchmarks print the same rows/series the paper reports; this module keeps
that presentation in one place so every experiment's output looks the same and
the EXPERIMENTS.md tables can be copy-pasted from benchmark runs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_cell(value: Any, float_digits: int = 2) -> str:
    """Render a single cell: floats get fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]],
                 title: Optional[str] = None,
                 float_digits: int = 2) -> str:
    """Render an aligned plain-text table.

    The first column is left-aligned (labels), the rest right-aligned
    (numbers), matching the layout of the paper's tables.
    """
    rendered_rows: List[List[str]] = [
        [format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            width = widths[index] if index < len(widths) else len(cell)
            parts.append(cell.ljust(width) if index == 0 else cell.rjust(width))
        return "  ".join(parts)

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * width for width in widths]))
    for row in rendered_rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_kv(pairs: Sequence[Sequence[Any]], title: Optional[str] = None) -> str:
    """Render a two-column key/value block (used by the examples)."""
    return render_table(["metric", "value"], pairs, title=title)


def print_table(headers: Sequence[str],
                rows: Iterable[Sequence[Any]],
                title: Optional[str] = None,
                float_digits: int = 2) -> None:
    """Convenience wrapper printing :func:`render_table` output."""
    print(render_table(headers, rows, title=title, float_digits=float_digits))
