"""Correctness oracle: judging mechanisms against ground-truth causality.

The paper's qualitative claims are about *correctness*, not just size:

* per-server version vectors lose concurrently written versions (Figure 1b);
* optimistically pruned per-client version vectors can lose updates and/or
  introduce false concurrency;
* dotted version vectors track causality among concurrent client writes
  exactly.

This module turns those claims into measurable quantities.  Every write the
store accepted is in the :class:`~repro.kvstore.write_log.WriteLog` with its
ground-truth causal history; after replicas converge, the surviving siblings
of each key are compared against the log's causal frontier:

* **lost update** — a frontier write (not causally superseded by any other
  write) that no replica still stores;
* **false concurrency** — two surviving siblings whose ground-truth histories
  are actually ordered (the mechanism should have kept only the later one);
* **sibling surplus / deficit** — how far the surviving sibling count is from
  the ground-truth frontier size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..clocks.interface import Sibling
from ..core.comparison import Ordering
from ..core.dot import Dot
from ..kvstore.sync_store import SyncReplicatedStore
from ..kvstore.write_log import WriteLog, WriteRecord


@dataclass
class KeyCorrectness:
    """Correctness verdict for a single key.

    ``session_superseded`` lists frontier writes that did not survive but were
    replaced by a *later write of the same client*: mechanisms whose identifier
    space is per-client (Riak's client-id version vectors) order a client's own
    writes even when the client never read the earlier one back.  That is a
    documented semantic difference, not data loss — no other client's write
    disappeared — so it is reported separately from ``lost_updates``.
    """

    key: str
    expected_frontier: List[Dot]
    surviving: List[Dot]
    lost_updates: List[Dot]
    false_concurrency_pairs: List[Tuple[Dot, Dot]]
    spurious_siblings: List[Dot]
    session_superseded: List[Dot] = field(default_factory=list)

    @property
    def sibling_surplus(self) -> int:
        """How many more siblings survived than the ground truth warrants."""
        return max(0, len(self.surviving) - len(self.expected_frontier))

    @property
    def sibling_deficit(self) -> int:
        """How many ground-truth concurrent versions are missing."""
        return max(0, len(self.expected_frontier) - len(self.surviving))

    @property
    def is_correct(self) -> bool:
        """True when the mechanism preserved exactly the ground-truth frontier."""
        return not self.lost_updates and not self.false_concurrency_pairs


@dataclass
class CorrectnessReport:
    """Aggregate correctness verdict across all keys of a run."""

    mechanism: str
    keys_checked: int = 0
    keys_correct: int = 0
    total_lost_updates: int = 0
    total_false_concurrency: int = 0
    total_sibling_surplus: int = 0
    total_sibling_deficit: int = 0
    total_session_superseded: int = 0
    per_key: Dict[str, KeyCorrectness] = field(default_factory=dict)

    @property
    def is_correct(self) -> bool:
        """True when no key shows lost updates or false concurrency."""
        return self.total_lost_updates == 0 and self.total_false_concurrency == 0

    @property
    def lost_update_rate(self) -> float:
        """Lost updates per checked key."""
        if self.keys_checked == 0:
            return 0.0
        return self.total_lost_updates / self.keys_checked

    def as_row(self) -> List[object]:
        """Row for the benchmark report tables."""
        return [
            self.mechanism,
            self.keys_checked,
            self.total_lost_updates,
            self.total_false_concurrency,
            self.total_sibling_surplus,
            self.total_sibling_deficit,
            self.is_correct,
        ]

    @staticmethod
    def table_headers() -> List[str]:
        """Headers matching :meth:`as_row`."""
        return [
            "mechanism",
            "keys",
            "lost updates",
            "false concurrency",
            "sibling surplus",
            "sibling deficit",
            "correct",
        ]


def check_key(key: str,
              surviving_siblings: Sequence[Sibling],
              write_log: WriteLog) -> KeyCorrectness:
    """Judge one key's surviving siblings against the write log's ground truth."""
    frontier: List[WriteRecord] = write_log.latest_frontier(key)
    frontier_dots = [record.origin_dot for record in frontier]
    surviving_dots = [sibling.origin_dot for sibling in surviving_siblings]

    surviving_histories = {
        sibling.origin_dot: sibling.history for sibling in surviving_siblings
    }

    # A frontier write is lost when it neither survived itself nor is causally
    # included in some surviving sibling (the latter cannot happen for true
    # frontier writes, but guards against oracle misuse).  A frontier write
    # replaced by a later write of the same client is classified as
    # session-superseded rather than lost — see :class:`KeyCorrectness`.
    all_records = write_log.for_key(key)
    writer_of = {record.origin_dot: record.sibling.writer for record in all_records}

    lost: List[Dot] = []
    session_superseded: List[Dot] = []
    for record in frontier:
        if record.origin_dot in surviving_dots:
            continue
        covered = any(
            record.origin_dot in history for history in surviving_histories.values()
        )
        if covered:
            continue
        writer = writer_of.get(record.origin_dot)
        later_same_writer = writer is not None and any(
            other.sibling.writer == writer
            and other.origin_dot.counter > record.origin_dot.counter
            for other in all_records
        )
        if later_same_writer:
            session_superseded.append(record.origin_dot)
        else:
            lost.append(record.origin_dot)

    # False concurrency: surviving pairs whose ground-truth histories are ordered.
    false_pairs: List[Tuple[Dot, Dot]] = []
    ordered_siblings = sorted(surviving_siblings, key=lambda s: s.origin_dot)
    for index, first in enumerate(ordered_siblings):
        for second in ordered_siblings[index + 1:]:
            relation = first.history.compare(second.history)
            if relation in (Ordering.BEFORE, Ordering.AFTER):
                false_pairs.append((first.origin_dot, second.origin_dot))

    # Spurious siblings: survivors that the ground truth says are dominated by
    # another *survivor* (the visible symptom of false concurrency).
    spurious: List[Dot] = []
    for sibling in ordered_siblings:
        for other in ordered_siblings:
            if sibling is other:
                continue
            if sibling.history.compare(other.history) is Ordering.BEFORE:
                spurious.append(sibling.origin_dot)
                break

    return KeyCorrectness(
        key=key,
        expected_frontier=sorted(frontier_dots),
        surviving=sorted(surviving_dots),
        lost_updates=sorted(lost),
        false_concurrency_pairs=false_pairs,
        spurious_siblings=sorted(spurious),
        session_superseded=sorted(session_superseded),
    )


def check_cluster(cluster, write_log: Optional[WriteLog] = None) -> CorrectnessReport:
    """Judge every key of a (converged) message-passing cluster.

    The cluster analogue of :func:`check_store`: after ``cluster.converge()``
    every live server stores an identical sibling set per key, so any
    server's survivors can stand for the cluster's.  The first live server
    (sorted order) that holds the key is used as the reference; a key held
    by no live server yields an empty survivor set and every frontier write
    is judged lost — which is exactly what a client would observe.

    Works for both ``SimulatedCluster`` and ``AsyncioCluster`` (anything
    with ``servers`` exposing ``node.siblings_of`` and a ``write_log``).
    """
    log = write_log if write_log is not None else cluster.write_log
    report = CorrectnessReport(mechanism=cluster.mechanism.name)
    is_up = getattr(getattr(cluster, "membership", None), "is_up",
                    lambda _node_id: True)
    for key in log.keys():
        surviving: Sequence[Sibling] = []
        for server_id in sorted(cluster.servers):
            if not is_up(server_id):
                continue
            siblings = cluster.servers[server_id].node.siblings_of(key)
            if siblings:
                surviving = siblings
                break
        verdict = check_key(key, surviving, log)
        report.per_key[key] = verdict
        report.keys_checked += 1
        if verdict.is_correct:
            report.keys_correct += 1
        report.total_lost_updates += len(verdict.lost_updates)
        report.total_false_concurrency += len(verdict.false_concurrency_pairs)
        report.total_sibling_surplus += verdict.sibling_surplus
        report.total_sibling_deficit += verdict.sibling_deficit
        report.total_session_superseded += len(verdict.session_superseded)
    return report


def check_store(store: SyncReplicatedStore,
                write_log: Optional[WriteLog] = None,
                converge_first: bool = True) -> CorrectnessReport:
    """Judge every key of a synchronous store against its write log.

    ``converge_first`` runs replica synchronisation to a fixpoint before
    checking, which is the setting the paper's discussion assumes (the damage
    done by inexact mechanisms does not heal with more syncing — it is already
    baked into the surviving version sets).
    """
    log = write_log if write_log is not None else store.write_log
    if converge_first and log.keys():
        store.converge()
    report = CorrectnessReport(mechanism=store.mechanism.name)
    for key in log.keys():
        replicas = store.replicas_for(key)
        reference_replica = replicas[0] if replicas else None
        surviving = store.siblings(key, reference_replica) if reference_replica else []
        verdict = check_key(key, surviving, log)
        report.per_key[key] = verdict
        report.keys_checked += 1
        if verdict.is_correct:
            report.keys_correct += 1
        report.total_lost_updates += len(verdict.lost_updates)
        report.total_false_concurrency += len(verdict.false_concurrency_pairs)
        report.total_sibling_surplus += verdict.sibling_surplus
        report.total_sibling_deficit += verdict.sibling_deficit
        report.total_session_superseded += len(verdict.session_superseded)
    return report
