"""Metadata-size accounting across a store (experiment E2's measurements).

The quantity the paper cares about is the causality metadata a store must
keep *per key* and ship *per request*: version vectors with one entry per
client grow with the number of writers, while dotted version vectors stay
bounded by the replication degree.  This module aggregates the per-mechanism
accounting exposed by the storage nodes into the per-run reports the
benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kvstore.simulated import SimulatedCluster
from ..kvstore.sync_store import SyncReplicatedStore
from .stats import Summary, summarize


@dataclass
class MetadataReport:
    """Causality-metadata footprint of one run under one mechanism."""

    mechanism: str
    keys: int
    total_entries: int
    total_bytes: int
    per_key_entries: Summary
    per_key_bytes: Summary
    max_entries_per_key: int
    context_bytes: Optional[Summary] = None

    def as_row(self) -> List[object]:
        """Row for the benchmark report tables."""
        return [
            self.mechanism,
            self.keys,
            self.total_entries,
            self.total_bytes,
            round(self.per_key_entries.mean, 2),
            self.max_entries_per_key,
            round(self.per_key_bytes.mean, 1),
        ]

    @staticmethod
    def table_headers() -> List[str]:
        """Headers matching :meth:`as_row`."""
        return [
            "mechanism",
            "keys",
            "entries (total)",
            "bytes (total)",
            "entries/key (mean)",
            "entries/key (max)",
            "bytes/key (mean)",
        ]


def measure_sync_store(store: SyncReplicatedStore) -> MetadataReport:
    """Metadata footprint of a synchronous store, measured per key per replica.

    Per-key numbers are taken at the key's first replica (after convergence
    every replica stores the same thing); totals sum over all replicas, which
    is what a capacity-planning view of the cluster would see.
    """
    per_key_entries: List[int] = []
    per_key_bytes: List[int] = []
    keys = store.write_log.keys()
    for key in keys:
        replicas = store.replicas_for(key)
        if not replicas:
            continue
        node = store.node(replicas[0])
        per_key_entries.append(node.metadata_entries(key))
        per_key_bytes.append(node.metadata_bytes(key))
    if not per_key_entries:
        per_key_entries = [0]
        per_key_bytes = [0]
    return MetadataReport(
        mechanism=store.mechanism.name,
        keys=len(keys),
        total_entries=store.metadata_entries(),
        total_bytes=store.metadata_bytes(),
        per_key_entries=summarize(per_key_entries),
        per_key_bytes=summarize(per_key_bytes),
        max_entries_per_key=max(per_key_entries),
    )


def measure_simulated_cluster(cluster: SimulatedCluster) -> MetadataReport:
    """Metadata footprint of a simulated cluster run.

    Includes a summary of the context bytes that travelled with completed
    requests, which is the "metadata on the wire" half of the latency story.
    """
    per_key_entries: List[int] = []
    per_key_bytes: List[int] = []
    keys = set()
    for server in cluster.servers.values():
        keys.update(server.node.storage.keys())
    for key in sorted(keys):
        entries = max(
            (server.node.metadata_entries(key) for server in cluster.servers.values()),
            default=0,
        )
        size = max(
            (server.node.metadata_bytes(key) for server in cluster.servers.values()),
            default=0,
        )
        per_key_entries.append(entries)
        per_key_bytes.append(size)
    if not per_key_entries:
        per_key_entries = [0]
        per_key_bytes = [0]
    records = cluster.all_request_records()
    context_sizes = [record.context_bytes for record in records if record.ok]
    return MetadataReport(
        mechanism=cluster.mechanism.name,
        keys=len(keys),
        total_entries=cluster.metadata_entries(),
        total_bytes=cluster.metadata_bytes(),
        per_key_entries=summarize(per_key_entries),
        per_key_bytes=summarize(per_key_bytes),
        max_entries_per_key=max(per_key_entries),
        context_bytes=summarize(context_sizes) if context_sizes else None,
    )


def compare_reports(reports: Dict[str, MetadataReport],
                    baseline: str,
                    challenger: str) -> Dict[str, float]:
    """Size ratios between a baseline mechanism and a challenger.

    Returns ``{"entries_ratio": ..., "bytes_ratio": ...}`` where a ratio above
    1 means the baseline is bigger (the paper's "significant reduction").
    """
    base = reports[baseline]
    other = reports[challenger]
    entries_ratio = (base.total_entries / other.total_entries) if other.total_entries else float("inf")
    bytes_ratio = (base.total_bytes / other.total_bytes) if other.total_bytes else float("inf")
    return {"entries_ratio": entries_ratio, "bytes_ratio": bytes_ratio}
