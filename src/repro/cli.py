"""Command-line interface for the reproduction harness.

The CLI wraps the library's experiment entry points so the paper's results can
be regenerated without writing Python::

    python -m repro mechanisms
    python -m repro figure1
    python -m repro scenario concurrent_writers --mechanism server_vv
    python -m repro compare --clients 32 --operations 300 --seed 7
    python -m repro cluster --mechanism dvv --clients 16 --duration-ms 500
    python -m repro cluster --backend asyncio --clients 8 --duration-ms 500
    python -m repro churn --scenario elasticity --mechanism dvvset
    python -m repro serve --mechanism dvv --servers 3
    python -m repro connect --socket-dir /tmp/repro-cluster-x get cart

Every subcommand prints the same plain-text tables the benchmarks persist
under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import (
    analyze_requests,
    check_store,
    measure_simulated_cluster,
    measure_sync_store,
    render_table,
)
from .clocks import available, create
from .cluster import QuorumConfig
from .kvstore import SimulatedCluster
from .network import FixedLatency, SizeDependentLatency
from .workloads import (
    CHURN_SCENARIOS,
    ClosedLoopConfig,
    WorkloadConfig,
    generate_workload,
    named_scenarios,
    replay_scenario,
    replay_trace,
    run_churn_scenario,
    run_closed_loop_workload,
    run_figure1_by_name,
)

DEFAULT_COMPARISON = ["dvv", "dvvset", "client_vv", "client_vv_pruned_5", "server_vv"]


# --------------------------------------------------------------------------- #
# Observability plumbing shared by the cluster-running subcommands
# --------------------------------------------------------------------------- #
def _open_tracer(trace_path: Optional[str]):
    """A (tracer, sink) pair writing JSONL span events, or (None, None)."""
    if trace_path is None:
        return None, None
    from .obs import JsonlTraceSink, Tracer

    sink = JsonlTraceSink(trace_path)
    return Tracer(sink), sink


def _finish_trace(sink, trace_path: Optional[str]) -> None:
    if sink is not None:
        sink.close()
        print(f"trace: {sink.events_written} span events -> {trace_path}")


def _write_stats_json(cluster, stats_path: Optional[str]) -> None:
    """Dump the cluster's unified metrics snapshot as JSON."""
    if stats_path is None or cluster is None:
        return
    import json

    snapshot = cluster.metrics_snapshot()
    with open(stats_path, "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"stats: {len(snapshot)} metrics -> {stats_path}")


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def cmd_mechanisms(_args: argparse.Namespace) -> int:
    """List the registered causality mechanisms."""
    rows = []
    for name in available():
        mechanism = create(name)
        rows.append([name, "yes" if mechanism.exact else "no", mechanism.describe()])
    print(render_table(["name", "exact", "description"], rows,
                       title="Registered causality mechanisms"))
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    """Replay the paper's Figure 1 under the selected mechanisms."""
    mechanisms = args.mechanisms or ["causal_history", "server_vv", "dvv"]
    rows = []
    for name in mechanisms:
        result = run_figure1_by_name(name)
        rows.append([
            name,
            ",".join(result.values_after_concurrent_writes),
            ",".join(result.values_at_b_after_sync),
            result.concurrency_preserved,
            result.lost_update,
            ",".join(result.final_values),
        ])
    print(render_table(
        ["mechanism", "at A after racing writes", "at B after sync",
         "concurrency kept", "lost update", "final"],
        rows,
        title="Figure 1 replay",
    ))
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    """Replay one named scenario and report the oracle's verdict."""
    known = sorted(named_scenarios()) + ["figure1"]
    if args.name not in known:
        print(f"unknown scenario {args.name!r}; choose from: {', '.join(known)}",
              file=sys.stderr)
        return 2
    result = replay_scenario(args.name, create(args.mechanism))
    result.store.converge()
    correctness = check_store(result.store)
    metadata = measure_sync_store(result.store)
    print(render_table(
        ["metric", "value"],
        [
            ["scenario", args.name],
            ["mechanism", args.mechanism],
            ["writes applied", len(result.store.write_log)],
            ["keys", correctness.keys_checked],
            ["lost updates", correctness.total_lost_updates],
            ["false concurrency", correctness.total_false_concurrency],
            ["metadata entries", metadata.total_entries],
            ["metadata bytes", metadata.total_bytes],
            ["causally correct", correctness.is_correct],
        ],
        title=f"Scenario {args.name!r} under {args.mechanism}",
    ))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Replay one synthetic workload under several mechanisms and compare."""
    config = WorkloadConfig(
        clients=args.clients,
        keys=args.keys,
        operations=args.operations,
        stale_read_probability=args.stale_reads,
        blind_write_probability=args.blind_writes,
        seed=args.seed,
    )
    trace = generate_workload(config)
    mechanisms = args.mechanisms or DEFAULT_COMPARISON
    rows = []
    for name in mechanisms:
        replay = replay_trace(trace, create(name))
        replay.store.converge()
        correctness = check_store(replay.store)
        metadata = measure_sync_store(replay.store)
        rows.append([
            name,
            correctness.total_lost_updates,
            correctness.total_false_concurrency,
            metadata.max_entries_per_key,
            round(metadata.per_key_bytes.mean, 1),
            correctness.is_correct,
        ])
    print(render_table(
        ["mechanism", "lost updates", "false concurrency",
         "entries/key (max)", "bytes/key (mean)", "safe"],
        rows,
        title=(f"Workload: {args.clients} clients, {args.operations} operations, "
               f"{args.keys} keys, seed {args.seed}"),
    ))
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    """Run a churn scenario (membership churn, skew, multi-DC) and report.

    Exit status: 0 on success; 1 when the cluster failed to converge *or* an
    exact mechanism lost an update (the generalized lost-update invariant).
    """
    import inspect

    tracer, sink = _open_tracer(args.trace)
    scenario_fn = CHURN_SCENARIOS[args.scenario]
    kwargs = dict(seed=args.seed,
                  quorum_mode=args.quorum_mode,
                  anti_entropy_strategy=args.anti_entropy,
                  tracer=tracer)
    # Optional knobs only some scenarios accept (pass-through when set and
    # supported; quietly ignored by scenarios without the parameter).
    accepted = inspect.signature(scenario_fn).parameters
    if args.duration_ms is not None and "duration_ms" in accepted:
        kwargs["duration_ms"] = args.duration_ms
    if args.zipf_s is not None and "zipf_s" in accepted:
        kwargs["zipf_s"] = args.zipf_s
    mechanism = create(args.mechanism)
    report = scenario_fn(mechanism, **kwargs)
    stats = report.stats
    rows = [
        ["scenario", report.scenario],
        ["mechanism", report.mechanism],
        ["quorum mode", report.quorum_mode],
        ["converged", report.converged],
        ["convergence rounds", report.convergence_rounds],
        ["final servers", ",".join(report.final_servers)],
        ["joined", ",".join(report.joined) or "-"],
        ["departed", ",".join(report.departed) or "-"],
        ["handoff keys", report.handoff_keys],
        ["requests completed", report.requests_completed],
        ["requests failed", report.requests_failed],
        ["hints stored", stats.get("hints_stored", 0)],
        ["hint replays", stats.get("hint_replays", 0)],
        ["merkle key syncs", stats.get("merkle_syncs", 0)],
        ["rebalance handoffs", stats.get("handoffs", 0)],
        ["ordinary merges", stats.get("merges", 0)],
        ["sync bytes on the wire", report.sync_bytes],
    ]
    if report.lost_updates is not None:
        rows.append(["lost updates (oracle)", report.lost_updates])
        rows.append(["false concurrency (oracle)", report.false_concurrency])
    if report.hot_key is not None:
        rows.append(["hot key", report.hot_key])
        rows.append(["max siblings (hot key)", report.max_sibling_count])
    if report.datacenters:
        rows.append(["datacenters", ",".join(report.datacenters)])
        rows.append(["WAN partition flaps", report.partition_flaps])
    print(render_table(
        ["metric", "value"], rows,
        title=f"Churn scenario {report.scenario!r} under {report.mechanism}",
    ))
    _write_stats_json(report.cluster, args.stats_json)
    _finish_trace(sink, args.trace)
    invariant_broken = (mechanism.exact
                        and report.lost_updates is not None
                        and report.lost_updates > 0)
    return 0 if report.converged and not invariant_broken else 1


def _run_cluster_audit(cluster, sample_size: int, seed: int):
    """Audit every node's Merkle index against its storage after a run.

    Returns ``(keys_checked, mismatches)`` summed over the nodes; each node
    gets its own deterministically seeded sampler so runs are repeatable.
    """
    import random

    checked = mismatches = 0
    for position, (node_id, server) in enumerate(sorted(cluster.servers.items())):
        rng = random.Random(seed * 1000 + position)
        report = server.node.audit_merkle_index(sample_size=sample_size, rng=rng)
        checked += report["keys_checked"]
        mismatches += report["mismatches"]
    return checked, mismatches


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run the message-passing cluster under a closed-loop workload.

    ``--backend sim`` (default) drives the deterministic simulator in virtual
    time; ``--backend asyncio`` runs the same protocol machines over real
    Unix-domain sockets and reports wall-clock numbers.
    """
    if args.backend == "asyncio":
        return _cmd_cluster_asyncio(args)
    tracer, sink = _open_tracer(args.trace)
    cluster = SimulatedCluster(
        create(args.mechanism),
        server_ids=tuple(f"n{i}" for i in range(args.servers)),
        quorum=QuorumConfig(n=min(3, args.servers),
                            r=min(2, args.servers),
                            w=min(2, args.servers),
                            sloppy=args.quorum_mode == "sloppy"),
        latency=SizeDependentLatency(base=FixedLatency(0.25), bytes_per_ms=args.bytes_per_ms),
        anti_entropy_interval_ms=50.0,
        anti_entropy_strategy=args.anti_entropy,
        request_mode=args.request_mode,
        deadline_mode=args.deadline_mode,
        merkle_maintenance=args.merkle_maintenance,
        partition_count=args.partitions,
        seed=args.seed,
        tracer=tracer,
    )
    workload = ClosedLoopConfig(
        keys=tuple(f"key-{i}" for i in range(args.keys)),
        think_time_ms=args.think_time_ms,
        write_fraction=args.write_fraction,
        stop_at_ms=args.duration_ms,
    )
    run_closed_loop_workload(cluster, client_count=args.clients, config=workload)
    records = cluster.all_request_records()
    latency = analyze_requests(args.mechanism, records, duration_ms=args.duration_ms)
    metadata = measure_simulated_cluster(cluster)
    audit_rows = []
    if args.audit:
        checked, mismatches = _run_cluster_audit(cluster, args.audit, args.seed)
        audit_rows = [["audit keys checked", checked],
                      ["audit mismatches", mismatches]]
    stats = cluster.stat_totals()
    print(render_table(
        ["metric", "value"],
        [
            ["mechanism", args.mechanism],
            ["servers", args.servers],
            ["clients", args.clients],
            ["request mode", args.request_mode],
            ["quorum mode", args.quorum_mode],
            ["deadline mode", args.deadline_mode],
            ["merkle maintenance", args.merkle_maintenance],
            ["requests completed", latency.requests],
            ["requests failed", sum(1 for record in records if not record.ok)],
            ["mean latency (ms)", round(latency.overall.mean, 3)],
            ["p95 latency (ms)", round(latency.overall.p95, 3)],
            ["p99 latency (ms)", round(latency.overall.p99, 3)],
            ["throughput (req/s)", round(latency.throughput_per_s, 1)],
            ["context bytes / request", round(latency.mean_context_bytes, 1)],
            ["stored metadata bytes", metadata.total_bytes],
            ["bytes on the wire", cluster.transport.stats.bytes_sent],
            ["merkle keys hashed", stats.get("keys_hashed", 0)],
            ["merkle buckets rehashed", stats.get("buckets_rehashed", 0)],
            ["merkle full rebuilds", stats.get("full_rebuilds", 0)],
            ["merkle fingerprints imported", stats.get("fingerprints_imported", 0)],
            ["vnode partitions", args.partitions],
            ["partitions compared", cluster.merkle_stats.partitions_compared],
            ["partitions differing", cluster.merkle_stats.partitions_differing],
        ] + audit_rows,
        title="Simulated cluster run",
    ))
    _write_stats_json(cluster, args.stats_json)
    _finish_trace(sink, args.trace)
    return 0


def _cmd_cluster_asyncio(args: argparse.Namespace) -> int:
    """The asyncio-backend half of ``cmd_cluster`` (wall-clock run)."""
    import asyncio
    import random

    from .kvstore import AsyncioCluster

    async def run() -> int:
        tracer, sink = _open_tracer(args.trace)
        cluster = AsyncioCluster(
            create(args.mechanism),
            server_ids=tuple(f"n{i}" for i in range(args.servers)),
            quorum=QuorumConfig(n=min(3, args.servers),
                                r=min(2, args.servers),
                                w=min(2, args.servers),
                                sloppy=args.quorum_mode == "sloppy"),
            deadline_mode=args.deadline_mode,
            merkle_maintenance=args.merkle_maintenance,
            partition_count=args.partitions,
            tracer=tracer,
        )
        keys = [f"key-{i}" for i in range(args.keys)]
        duration_s = args.duration_ms / 1000.0
        think_s = args.think_time_ms / 1000.0
        async with cluster:
            clients = [await cluster.client(f"c{i}") for i in range(args.clients)]
            loop = asyncio.get_running_loop()
            stop_at = loop.time() + duration_s

            async def drive(client, index: int) -> None:
                rng = random.Random(args.seed * 1000 + index)
                while loop.time() < stop_at:
                    key = keys[rng.randrange(len(keys))]
                    if rng.random() < args.write_fraction:
                        await client.put(key, f"{client.client_id}-{rng.random():.6f}")
                    else:
                        await client.get(key)
                    if think_s:
                        await asyncio.sleep(think_s)

            started = loop.time()
            await asyncio.gather(*(drive(c, i) for i, c in enumerate(clients)))
            elapsed_s = loop.time() - started
            await cluster.converge(timeout_s=30.0)
            records = cluster.all_request_records()
            latency = analyze_requests(args.mechanism, records,
                                       duration_ms=elapsed_s * 1000.0)
            audit_rows = []
            if args.audit:
                checked, mismatches = _run_cluster_audit(
                    cluster, args.audit, args.seed)
                audit_rows = [["audit keys checked", checked],
                              ["audit mismatches", mismatches]]
            stats = cluster.stat_totals()
            wire_bytes = sum(server.endpoint.stats.bytes_sent
                             for server in cluster.servers.values())
            print(render_table(
                ["metric", "value"],
                [
                    ["mechanism", args.mechanism],
                    ["backend", "asyncio (unix sockets, wall clock)"],
                    ["servers", args.servers],
                    ["clients", args.clients],
                    ["requests completed", latency.requests],
                    ["requests failed", sum(1 for r in records if not r.ok)],
                    ["mean latency (ms)", round(latency.overall.mean, 3)],
                    ["p95 latency (ms)", round(latency.overall.p95, 3)],
                    ["p99 latency (ms)", round(latency.overall.p99, 3)],
                    ["throughput (req/s)", round(latency.throughput_per_s, 1)],
                    ["bytes on the wire", wire_bytes],
                    ["merkle keys hashed", stats.get("keys_hashed", 0)],
                    ["converged", "yes"],
                ] + audit_rows,
                title="Asyncio cluster run",
            ))
        # The shutdown-captured snapshot includes the daemons' final work.
        _write_stats_json(cluster, args.stats_json)
        _finish_trace(sink, args.trace)
        return 0

    return asyncio.run(run())


def cmd_serve(args: argparse.Namespace) -> int:
    """Run an asyncio cluster on Unix-domain sockets until interrupted.

    Writes a ``cluster.json`` manifest into the socket directory describing
    the topology, so ``connect`` (possibly from another process) can rebuild
    the placement view and talk to the servers.
    """
    import asyncio
    import json
    import os

    async def run() -> int:
        from .kvstore import AsyncioCluster

        if args.socket_dir is not None:
            os.makedirs(args.socket_dir, exist_ok=True)
        cluster = AsyncioCluster(
            create(args.mechanism),
            server_ids=tuple(f"n{i}" for i in range(args.servers)),
            socket_dir=args.socket_dir,
        )
        await cluster.start()
        manifest = {
            "mechanism": args.mechanism,
            "server_ids": cluster.server_ids,
            "quorum": {"n": cluster.quorum.n, "r": cluster.quorum.r,
                       "w": cluster.quorum.w, "sloppy": cluster.quorum.sloppy},
            "virtual_nodes": cluster.ring.virtual_nodes,
            "partition_count": cluster.partition_map.partition_count,
            "request_timeout_ms": cluster.env.request_timeout_ms,
            "client_timeout_ms": cluster.env.client_timeout_ms,
            "request_overhead_bytes": cluster.env.request_overhead_bytes,
            "socket_dir": cluster.socket_dir,
        }
        manifest_path = os.path.join(cluster.socket_dir, "cluster.json")
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        print(f"serving {args.servers} nodes ({args.mechanism}) "
              f"on unix sockets under {cluster.socket_dir}")
        print(f"manifest: {manifest_path}")
        print("connect with: python -m repro connect "
              f"--socket-dir {cluster.socket_dir} get <key>")
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            await cluster.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0


def cmd_connect(args: argparse.Namespace) -> int:
    """One client request against a served cluster (see ``serve``)."""
    import asyncio
    import json
    import os

    from .cluster import ConsistentHashRing, Membership, PartitionMap, PlacementService
    from .kvstore import WriteLog
    from .kvstore.asyncio_cluster import AsyncClusterClient, UnixDirAddressBook
    from .kvstore.protocol import MerkleSyncStats
    from .kvstore.protocol.env import StaticProtocolEnv

    manifest_path = os.path.join(args.socket_dir, "cluster.json")
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        print(f"no cluster manifest at {manifest_path} — is `serve` running?",
              file=sys.stderr)
        return 1

    mechanism = create(manifest["mechanism"])
    ring = ConsistentHashRing(manifest["server_ids"],
                              virtual_nodes=manifest["virtual_nodes"])
    quorum = QuorumConfig(**manifest["quorum"])
    placement = PlacementService(ring, Membership(manifest["server_ids"]),
                                 quorum,
                                 partition_map=PartitionMap(manifest["partition_count"]))
    tracer, sink = _open_tracer(args.trace)
    env = StaticProtocolEnv(
        mechanism=mechanism,
        quorum=quorum,
        placement=placement,
        write_log=WriteLog(),
        merkle_stats=MerkleSyncStats(),
        request_mode="async",
        request_timeout_ms=manifest["request_timeout_ms"],
        client_timeout_ms=manifest["client_timeout_ms"],
        request_overhead_bytes=manifest["request_overhead_bytes"],
    )
    if tracer is not None:
        env.tracer = tracer

    async def run() -> int:
        client = AsyncClusterClient(args.client_id, env,
                                    UnixDirAddressBook(manifest["socket_dir"]))
        await client.start()
        try:
            if args.operation == "put":
                if args.value is None:
                    print("put needs a VALUE argument", file=sys.stderr)
                    return 2
                result = await client.put(args.key, args.value)
                if result is None:
                    print("put failed (no coordinator answered)", file=sys.stderr)
                    return 1
                print(f"ok: {args.key!r} written via {result.coordinator}")
            else:
                result = await client.get(args.key)
                if result is None:
                    print("get failed (no coordinator answered)", file=sys.stderr)
                    return 1
                values = result.values if result.values else "(not found)"
                print(f"{args.key!r} -> {values} "
                      f"({len(result.siblings)} sibling(s))")
            record = client.records[-1]
            print(f"latency: {record.latency_ms:.2f} ms "
                  f"(coordinator {record.coordinator or 'n/a'})")
            return 0
        finally:
            await client.close()
            _finish_trace(sink, args.trace)

    return asyncio.run(run())


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def _mechanism_list(value: str) -> List[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    unknown = [name for name in names if name not in available()]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown mechanism(s) {', '.join(unknown)}; known: {', '.join(available())}"
        )
    return names


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dotted version vectors (PODC 2012) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("mechanisms", help="list registered causality mechanisms") \
        .set_defaults(handler=cmd_mechanisms)

    figure1 = subparsers.add_parser("figure1", help="replay the paper's Figure 1")
    figure1.add_argument("--mechanisms", type=_mechanism_list, default=None,
                         help="comma-separated mechanism names")
    figure1.set_defaults(handler=cmd_figure1)

    scenario = subparsers.add_parser("scenario", help="replay a named scenario")
    scenario.add_argument("name", help="scenario name (see repro.workloads.named_scenarios)")
    scenario.add_argument("--mechanism", default="dvv", choices=available())
    scenario.set_defaults(handler=cmd_scenario)

    compare = subparsers.add_parser("compare",
                                    help="replay one synthetic workload under several mechanisms")
    compare.add_argument("--clients", type=int, default=24)
    compare.add_argument("--keys", type=int, default=2)
    compare.add_argument("--operations", type=int, default=200)
    compare.add_argument("--stale-reads", type=float, default=0.3, dest="stale_reads")
    compare.add_argument("--blind-writes", type=float, default=0.05, dest="blind_writes")
    compare.add_argument("--seed", type=int, default=2012)
    compare.add_argument("--mechanisms", type=_mechanism_list, default=None)
    compare.set_defaults(handler=cmd_compare)

    churn = subparsers.add_parser("churn",
                                  help="run a membership-churn scenario on the "
                                       "simulated cluster")
    churn.add_argument("--scenario", default="elasticity",
                       choices=sorted(CHURN_SCENARIOS))
    churn.add_argument("--mechanism", default="dvv", choices=available())
    churn.add_argument("--anti-entropy", default="merkle", choices=["merkle", "full"],
                       dest="anti_entropy")
    churn.add_argument("--quorum-mode", default="sloppy", choices=["strict", "sloppy"],
                       dest="quorum_mode",
                       help="strict quorums fail writes when primaries are unreachable; "
                            "sloppy quorums fall back to the next ring nodes")
    churn.add_argument("--seed", type=int, default=2012)
    churn.add_argument("--duration-ms", type=float, default=None, dest="duration_ms",
                       help="override the scenario's simulated duration "
                            "(e.g. long soak runs)")
    churn.add_argument("--zipf-s", type=float, default=None, dest="zipf_s",
                       help="override the Zipf skew exponent of skewed "
                            "scenarios (hot_key, soak)")
    churn.add_argument("--stats-json", default=None, dest="stats_json", metavar="PATH",
                       help="write the cluster's unified metrics snapshot as JSON")
    churn.add_argument("--trace", default=None, metavar="PATH",
                       help="record per-request span events as JSONL")
    churn.set_defaults(handler=cmd_churn)

    cluster = subparsers.add_parser("cluster",
                                    help="run the message-passing cluster under a "
                                         "closed-loop workload")
    cluster.add_argument("--mechanism", default="dvv", choices=available())
    cluster.add_argument("--backend", default="sim", choices=["sim", "asyncio"],
                         help="sim: deterministic simulator in virtual time; "
                              "asyncio: the same protocol over real Unix-domain "
                              "sockets, reporting wall-clock numbers")
    cluster.add_argument("--anti-entropy", default="merkle", choices=["merkle", "full"],
                         dest="anti_entropy")
    cluster.add_argument("--request-mode", default="membership",
                         choices=["membership", "async"], dest="request_mode",
                         help="membership: coordinators consult the failure detector; "
                              "async: per-replica deadlines with sloppy-quorum fallbacks")
    cluster.add_argument("--quorum-mode", default="sloppy", choices=["strict", "sloppy"],
                         dest="quorum_mode")
    cluster.add_argument("--deadline-mode", default="fixed", choices=["fixed", "adaptive"],
                         dest="deadline_mode",
                         help="async-mode replica deadlines: one fixed timeout, or an "
                              "EWMA of each replica's observed ack latency "
                              "(clamped to a floor/ceiling)")
    cluster.add_argument("--merkle-maintenance", default="incremental",
                         choices=["incremental", "rebuild"], dest="merkle_maintenance",
                         help="incremental: write-maintained hash trees (Riak-style); "
                              "rebuild: re-hash the key space on every exchange")
    cluster.add_argument("--partitions", type=int, default=16,
                         help="fixed vnode partition count: each server keeps one "
                              "store and one Merkle tree per key range")
    cluster.add_argument("--servers", type=int, default=3)
    cluster.add_argument("--clients", type=int, default=16)
    cluster.add_argument("--keys", type=int, default=2)
    cluster.add_argument("--duration-ms", type=float, default=500.0, dest="duration_ms")
    cluster.add_argument("--think-time-ms", type=float, default=5.0, dest="think_time_ms")
    cluster.add_argument("--write-fraction", type=float, default=0.6, dest="write_fraction")
    cluster.add_argument("--bytes-per-ms", type=float, default=600.0, dest="bytes_per_ms")
    cluster.add_argument("--seed", type=int, default=2012)
    cluster.add_argument("--audit", type=int, default=0, metavar="SAMPLE",
                         help="after the workload, cold-verify up to SAMPLE "
                              "stored keys per node against the maintained "
                              "Merkle index and report mismatches")
    cluster.add_argument("--stats-json", default=None, dest="stats_json", metavar="PATH",
                         help="write the cluster's unified metrics snapshot as JSON "
                              "(same schema for both backends)")
    cluster.add_argument("--trace", default=None, metavar="PATH",
                         help="record per-request span events as JSONL")
    cluster.set_defaults(handler=cmd_cluster)

    serve = subparsers.add_parser("serve",
                                  help="run an asyncio cluster on Unix-domain "
                                       "sockets until interrupted")
    serve.add_argument("--mechanism", default="dvv", choices=available())
    serve.add_argument("--servers", type=int, default=3)
    serve.add_argument("--socket-dir", default=None, dest="socket_dir",
                       help="directory for the Unix sockets and the cluster.json "
                            "manifest (default: a fresh temp dir)")
    serve.set_defaults(handler=cmd_serve)

    connect = subparsers.add_parser("connect",
                                    help="issue one request against a served "
                                         "cluster (see `serve`)")
    connect.add_argument("--socket-dir", required=True, dest="socket_dir",
                         help="the socket directory `serve` printed")
    connect.add_argument("--client-id", default="cli", dest="client_id")
    connect.add_argument("--trace", default=None, metavar="PATH",
                         help="record the request's client-side span events as JSONL")
    connect.add_argument("operation", choices=["get", "put"])
    connect.add_argument("key")
    connect.add_argument("value", nargs="?", default=None)
    connect.set_defaults(handler=cmd_connect)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
