"""Causality mechanisms: the paper's baselines, related work, and the DVV plug-ins.

This subpackage hosts every causality-tracking mechanism the paper discusses —
per-server version vectors, per-client version vectors (with and without
pruning), dotted version vectors, dotted version vector sets, version vectors
with exceptions, ordered version vectors, classic vector clocks and Lamport
clocks — together with the :class:`~repro.clocks.interface.CausalityMechanism`
strategy interface that lets the simulated store replay identical workloads
under each of them.
"""

from .causal_history_mechanism import CausalHistoryMechanism
from .client_vv import ClientVVMechanism
from .dvv_mechanism import DVVMechanism
from .dvvset_mechanism import DVVSetMechanism
from .interface import CausalityMechanism, ReadResult, Sibling, merge_histories
from .lamport import LamportClock, LamportTimestamp
from .ordered_vv import OrderedVersionVector
from .pruning import (
    DropOldestWriters,
    GoldingSafePruning,
    NoPruning,
    PrunedClientVVMechanism,
    PruningPolicy,
    SizeBoundedPruning,
)
from .registry import available, create, create_many, pruned_client_vv, register
from .server_vv import ServerVVMechanism
from .vector_clock import DottedEventStamp, DottedVectorClock, VectorClock
from .vve import DottedVVE, VersionVectorWithExceptions
from .vve_mechanism import DottedVVEMechanism

__all__ = [
    "CausalHistoryMechanism",
    "CausalityMechanism",
    "ClientVVMechanism",
    "DottedEventStamp",
    "DottedVVE",
    "DottedVVEMechanism",
    "DottedVectorClock",
    "DropOldestWriters",
    "DVVMechanism",
    "DVVSetMechanism",
    "GoldingSafePruning",
    "LamportClock",
    "LamportTimestamp",
    "NoPruning",
    "OrderedVersionVector",
    "PrunedClientVVMechanism",
    "PruningPolicy",
    "ReadResult",
    "ServerVVMechanism",
    "Sibling",
    "SizeBoundedPruning",
    "VectorClock",
    "VersionVectorWithExceptions",
    "available",
    "create",
    "create_many",
    "merge_histories",
    "pruned_client_vv",
    "register",
]
