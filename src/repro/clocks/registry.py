"""Registry of causality mechanisms, keyed by name.

Benchmarks, examples and the workload-replay harness refer to mechanisms by
short names ("dvv", "server_vv", "client_vv[size<=10]", ...) so a single
command-line flag or parameter sweep can select which mechanism a run uses.
The registry maps those names to factory callables.  Factories (rather than
instances) are registered because some mechanisms carry per-run mutable state
(e.g. pruning policies count how much they pruned).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from ..core.exceptions import ConfigurationError
from .causal_history_mechanism import CausalHistoryMechanism
from .client_vv import ClientVVMechanism
from .dvv_mechanism import DVVMechanism
from .dvvset_mechanism import DVVSetMechanism
from .interface import CausalityMechanism
from .pruning import PrunedClientVVMechanism, SizeBoundedPruning
from .server_vv import ServerVVMechanism
from .vve_mechanism import DottedVVEMechanism

MechanismFactory = Callable[[], CausalityMechanism]

_REGISTRY: Dict[str, MechanismFactory] = {}


def register(name: str, factory: MechanismFactory, overwrite: bool = False) -> None:
    """Register a mechanism factory under ``name``.

    Raises :class:`~repro.core.exceptions.ConfigurationError` when the name is
    already taken and ``overwrite`` is false, so typos in benchmark setups fail
    loudly instead of silently replacing a mechanism.
    """
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"mechanism {name!r} is already registered")
    _REGISTRY[name] = factory


def create(name: str) -> CausalityMechanism:
    """Instantiate a fresh mechanism by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown mechanism {name!r}; known: {known}") from None
    return factory()


def available() -> List[str]:
    """Names of every registered mechanism, sorted."""
    return sorted(_REGISTRY)


def create_many(names: Iterable[str]) -> Dict[str, CausalityMechanism]:
    """Instantiate several mechanisms at once (benchmark sweeps)."""
    return {name: create(name) for name in names}


def pruned_client_vv(max_entries: int) -> PrunedClientVVMechanism:
    """Factory helper for Riak-style size-bounded pruned client vectors."""
    return PrunedClientVVMechanism(SizeBoundedPruning(max_entries))


def _register_defaults() -> None:
    register("dvv", DVVMechanism)
    register("dvvset", DVVSetMechanism)
    register("server_vv", ServerVVMechanism)
    register("client_vv", ClientVVMechanism)
    register("causal_history", CausalHistoryMechanism)
    register("dotted_vve", DottedVVEMechanism)
    for threshold in (5, 10, 20):
        register(
            f"client_vv_pruned_{threshold}",
            lambda threshold=threshold: pruned_client_vv(threshold),
        )


_register_defaults()
