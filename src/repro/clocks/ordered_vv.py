"""Ordered version vectors (Wang & Amza, ICDCS 2009) — related-work baseline.

The paper's related-work section mentions a VV variant with O(1) comparison
time, at the cost of keeping the entries ordered (making other operations
non-constant) and of inheriting plain VVs' inability to track concurrent
client updates precisely.

The construction implemented here follows the idea used in that line of work:
every new version is created by incrementing exactly one entry of a vector the
writer has fully observed.  Under that discipline, the entry that was
incremented last is the *maximal* element of the version, and dominance
between two versions can be decided by looking only at the other version's
counter for that single actor:

* ``a <= b``  iff  ``a[last_a] <= b[last_a]``

The class tracks ``last_writer`` explicitly and keeps the entries in a list
sorted by counter so the maximum is always at the front — insertion therefore
costs O(n) (the trade-off the paper points out), while dominance checks cost
O(1).  When a vector is produced by a *merge* (which breaks the
single-increment discipline) the O(1) rule no longer applies and the class
transparently falls back to the full O(n) comparison, recording that it did so
(the related-work benchmark reports the fallback rate).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.comparison import Ordering
from ..core.dot import Actor
from ..core.exceptions import InvalidClockError
from ..core.version_vector import VersionVector


class OrderedVersionVector:
    """A version vector with its entries maintained in descending counter order."""

    __slots__ = ("_entries", "_last_writer", "_from_merge", "fallback_comparisons")

    def __init__(self,
                 entries: Optional[Mapping[Actor, int]] = None,
                 last_writer: Optional[Actor] = None,
                 from_merge: bool = False) -> None:
        clean: Dict[Actor, int] = {}
        for actor, counter in (entries or {}).items():
            if counter < 0:
                raise InvalidClockError(f"counter for {actor!r} must be non-negative")
            if counter > 0:
                clean[actor] = counter
        if last_writer is not None and last_writer not in clean:
            raise InvalidClockError(f"last_writer {last_writer!r} has no entry")
        # Entries sorted by (counter desc, actor asc): the head is the maximum.
        self._entries: List[Tuple[Actor, int]] = sorted(
            clean.items(), key=lambda item: (-item[1], item[0])
        )
        self._last_writer = last_writer
        self._from_merge = from_merge
        self.fallback_comparisons = 0

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "OrderedVersionVector":
        """The zero vector."""
        return cls()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def get(self, actor: Actor) -> int:
        """Counter for ``actor`` (0 when absent) — O(n) scan of the ordered list."""
        for entry_actor, counter in self._entries:
            if entry_actor == actor:
                return counter
        return 0

    @property
    def last_writer(self) -> Optional[Actor]:
        """The actor whose increment created this version (None after merges)."""
        return self._last_writer

    @property
    def from_merge(self) -> bool:
        """True when the vector was produced by a merge (O(1) rule unusable)."""
        return self._from_merge

    def entries(self) -> Dict[Actor, int]:
        """Copy of the non-zero entries."""
        return dict(self._entries)

    def to_version_vector(self) -> VersionVector:
        """Convert to a plain (unordered) version vector."""
        return VersionVector(dict(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def increment(self, actor: Actor) -> "OrderedVersionVector":
        """Create the successor version written by ``actor``.

        Maintaining the descending order on insert is the O(n) cost the paper
        notes ("VV entries must be kept ordered, leading to non constant time
        for other operations").
        """
        entries = dict(self._entries)
        entries[actor] = entries.get(actor, 0) + 1
        return OrderedVersionVector(entries, last_writer=actor, from_merge=False)

    def merge(self, other: "OrderedVersionVector") -> "OrderedVersionVector":
        """Pointwise maximum; the result loses the single-writer property."""
        entries = dict(self._entries)
        for actor, counter in other._entries:
            entries[actor] = max(entries.get(actor, 0), counter)
        return OrderedVersionVector(entries, last_writer=None, from_merge=True)

    # ------------------------------------------------------------------ #
    # Comparison
    # ------------------------------------------------------------------ #
    def dominated_by(self, other: "OrderedVersionVector") -> bool:
        """O(1) dominance test when the single-increment discipline holds.

        ``self <= other`` is decided by comparing only the entry of
        ``self.last_writer`` — the maximal element of ``self``.  Falls back to
        the full comparison (and counts the fallback) when either vector came
        from a merge.
        """
        if self._last_writer is not None and not other._from_merge and not self._from_merge:
            return self.get(self._last_writer) <= other.get(self._last_writer)
        self.fallback_comparisons += 1
        return other.to_version_vector().descends(self.to_version_vector())

    def compare(self, other: "OrderedVersionVector") -> Ordering:
        """Four-way comparison (uses the O(1) path in both directions when valid)."""
        forwards = self.dominated_by(other)       # self <= other
        backwards = other.dominated_by(self)      # other <= self
        if forwards and backwards:
            return Ordering.EQUAL
        if forwards:
            return Ordering.BEFORE
        if backwards:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    # ------------------------------------------------------------------ #
    # Dunder / formatting
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderedVersionVector):
            return NotImplemented
        return dict(self._entries) == dict(other._entries)

    def __hash__(self) -> int:
        return hash(tuple(self._entries))

    def __repr__(self) -> str:
        return (
            f"OrderedVersionVector(entries={dict(self._entries)!r}, "
            f"last_writer={self._last_writer!r}, from_merge={self._from_merge})"
        )
