"""Dotted-version-vector-set causality mechanism (the Riak integration's clock).

Instead of one DVV per sibling, the whole sibling set of a key is described by
a single :class:`~repro.core.dvvset.DVVSet`: one ``(counter, recent values)``
entry per coordinating server.  Causal behaviour is identical to the per-
sibling DVV mechanism — writes racing through the same server stay concurrent,
reads-then-writes supersede exactly what was read — but the metadata is even
more compact because the causal past shared by all siblings is stored once.
This is the variant whose evaluation inside Riak the brief announcement cites
("a significant reduction in the size of metadata, and better latency").
"""

from __future__ import annotations

from typing import List

from ..core import serialization
from ..core.dvvset import DVVSet
from ..core.version_vector import VersionVector
from .interface import CausalityMechanism, ReadResult, Sibling

DVVSetState = DVVSet  # values are Sibling records


class DVVSetMechanism(CausalityMechanism[DVVSet, VersionVector]):
    """A single dotted version vector set per key; context is a version vector."""

    name = "dvvset"
    exact = True

    # ------------------------------------------------------------------ #
    # State lifecycle
    # ------------------------------------------------------------------ #
    def empty_state(self) -> DVVSet:
        return DVVSet.empty()

    def is_empty(self, state: DVVSet) -> bool:
        return state.size() == 0

    def siblings(self, state: DVVSet) -> List[Sibling]:
        return list(state.values())

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #
    def empty_context(self) -> VersionVector:
        return VersionVector.empty()

    def read(self, state: DVVSet) -> ReadResult[VersionVector]:
        return ReadResult(siblings=self.siblings(state), context=state.join())

    def write(self,
              state: DVVSet,
              context: VersionVector,
              sibling: Sibling,
              server_id: str,
              client_id: str) -> DVVSet:
        incoming = DVVSet.new_with_context(context, sibling)
        return incoming.update(state, server_id)

    def merge(self, state_a: DVVSet, state_b: DVVSet) -> DVVSet:
        return state_a.sync(state_b)

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def metadata_entries(self, state: DVVSet) -> int:
        return state.entry_count()

    def metadata_bytes(self, state: DVVSet) -> int:
        # Only the causality metadata is measured: per-entry actor + counter +
        # one dot marker per live value, not the application values themselves.
        context_bytes = serialization.encoded_size(state.join())
        return context_bytes + 2 * state.size()

    def context_entries(self, context: VersionVector) -> int:
        return len(context)

    def context_bytes(self, context: VersionVector) -> int:
        return serialization.encoded_size(context)
