"""Per-client version vectors — the Riak (pre-DVV) baseline.

Cloud storage systems that want to track concurrency between *client* writes
with plain version vectors give every client its own entry: a write by client
``c`` with read context ``ctx`` is tagged ``ctx`` with ``c``'s entry
incremented.  This is causally exact — concurrent client writes get
incomparable vectors — but the vector grows with the number of clients that
ever wrote the key, which is unbounded in an open system.  That growth is what
forces systems like Riak to prune entries "optimistically", which is unsafe;
the pruning wrapper lives in :mod:`repro.clocks.pruning` and the damage it
causes is measured by experiment E3.

``ClientVVMechanism`` is the honest (unpruned) variant: exact causality,
unbounded metadata.  It is the paper's "inefficient" baseline in the
metadata-size experiment (E2).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import serialization
from ..core.version_vector import VersionVector
from .interface import CausalityMechanism, ReadResult, Sibling

ClientVVState = Tuple[Tuple[VersionVector, Sibling], ...]


class ClientVVMechanism(CausalityMechanism[ClientVVState, VersionVector]):
    """One version vector (keyed by client ids) per sibling."""

    name = "client_vv"
    exact = True

    # ------------------------------------------------------------------ #
    # State lifecycle
    # ------------------------------------------------------------------ #
    def empty_state(self) -> ClientVVState:
        return ()

    def is_empty(self, state: ClientVVState) -> bool:
        return not state

    def siblings(self, state: ClientVVState) -> List[Sibling]:
        return [sibling for _, sibling in state]

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #
    def empty_context(self) -> VersionVector:
        return VersionVector.empty()

    def read(self, state: ClientVVState) -> ReadResult[VersionVector]:
        context = VersionVector.empty()
        for clock, _ in state:
            context = context.merge(clock)
        return ReadResult(siblings=self.siblings(state), context=context)

    def write(self,
              state: ClientVVState,
              context: VersionVector,
              sibling: Sibling,
              server_id: str,
              client_id: str) -> ClientVVState:
        new_clock = self._mint(context, state, client_id, sibling)
        survivors = tuple(
            (clock, stored) for clock, stored in state
            if not new_clock.descends(clock)
        )
        return survivors + ((new_clock, sibling),)

    def merge(self, state_a: ClientVVState, state_b: ClientVVState) -> ClientVVState:
        combined: List[Tuple[VersionVector, Sibling]] = []
        seen = set()
        for clock, sibling in state_a + state_b:
            key = (clock, sibling.origin_dot)
            if key in seen:
                continue
            seen.add(key)
            combined.append((clock, sibling))
        survivors = tuple(
            (clock, sibling) for clock, sibling in combined
            if not any(other.dominates(clock) for other, _ in combined)
        )
        return tuple(sorted(survivors, key=lambda item: (sorted(item[0].items()), item[1].origin_dot)))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _mint(self,
              context: VersionVector,
              state: ClientVVState,
              client_id: str,
              sibling: Sibling) -> VersionVector:
        """Tag for a new write: client context with the writer's entry advanced.

        The writer's counter is supplied by the *client* (its own write
        sequence number, carried by the sibling's origin dot), which is how
        client-side vector clocks worked in Riak before server-side ids: the
        client guarantees its own counters are unique and increasing even when
        it switches coordinators, so two of its writes can never collide on
        the same vector.  The counter is additionally floored by whatever the
        context or the stored clocks already record for this client, guarding
        against misuse with foreign dots.
        """
        top = max(context.get(client_id), sibling.origin_dot.counter - 1)
        for clock, _ in state:
            top = max(top, clock.get(client_id))
        return context.with_entry(client_id, top + 1)

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def metadata_entries(self, state: ClientVVState) -> int:
        return sum(len(clock) for clock, _ in state)

    def metadata_bytes(self, state: ClientVVState) -> int:
        return sum(serialization.encoded_size(clock) for clock, _ in state)

    def context_entries(self, context: VersionVector) -> int:
        return len(context)

    def context_bytes(self, context: VersionVector) -> int:
        return serialization.encoded_size(context)
