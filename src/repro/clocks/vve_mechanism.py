"""WinFS-style mechanism: dots with version-vector-with-exceptions pasts (E6).

The related-work section of the paper notes that WinFS also keeps version
identifiers separate from the causal past, but records the past as a version
vector *with exceptions* so it can express non-contiguous event sets.  For the
single-object, replace-all-versions-you-read storage model of Dynamo-style
stores this extra power is unnecessary — DVVs with a single dot suffice — and
it costs extra metadata whenever exceptions accumulate.

``DottedVVEMechanism`` implements that design so the related-work benchmark
can show: causal behaviour identical to DVV on the storage workloads, larger
metadata footprint under interleaved concurrent writes.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import serialization
from ..core.dot import Dot
from ..core.version_vector import VersionVector
from .interface import CausalityMechanism, ReadResult, Sibling
from .vve import DottedVVE, VersionVectorWithExceptions

VVEState = Tuple[Tuple[DottedVVE, Sibling], ...]


class DottedVVEMechanism(CausalityMechanism[VVEState, VersionVectorWithExceptions]):
    """One dot + VVE causal past per sibling; context is a VVE."""

    name = "dotted_vve"
    exact = True

    # ------------------------------------------------------------------ #
    # State lifecycle
    # ------------------------------------------------------------------ #
    def empty_state(self) -> VVEState:
        return ()

    def is_empty(self, state: VVEState) -> bool:
        return not state

    def siblings(self, state: VVEState) -> List[Sibling]:
        return [sibling for _, sibling in state]

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #
    def empty_context(self) -> VersionVectorWithExceptions:
        return VersionVectorWithExceptions.empty()

    def read(self, state: VVEState) -> ReadResult[VersionVectorWithExceptions]:
        context = VersionVectorWithExceptions.empty()
        for clock, _ in state:
            context = context.merge(clock.causal_past).add_dot(clock.dot)
        return ReadResult(siblings=self.siblings(state), context=context)

    def write(self,
              state: VVEState,
              context: VersionVectorWithExceptions,
              sibling: Sibling,
              server_id: str,
              client_id: str) -> VVEState:
        counter = context.base.get(server_id)
        for clock, _ in state:
            if clock.dot.actor == server_id:
                counter = max(counter, clock.dot.counter)
            counter = max(counter, clock.causal_past.base.get(server_id))
        new_clock = DottedVVE(Dot(server_id, counter + 1), context)
        survivors = tuple(
            (clock, stored) for clock, stored in state
            if not context.contains_dot(clock.dot)
        )
        return survivors + ((new_clock, sibling),)

    def merge(self, state_a: VVEState, state_b: VVEState) -> VVEState:
        by_dot = {}
        for clock, sibling in state_a + state_b:
            existing = by_dot.get(clock.dot)
            if existing is None or clock.causal_past.descends(existing[0].causal_past):
                by_dot[clock.dot] = (clock, sibling)
        entries = list(by_dot.values())
        survivors = [
            (clock, sibling) for clock, sibling in entries
            if not any(clock.happens_before(other) for other, _ in entries)
        ]
        survivors.sort(key=lambda item: item[0].dot)
        return tuple(survivors)

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def metadata_entries(self, state: VVEState) -> int:
        return sum(clock.entry_count() for clock, _ in state)

    def metadata_bytes(self, state: VVEState) -> int:
        return sum(self._clock_bytes(clock) for clock, _ in state)

    def context_entries(self, context: VersionVectorWithExceptions) -> int:
        return context.entry_count()

    def context_bytes(self, context: VersionVectorWithExceptions) -> int:
        return self._vve_bytes(context)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _vve_bytes(vve: VersionVectorWithExceptions) -> int:
        base_bytes = serialization.encoded_size(vve.base)
        exception_bytes = sum(
            len(serialization.encode(VersionVector({exc.actor: exc.counter})))
            for exc in vve.exceptions
        )
        return base_bytes + exception_bytes

    @classmethod
    def _clock_bytes(cls, clock: DottedVVE) -> int:
        dot_bytes = len(serialization.encode(VersionVector({clock.dot.actor: clock.dot.counter})))
        return dot_bytes + cls._vve_bytes(clock.causal_past)
