"""Lamport scalar clocks.

Lamport clocks are the simplest logical clock: a single integer per process,
incremented on every local event and fast-forwarded past any timestamp seen on
a received message.  They give a total order *consistent with* causality but
cannot detect concurrency, which is why storage systems need (dotted) version
vectors.  In this library Lamport clocks serve two purposes:

* the discrete-event network simulator stamps messages with them so traces
  have a deterministic, causality-consistent tiebreak order;
* they act as the "no causality metadata" baseline in the metadata-size
  benchmark (one integer per version).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import InvalidClockError


@dataclass(frozen=True, order=True)
class LamportTimestamp:
    """An immutable Lamport timestamp ``(time, actor)``.

    The actor id is included as a tiebreak so that timestamps form a total
    order even when two processes pick the same counter value.
    """

    time: int
    actor: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise InvalidClockError(f"Lamport time must be non-negative, got {self.time}")
        if not self.actor:
            raise InvalidClockError("Lamport timestamp requires a non-empty actor id")


class LamportClock:
    """A mutable per-process Lamport clock."""

    __slots__ = ("_actor", "_time")

    def __init__(self, actor: str, start: int = 0) -> None:
        if not actor:
            raise InvalidClockError("LamportClock requires a non-empty actor id")
        if start < 0:
            raise InvalidClockError(f"LamportClock start must be non-negative, got {start}")
        self._actor = actor
        self._time = start

    @property
    def actor(self) -> str:
        """The process this clock belongs to."""
        return self._actor

    @property
    def time(self) -> int:
        """The current counter value."""
        return self._time

    def tick(self) -> LamportTimestamp:
        """Record a local event and return its timestamp."""
        self._time += 1
        return LamportTimestamp(self._time, self._actor)

    def observe(self, other: LamportTimestamp) -> LamportTimestamp:
        """Merge a received timestamp (message receipt) and record the receive event."""
        self._time = max(self._time, other.time) + 1
        return LamportTimestamp(self._time, self._actor)

    def peek(self) -> LamportTimestamp:
        """The timestamp a :meth:`tick` would produce, without advancing the clock."""
        return LamportTimestamp(self._time + 1, self._actor)

    def __repr__(self) -> str:
        return f"LamportClock(actor={self._actor!r}, time={self._time})"
