"""The pluggable causality-mechanism interface used by the simulated store.

The whole point of the paper is a comparison between *mechanisms* for tagging
and relating concurrently written versions: per-server version vectors
(Figure 1b), per-client version vectors (Riak's pre-DVV approach, optionally
pruned), dotted version vectors (Figure 1c), dotted version vector sets, and
the causal-history ground truth (Figure 1a).  To replay identical workloads
under each of them, the key-value store delegates every causality decision to
a :class:`CausalityMechanism`:

* what opaque *causal context* a GET returns to the client,
* how a PUT (carrying such a context) is tagged and which stored siblings it
  supersedes,
* how two replicas' states are merged during anti-entropy or read repair,
* how much metadata the mechanism keeps (entries and encoded bytes).

Each mechanism owns its per-key replica state (``state``) and its context
representation; the store treats both as opaque.  Alongside the
mechanism-specific clock, every stored version carries a
:class:`Sibling` record with the *ground-truth* causal history of the write,
maintained by the store independently of the mechanism, so that the analysis
layer can detect when a mechanism loses updates, falsely orders concurrent
writes, or manufactures false concurrency.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from typing import Any, Generic, List, Optional, Sequence, Tuple, TypeVar

from ..core.causal_history import CausalHistory
from ..core.dot import Dot

State = TypeVar("State")
Context = TypeVar("Context")


_sibling_ids = itertools.count(1)


@dataclass(frozen=True)
class Sibling:
    """A stored version, independent of the causality mechanism.

    Attributes
    ----------
    value:
        The application value written by the client.
    origin_dot:
        A globally unique identifier of the write event (minted by the store's
        oracle, *not* by the mechanism under test).  Used by the analysis
        layer as the ground-truth event id.
    history:
        The ground-truth causal history of the write: the union of the
        histories the writing client had observed, plus ``origin_dot``.
    writer:
        The client that issued the write (informational; used by reports).
    uid:
        A process-local sequence number so two writes of the same value are
        distinguishable in reports.
    """

    value: Any
    origin_dot: Dot
    history: CausalHistory
    writer: Optional[str] = None
    uid: int = field(default_factory=lambda: next(_sibling_ids))

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"Sibling({self.value!r}@{self.origin_dot})"


@dataclass
class ReadResult(Generic[Context]):
    """Outcome of reading a key under some mechanism."""

    siblings: List[Sibling]
    context: Context


class CausalityMechanism(abc.ABC, Generic[State, Context]):
    """Strategy interface for version tagging and conflict detection.

    Implementations must be deterministic: replaying the same sequence of
    calls must produce identical states, because the benchmarks replay one
    recorded trace under several mechanisms and compare the outcomes.
    """

    #: Short machine-readable name used by the registry and the reports.
    name: str = "abstract"

    #: Whether the mechanism is expected to track causality exactly
    #: (used by tests to decide whether divergence from the oracle is a bug).
    exact: bool = True

    # ------------------------------------------------------------------ #
    # Key state lifecycle
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def empty_state(self) -> State:
        """The replica-local state of a key that has never been written."""

    @abc.abstractmethod
    def is_empty(self, state: State) -> bool:
        """True when the state holds no live versions."""

    @abc.abstractmethod
    def siblings(self, state: State) -> List[Sibling]:
        """The live (concurrent) versions currently stored in ``state``."""

    # ------------------------------------------------------------------ #
    # Client-visible protocol
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def empty_context(self) -> Context:
        """The context a client uses before its first read (blind write)."""

    @abc.abstractmethod
    def read(self, state: State) -> ReadResult[Context]:
        """Return the live versions and the causal context for a GET."""

    @abc.abstractmethod
    def write(self,
              state: State,
              context: Context,
              sibling: Sibling,
              server_id: str,
              client_id: str) -> State:
        """Apply a client PUT carrying ``context`` at coordinating ``server_id``.

        The returned state must contain ``sibling`` (the new version) plus
        whatever previously stored versions the mechanism deems concurrent
        with it.  Versions the mechanism considers superseded are dropped —
        rightly or wrongly; the analysis layer judges that against the ground
        truth.
        """

    @abc.abstractmethod
    def merge(self, state_a: State, state_b: State) -> State:
        """Merge the states of two replicas (anti-entropy / read repair)."""

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def metadata_entries(self, state: State) -> int:
        """Logical number of causality-metadata entries stored for the key."""

    @abc.abstractmethod
    def metadata_bytes(self, state: State) -> int:
        """Encoded size in bytes of the causality metadata stored for the key."""

    @abc.abstractmethod
    def context_entries(self, context: Context) -> int:
        """Logical number of entries in a client context (what travels on GET/PUT)."""

    @abc.abstractmethod
    def context_bytes(self, context: Context) -> int:
        """Encoded size in bytes of a client context."""

    # ------------------------------------------------------------------ #
    # Conveniences shared by implementations
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line human description used in benchmark reports."""
        return f"{self.name} ({'exact' if self.exact else 'approximate'})"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} name={self.name!r}>"


def merge_histories(siblings: Sequence[Sibling]) -> CausalHistory:
    """Union of the ground-truth histories of a sibling set.

    This is what a reading client "knows" after a GET, and therefore the
    ground-truth causal past of its next write.
    """
    merged = CausalHistory.empty()
    for sibling in siblings:
        merged = merged.merge(sibling.history)
    return merged
