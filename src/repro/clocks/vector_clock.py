"""Classic vector clocks (Fidge/Mattern style).

Vector clocks track causality between *all* events of a distributed
computation, not just the events that create new data versions.  The paper's
related-work section points out that the dotted construction applies equally
to vector clocks; :class:`DottedVectorClock` below demonstrates that: the last
local event is kept as an explicit dot, so the happened-before check between
two stamped events is a single lookup.

These clocks are used by the network simulator's instrumentation (to validate
that message delivery respects causality) and by the related-work benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.comparison import Ordering
from ..core.dot import Dot
from ..core.exceptions import InvalidClockError
from ..core.version_vector import VersionVector


class VectorClock:
    """A mutable per-process vector clock counting every event."""

    __slots__ = ("_actor", "_vector")

    def __init__(self, actor: str, initial: Optional[VersionVector] = None) -> None:
        if not actor:
            raise InvalidClockError("VectorClock requires a non-empty actor id")
        self._actor = actor
        self._vector = initial if initial is not None else VersionVector.empty()

    @property
    def actor(self) -> str:
        """The process that owns (and increments) this clock."""
        return self._actor

    @property
    def vector(self) -> VersionVector:
        """The current vector value (immutable snapshot)."""
        return self._vector

    def tick(self) -> VersionVector:
        """Record a local event; return the event's timestamp."""
        self._vector = self._vector.increment(self._actor)
        return self._vector

    def send(self) -> VersionVector:
        """Record a send event and return the timestamp to attach to the message."""
        return self.tick()

    def receive(self, message_stamp: VersionVector) -> VersionVector:
        """Record a receive event, merging the message's timestamp first."""
        self._vector = self._vector.merge(message_stamp).increment(self._actor)
        return self._vector

    def compare_to(self, other_stamp: VersionVector) -> Ordering:
        """Causal comparison of the current value against another timestamp."""
        return self._vector.compare(other_stamp)

    def __repr__(self) -> str:
        return f"VectorClock(actor={self._actor!r}, vector={self._vector!r})"


@dataclass(frozen=True)
class DottedEventStamp:
    """An event timestamp in dotted form: the event's own dot plus its past.

    This is the vector-clock analogue of the paper's construction: because the
    event identifier is explicit, ``a`` happened-before ``b`` is decided by the
    O(1) test ``b.past.contains_dot(a.dot) or b.dot == ...`` instead of a full
    vector comparison.
    """

    dot: Dot
    past: VersionVector

    def happens_before(self, other: "DottedEventStamp") -> bool:
        """O(1) happened-before test between two stamped events."""
        return self.dot != other.dot and other.past.contains_dot(self.dot)

    def concurrent_with(self, other: "DottedEventStamp") -> bool:
        """O(1) concurrency test between two stamped events."""
        if self.dot == other.dot:
            return False
        return not other.past.contains_dot(self.dot) and not self.past.contains_dot(other.dot)

    def compare(self, other: "DottedEventStamp") -> Ordering:
        """Four-way causal comparison."""
        if self.dot == other.dot:
            return Ordering.EQUAL
        if self.happens_before(other):
            return Ordering.BEFORE
        if other.happens_before(self):
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def to_vector(self) -> VersionVector:
        """Fold the dot back into a plain vector timestamp."""
        return self.past.with_entry(
            self.dot.actor, max(self.past.get(self.dot.actor), self.dot.counter)
        )


class DottedVectorClock:
    """A vector clock whose event stamps carry an explicit dot.

    Demonstrates the paper's remark that the dotted decomposition applies to
    general vector clocks, not only to storage-system version vectors.
    """

    __slots__ = ("_actor", "_vector")

    def __init__(self, actor: str) -> None:
        if not actor:
            raise InvalidClockError("DottedVectorClock requires a non-empty actor id")
        self._actor = actor
        self._vector = VersionVector.empty()

    @property
    def actor(self) -> str:
        """The process that owns this clock."""
        return self._actor

    @property
    def vector(self) -> VersionVector:
        """The current (undotted) vector value."""
        return self._vector

    def tick(self) -> DottedEventStamp:
        """Record a local event and return its dotted stamp."""
        past = self._vector
        self._vector = self._vector.increment(self._actor)
        return DottedEventStamp(Dot(self._actor, self._vector.get(self._actor)), past)

    def send(self) -> DottedEventStamp:
        """Record a send event; the returned stamp travels with the message."""
        return self.tick()

    def receive(self, stamp: DottedEventStamp) -> DottedEventStamp:
        """Record a receive event, absorbing the message's stamp."""
        self._vector = self._vector.merge(stamp.to_vector())
        return self.tick()

    def __repr__(self) -> str:
        return f"DottedVectorClock(actor={self._actor!r}, vector={self._vector!r})"
