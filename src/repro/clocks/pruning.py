"""Version-vector pruning: what the paper calls unsafe, quantified.

Per-client version vectors grow with the number of distinct writers, so
production systems bound them by discarding entries — Riak's historical
``small_vclock`` / ``big_vclock`` / ``young_vclock`` / ``old_vclock`` settings
are exactly this.  The paper's point (Section 2) is that such optimistic
pruning is **unsafe**: dropping an entry changes the denoted causal history,
which can make a newer version appear concurrent with (or dominated by) an
older one, yielding *false concurrency* and *lost updates*.  Golding's
safe alternative requires global knowledge of what every replica has seen,
which an open set of clients cannot provide.

This module provides:

* :class:`PruningPolicy` implementations — size-bounded (Riak-style) and
  oldest-entry policies, plus :class:`GoldingSafePruning`, which only drops
  entries provably included everywhere (and therefore needs the global
  knowledge the paper mentions);
* :class:`PrunedClientVVMechanism`, the per-client VV mechanism wrapped with a
  policy, used by experiment E3 to measure lost updates and false concurrency
  as a function of the pruning threshold.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.version_vector import VersionVector
from .client_vv import ClientVVMechanism, ClientVVState
from .interface import ReadResult, Sibling


class PruningPolicy(abc.ABC):
    """Strategy deciding which version-vector entries to discard."""

    #: Human-readable policy name, used in benchmark reports.
    name: str = "abstract"

    @abc.abstractmethod
    def prune(self, vector: VersionVector) -> VersionVector:
        """Return the (possibly smaller) vector that will actually be stored."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__}>"


class NoPruning(PruningPolicy):
    """Identity policy — keeps the exact vector (the safe but unbounded option)."""

    name = "none"

    def prune(self, vector: VersionVector) -> VersionVector:
        return vector


class SizeBoundedPruning(PruningPolicy):
    """Keep at most ``max_entries`` entries, discarding the smallest counters first.

    Discarding the entries with the smallest counters mimics Riak's heuristic
    of dropping the entries least likely to matter (the "oldest" writers); the
    point of experiment E3 is that "least likely" is not "never", and the
    damage is measurable.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.name = f"size<={max_entries}"
        self.pruned_entries = 0

    def prune(self, vector: VersionVector) -> VersionVector:
        if len(vector) <= self.max_entries:
            return vector
        # Keep the entries with the largest counters (ties broken by actor id
        # so the result is deterministic).
        ranked = sorted(vector.entries().items(), key=lambda item: (-item[1], item[0]))
        kept = dict(ranked[: self.max_entries])
        self.pruned_entries += len(vector) - len(kept)
        return VersionVector(kept)


class DropOldestWriters(PruningPolicy):
    """Drop the entries of the ``drop_count`` actors with the smallest counters.

    A more aggressive policy used to stress the failure mode: the number of
    *dropped* entries (rather than the number kept) is fixed per prune.
    """

    def __init__(self, drop_count: int) -> None:
        if drop_count < 1:
            raise ValueError(f"drop_count must be >= 1, got {drop_count}")
        self.drop_count = drop_count
        self.name = f"drop_oldest({drop_count})"

    def prune(self, vector: VersionVector) -> VersionVector:
        if len(vector) <= self.drop_count:
            return vector
        ranked = sorted(vector.entries().items(), key=lambda item: (item[1], item[0]))
        to_drop = {actor for actor, _ in ranked[: self.drop_count]}
        return vector.without(to_drop)


class GoldingSafePruning(PruningPolicy):
    """Safe pruning à la Golding: only drop entries everyone is known to have seen.

    The policy is fed a *global knowledge* vector (the pointwise minimum of
    what every replica has acknowledged).  Entries at or below that floor are
    part of every replica's causal past, so removing them cannot change any
    comparison.  Maintaining the floor requires coordination with *all*
    replicas — exactly the global knowledge the paper says open client sets
    cannot provide, which is why this policy only helps when the actor space
    is the (small, known) set of servers.
    """

    name = "golding_safe"

    def __init__(self, global_floor: Optional[VersionVector] = None) -> None:
        self.global_floor = global_floor or VersionVector.empty()

    def observe_replica_knowledge(self, vectors: Iterable[VersionVector]) -> None:
        """Recompute the floor as the pointwise minimum over all replicas' knowledge."""
        vectors = list(vectors)
        if not vectors:
            self.global_floor = VersionVector.empty()
            return
        actors = set()
        for vector in vectors:
            actors |= vector.actors()
        floor: Dict[str, int] = {}
        for actor in actors:
            floor[actor] = min(vector.get(actor) for vector in vectors)
        self.global_floor = VersionVector(floor)

    def prune(self, vector: VersionVector) -> VersionVector:
        survivors = {
            actor: counter
            for actor, counter in vector.entries().items()
            if counter > self.global_floor.get(actor)
        }
        return VersionVector(survivors)


class PrunedClientVVMechanism(ClientVVMechanism):
    """Per-client version vectors with a pruning policy applied after every write.

    The causal damage (lost updates, false concurrency) is *not* simulated
    here — it emerges naturally from replaying workloads, because pruned
    vectors simply compare differently; the analysis layer observes the
    consequences against the ground truth.
    """

    exact = False

    def __init__(self, policy: PruningPolicy) -> None:
        self.policy = policy
        self.name = f"client_vv[{policy.name}]"

    def write(self,
              state: ClientVVState,
              context: VersionVector,
              sibling: Sibling,
              server_id: str,
              client_id: str) -> ClientVVState:
        new_state = super().write(state, context, sibling, server_id, client_id)
        pruned: List[Tuple[VersionVector, Sibling]] = []
        for clock, stored in new_state:
            pruned.append((self.policy.prune(clock), stored))
        return tuple(pruned)
