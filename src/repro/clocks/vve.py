"""Version vectors with exceptions (VVE), as used by WinFS.

The paper's related-work section discusses WinFS's *concise version vectors*
(Malkhi & Terry): the causal past of the whole replica is a version vector,
but individual items carry version identifiers, and the vector may contain
*exceptions* — events below an actor's maximum that are **not** part of the
history.  VVEs can therefore represent arbitrary (non-contiguous) sets of
events, unlike plain version vectors which only encode prefixes.

We implement VVEs both as a general-purpose exact dot-set (used by the
anti-entropy log exchange in the store) and as a baseline causality mechanism
in the related-work benchmark (E6): correct like DVV, but with a potentially
larger footprint because exceptions accumulate under interleaved updates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from ..core.causal_history import CausalHistory
from ..core.comparison import Ordering
from ..core.dot import Actor, Dot
from ..core.exceptions import InvalidClockError
from ..core.version_vector import VersionVector


class VersionVectorWithExceptions:
    """An exact, immutable set of dots: per-actor maximum plus exception set.

    For each actor the structure stores the highest counter seen (``base``)
    and the set of counters *below* the base that are missing (``exceptions``).
    The denoted history is ``{(a, n) | 1 <= n <= base[a]} \\ exceptions``.
    """

    __slots__ = ("_base", "_exceptions", "_encoded", "_fingerprint")

    def __init__(self,
                 base: Optional[Mapping[Actor, int]] = None,
                 exceptions: Iterable[Dot] = ()) -> None:
        base_vv = VersionVector(base or {})
        exception_set = frozenset(exceptions)
        for exc in exception_set:
            if not isinstance(exc, Dot):
                raise InvalidClockError(f"exceptions must be Dots, got {exc!r}")
            if exc.counter > base_vv.get(exc.actor):
                raise InvalidClockError(
                    f"exception {exc} lies above the base counter {base_vv.get(exc.actor)}"
                )
        object.__setattr__(self, "_base", base_vv)
        object.__setattr__(self, "_exceptions", exception_set)
        object.__setattr__(self, "_encoded", None)
        object.__setattr__(self, "_fingerprint", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"VersionVectorWithExceptions is immutable; cannot set {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"VersionVectorWithExceptions is immutable; cannot delete {name!r}"
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "VersionVectorWithExceptions":
        """The empty event set."""
        return cls()

    @classmethod
    def from_dots(cls, dots: Iterable[Dot]) -> "VersionVectorWithExceptions":
        """Exact representation of an arbitrary dot set."""
        dots = set(dots)
        base: Dict[Actor, int] = {}
        for d in dots:
            base[d.actor] = max(base.get(d.actor, 0), d.counter)
        exceptions: Set[Dot] = set()
        for actor, top in base.items():
            for counter in range(1, top + 1):
                candidate = Dot(actor, counter)
                if candidate not in dots:
                    exceptions.add(candidate)
        return cls(base, exceptions)

    @classmethod
    def from_version_vector(cls, vv: VersionVector) -> "VersionVectorWithExceptions":
        """Lift a plain version vector (no exceptions)."""
        return cls(vv.entries(), ())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def base(self) -> VersionVector:
        """The per-actor maxima."""
        return self._base

    @property
    def exceptions(self) -> FrozenSet[Dot]:
        """The missing dots below the base."""
        return self._exceptions

    def contains_dot(self, dot: Dot) -> bool:
        """Exact membership test (O(1) expected)."""
        return dot.counter <= self._base.get(dot.actor) and dot not in self._exceptions

    def dots(self) -> Iterator[Dot]:
        """Enumerate the denoted event set."""
        for actor, top in self._base.items():
            for counter in range(1, top + 1):
                candidate = Dot(actor, counter)
                if candidate not in self._exceptions:
                    yield candidate

    def entry_count(self) -> int:
        """Logical metadata footprint: base entries plus exception records."""
        return len(self._base) + len(self._exceptions)

    def __len__(self) -> int:
        return self._base.total_events() - len(self._exceptions)

    def __contains__(self, dot: Dot) -> bool:
        return self.contains_dot(dot)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add_dot(self, dot: Dot) -> "VersionVectorWithExceptions":
        """Return a copy whose event set additionally contains ``dot``.

        If the dot is above the actor's current base, the counters in between
        become exceptions (they have not been seen); if it fills an existing
        exception, the exception disappears.
        """
        if self.contains_dot(dot):
            return self
        base = self._base.entries()
        exceptions = set(self._exceptions)
        current = base.get(dot.actor, 0)
        if dot.counter > current:
            for missing in range(current + 1, dot.counter):
                exceptions.add(Dot(dot.actor, missing))
            base[dot.actor] = dot.counter
        else:
            exceptions.discard(dot)
        return VersionVectorWithExceptions(base, exceptions)

    def merge(self, other: "VersionVectorWithExceptions") -> "VersionVectorWithExceptions":
        """Set union of the two event sets."""
        base = self._base.merge(other._base)
        exceptions: Set[Dot] = set()
        for candidate in set(self._exceptions) | set(other._exceptions):
            if not self.contains_dot(candidate) and not other.contains_dot(candidate):
                exceptions.add(candidate)
        return VersionVectorWithExceptions(base.entries(), exceptions)

    def next_dot(self, actor: Actor) -> Dot:
        """The dot a new local event of ``actor`` should use (one past the base)."""
        return Dot(actor, self._base.get(actor) + 1)

    # ------------------------------------------------------------------ #
    # Comparison
    # ------------------------------------------------------------------ #
    def descends(self, other: "VersionVectorWithExceptions") -> bool:
        """True iff this event set is a superset of ``other``'s."""
        if not self._base.descends(other._base):
            return False
        return all(self.contains_dot(dot) for dot in other.dots())

    def compare(self, other: "VersionVectorWithExceptions") -> Ordering:
        """Causal comparison by (exact) set inclusion."""
        forwards = self.descends(other)
        backwards = other.descends(self)
        if forwards and backwards:
            return Ordering.EQUAL
        if forwards:
            return Ordering.AFTER
        if backwards:
            return Ordering.BEFORE
        return Ordering.CONCURRENT

    def to_causal_history(self) -> CausalHistory:
        """Denotation as an explicit causal history."""
        return CausalHistory(None, self.dots())

    # ------------------------------------------------------------------ #
    # Dunder / formatting
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVectorWithExceptions):
            return NotImplemented
        return self._base == other._base and self._exceptions == other._exceptions

    def __hash__(self) -> int:
        return hash((self._base, self._exceptions))

    def __repr__(self) -> str:
        return (
            f"VersionVectorWithExceptions(base={self._base!r}, "
            f"exceptions={sorted(self._exceptions)!r})"
        )

    def __str__(self) -> str:
        exc = ",".join(f"{d.actor}{d.counter}" for d in sorted(self._exceptions))
        return f"{self._base}-{{{exc}}}" if exc else str(self._base)


class DottedVVE:
    """A version identified by a dot with a VVE causal past (WinFS-style item clock).

    The related-work baseline for E6: causally exact like a DVV, but the causal
    past can carry exceptions, so the footprint is ``#actors + #exceptions``
    rather than being bounded by the number of replicas.
    """

    __slots__ = ("_dot", "_past", "_encoded", "_fingerprint")

    def __init__(self, dot: Dot, past: VersionVectorWithExceptions) -> None:
        object.__setattr__(self, "_dot", dot)
        object.__setattr__(self, "_past", past)
        object.__setattr__(self, "_encoded", None)
        object.__setattr__(self, "_fingerprint", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"DottedVVE is immutable; cannot set {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"DottedVVE is immutable; cannot delete {name!r}"
        )

    @property
    def dot(self) -> Dot:
        """The version identifier."""
        return self._dot

    @property
    def causal_past(self) -> VersionVectorWithExceptions:
        """The exact causal past of the version."""
        return self._past

    def contains_dot(self, dot: Dot) -> bool:
        """Membership of a dot in the version's history."""
        return dot == self._dot or self._past.contains_dot(dot)

    def happens_before(self, other: "DottedVVE") -> bool:
        """O(1) happened-before via the explicit dot."""
        return self._dot != other._dot and other._past.contains_dot(self._dot)

    def compare(self, other: "DottedVVE") -> Ordering:
        """Four-way causal comparison."""
        if self._dot == other._dot:
            return Ordering.EQUAL
        if self.happens_before(other):
            return Ordering.BEFORE
        if other.happens_before(self):
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def to_causal_history(self) -> CausalHistory:
        """Denotation as an explicit causal history."""
        return CausalHistory(self._dot, self._past.dots())

    def entry_count(self) -> int:
        """Metadata footprint: past entries plus the dot."""
        return self._past.entry_count() + 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DottedVVE):
            return NotImplemented
        return self._dot == other._dot and self._past == other._past

    def __hash__(self) -> int:
        return hash((self._dot, self._past))

    def __repr__(self) -> str:
        return f"DottedVVE(dot={self._dot!r}, past={self._past!r})"


# ---------------------------------------------------------------------- #
# Canonical-bytes registration
# ---------------------------------------------------------------------- #
# The WinFS baselines live outside repro.core, so they opt in to the
# canonical-bytes layer here (codec cannot import this module — it would be a
# cycle).  The byte layouts deliberately match the wire codec's "E" and "X"
# tags so network frames can embed the cached encodings verbatim.
def _encode_vve(clock: VersionVectorWithExceptions) -> bytes:
    out = bytearray(b"E")
    out += codec._encode_vv_body(clock.base)
    exceptions = sorted(clock.exceptions)
    out += codec._encode_varint(len(exceptions))
    for dot in exceptions:
        out += codec._encode_str(dot.actor)
        out += codec._encode_varint(dot.counter)
    return bytes(out)


def _encode_dotted_vve(clock: DottedVVE) -> bytes:
    return (
        b"X"
        + codec._encode_str(clock.dot.actor)
        + codec._encode_varint(clock.dot.counter)
        + codec.canonical_bytes(clock.causal_past)
    )


from ..core import codec  # noqa: E402  (bottom import breaks the cycle)

codec.register_encoder(VersionVectorWithExceptions, _encode_vve)
codec.register_encoder(DottedVVE, _encode_dotted_vve)
