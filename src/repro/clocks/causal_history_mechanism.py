"""Explicit causal histories as a storage mechanism — the Figure 1a oracle.

Tagging every stored version with its full causal history is exact by
construction (set inclusion *is* the happens-before relation) but the sets
grow linearly with the total number of writes ever applied to the key, which
is why no practical system ships it.  In this library the mechanism serves
two purposes:

* it is the ground-truth mechanism the analysis layer compares every other
  mechanism against (its decisions can never be wrong);
* it is the "upper bound" curve in the metadata-size experiment (E2), showing
  what exactness costs without the DVV encoding.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import serialization
from ..core.causal_history import CausalHistory
from .interface import CausalityMechanism, ReadResult, Sibling

HistoryState = Tuple[Tuple[CausalHistory, Sibling], ...]


class CausalHistoryMechanism(CausalityMechanism[HistoryState, CausalHistory]):
    """One explicit causal history per sibling; context is a causal history."""

    name = "causal_history"
    exact = True

    # ------------------------------------------------------------------ #
    # State lifecycle
    # ------------------------------------------------------------------ #
    def empty_state(self) -> HistoryState:
        return ()

    def is_empty(self, state: HistoryState) -> bool:
        return not state

    def siblings(self, state: HistoryState) -> List[Sibling]:
        return [sibling for _, sibling in state]

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #
    def empty_context(self) -> CausalHistory:
        return CausalHistory.empty()

    def read(self, state: HistoryState) -> ReadResult[CausalHistory]:
        context = CausalHistory.empty()
        for clock, _ in state:
            context = context.merge(clock)
        return ReadResult(siblings=self.siblings(state), context=context)

    def write(self,
              state: HistoryState,
              context: CausalHistory,
              sibling: Sibling,
              server_id: str,
              client_id: str) -> HistoryState:
        new_clock = CausalHistory(sibling.origin_dot, context.events())
        survivors = tuple(
            (clock, stored) for clock, stored in state
            if not clock.events() <= context.events()
        )
        return survivors + ((new_clock, sibling),)

    def merge(self, state_a: HistoryState, state_b: HistoryState) -> HistoryState:
        combined: List[Tuple[CausalHistory, Sibling]] = []
        seen = set()
        for clock, sibling in state_a + state_b:
            key = (clock.event, clock.events())
            if key in seen:
                continue
            seen.add(key)
            combined.append((clock, sibling))
        survivors = [
            (clock, sibling) for clock, sibling in combined
            if not any(clock.happens_before(other) for other, _ in combined)
        ]
        survivors.sort(key=lambda item: item[1].origin_dot)
        return tuple(survivors)

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def metadata_entries(self, state: HistoryState) -> int:
        return sum(len(clock) for clock, _ in state)

    def metadata_bytes(self, state: HistoryState) -> int:
        return sum(serialization.encoded_size(clock) for clock, _ in state)

    def context_entries(self, context: CausalHistory) -> int:
        return len(context)

    def context_bytes(self, context: CausalHistory) -> int:
        return serialization.encoded_size(context)
