"""Per-server version vectors — the Figure 1b baseline (and its failure mode).

Distributed file systems (Locus, Coda, Ficus) and early key-value stores tag
each version with a version vector holding **one entry per replica server**.
That is enough to detect divergence between servers, but — as Section 2 of the
paper explains — it cannot identify versions written concurrently by multiple
clients through the same server: any vector the server mints for the second
write *dominates* the vector of the first (``[2,0] < [3,0]`` in the figure),
so when the two versions later meet (e.g. at server B during anti-entropy) the
genuinely concurrent sibling is silently discarded — a lost update.

``ServerVVMechanism`` reproduces that behaviour faithfully:

* at write time the coordinating server detects the conflict (the client's
  context does not descend the stored versions) and keeps both siblings, but
  the new sibling's vector already dominates the old one's;
* at merge time versions are compared by their vectors, so the falsely
  dominated sibling is dropped.

The mechanism is registered as *inexact* — the test-suite asserts that it
diverges from the causal-history oracle on exactly this scenario.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import serialization
from ..core.version_vector import VersionVector
from .interface import CausalityMechanism, ReadResult, Sibling

ServerVVState = Tuple[Tuple[VersionVector, Sibling], ...]


class ServerVVMechanism(CausalityMechanism[ServerVVState, VersionVector]):
    """One version vector (keyed by server ids) per sibling."""

    name = "server_vv"
    exact = False

    # ------------------------------------------------------------------ #
    # State lifecycle
    # ------------------------------------------------------------------ #
    def empty_state(self) -> ServerVVState:
        return ()

    def is_empty(self, state: ServerVVState) -> bool:
        return not state

    def siblings(self, state: ServerVVState) -> List[Sibling]:
        return [sibling for _, sibling in state]

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #
    def empty_context(self) -> VersionVector:
        return VersionVector.empty()

    def read(self, state: ServerVVState) -> ReadResult[VersionVector]:
        context = VersionVector.empty()
        for clock, _ in state:
            context = context.merge(clock)
        return ReadResult(siblings=self.siblings(state), context=context)

    def write(self,
              state: ServerVVState,
              context: VersionVector,
              sibling: Sibling,
              server_id: str,
              client_id: str) -> ServerVVState:
        # The server must mint a vector that is new w.r.t. everything it has
        # already stored, so it increments its own entry on top of the join of
        # the stored vectors and the client's context.  This is precisely the
        # step that makes the new vector dominate concurrent siblings.
        stored_join = VersionVector.empty()
        for clock, _ in state:
            stored_join = stored_join.merge(clock)
        new_clock = stored_join.merge(context).increment(server_id)
        # Conflict detection at the coordinator uses the client context: any
        # stored version the client had not seen is kept as a sibling.
        survivors = tuple(
            (clock, stored) for clock, stored in state
            if not context.descends(clock)
        )
        return survivors + ((new_clock, sibling),)

    def merge(self, state_a: ServerVVState, state_b: ServerVVState) -> ServerVVState:
        # Anti-entropy has only the vectors to go by; versions whose vector is
        # dominated by another version's vector are discarded.  Because the
        # coordinator's minting step above already made concurrent siblings
        # comparable, this is where the lost update happens.
        combined: List[Tuple[VersionVector, Sibling]] = []
        for clock, sibling in state_a + state_b:
            if any(clock == other and sibling.origin_dot == s.origin_dot
                   for other, s in combined):
                continue
            combined.append((clock, sibling))
        survivors = [
            (clock, sibling) for clock, sibling in combined
            if not any(other.dominates(clock) for other, _ in combined)
        ]
        # Two distinct versions can carry the *same* vector (e.g. replicas that
        # coordinated writes independently); keep one deterministically.
        deduped: List[Tuple[VersionVector, Sibling]] = []
        seen_clocks = set()
        for clock, sibling in sorted(survivors, key=lambda item: (sorted(item[0].items()), item[1].origin_dot)):
            if clock in seen_clocks:
                continue
            seen_clocks.add(clock)
            deduped.append((clock, sibling))
        return tuple(deduped)

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def metadata_entries(self, state: ServerVVState) -> int:
        return sum(len(clock) for clock, _ in state)

    def metadata_bytes(self, state: ServerVVState) -> int:
        return sum(serialization.encoded_size(clock) for clock, _ in state)

    def context_entries(self, context: VersionVector) -> int:
        return len(context)

    def context_bytes(self, context: VersionVector) -> int:
        return serialization.encoded_size(context)
