"""Dotted-version-vector causality mechanism (the paper's proposal, Figure 1c).

Each stored sibling is tagged with a :class:`~repro.core.dvv.DottedVersionVector`
whose dot is minted by the *coordinating server* — so the metadata footprint is
bounded by the replication degree — and whose causal past is exactly the
context the writing client supplied.  Two clients racing through the same
server therefore receive clocks with distinct dots over the same causal past
(``(A,2)[1,0]`` and ``(A,3)[1,0]`` in the figure) and are correctly detected
as concurrent everywhere, while a client that read before writing supersedes
precisely the versions it read.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import serialization
from ..core.dvv import DottedVersionVector, join as dvv_join, update as dvv_update
from ..core.version_vector import VersionVector
from .interface import CausalityMechanism, ReadResult, Sibling

DVVState = Tuple[Tuple[DottedVersionVector, Sibling], ...]


class DVVMechanism(CausalityMechanism[DVVState, VersionVector]):
    """One dotted version vector per sibling; context is a plain version vector."""

    name = "dvv"
    exact = True

    # ------------------------------------------------------------------ #
    # State lifecycle
    # ------------------------------------------------------------------ #
    def empty_state(self) -> DVVState:
        return ()

    def is_empty(self, state: DVVState) -> bool:
        return not state

    def siblings(self, state: DVVState) -> List[Sibling]:
        return [sibling for _, sibling in state]

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #
    def empty_context(self) -> VersionVector:
        return VersionVector.empty()

    def read(self, state: DVVState) -> ReadResult[VersionVector]:
        clocks = [clock for clock, _ in state]
        return ReadResult(siblings=self.siblings(state), context=dvv_join(clocks))

    def write(self,
              state: DVVState,
              context: VersionVector,
              sibling: Sibling,
              server_id: str,
              client_id: str) -> DVVState:
        clocks = [clock for clock, _ in state]
        new_clock = dvv_update(context, clocks, server_id)
        survivors = tuple(
            (clock, stored) for clock, stored in state
            if not context.contains_dot(clock.dot)
        )
        return survivors + ((new_clock, sibling),)

    def merge(self, state_a: DVVState, state_b: DVVState) -> DVVState:
        by_dot = {}
        for clock, sibling in state_a + state_b:
            existing = by_dot.get(clock.dot)
            if existing is None or clock.causal_past.descends(existing[0].causal_past):
                by_dot[clock.dot] = (clock, sibling)
        entries = list(by_dot.values())
        survivors = [
            (clock, sibling) for clock, sibling in entries
            if not any(clock.happens_before(other) for other, _ in entries)
        ]
        survivors.sort(key=lambda item: item[0].dot)
        return tuple(survivors)

    # ------------------------------------------------------------------ #
    # Metadata accounting
    # ------------------------------------------------------------------ #
    def metadata_entries(self, state: DVVState) -> int:
        return sum(serialization.entry_count(clock) for clock, _ in state)

    def metadata_bytes(self, state: DVVState) -> int:
        return sum(serialization.encoded_size(clock) for clock, _ in state)

    def context_entries(self, context: VersionVector) -> int:
        return len(context)

    def context_bytes(self, context: VersionVector) -> int:
        return serialization.encoded_size(context)
