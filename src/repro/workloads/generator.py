"""Synthetic workload generation.

The paper's quantitative results come from running a storage cluster under
client traffic; since the original traces are not available, this module
generates parameterised synthetic workloads that exercise the behaviours the
evaluation depends on:

* many clients performing read-modify-write sessions on a shared set of keys
  (the clock-growth driver for per-client version vectors);
* deliberate concurrency: several clients holding stale contexts writing the
  same key (the sibling driver);
* occasional blind writes and session resets (what real, imperfect clients do);
* periodic anti-entropy between replicas.

The output is a mechanism-agnostic :class:`~repro.workloads.traces.Trace`, so
one generated workload can be replayed under every causality mechanism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.exceptions import ConfigurationError
from .traces import Operation, OpType, Trace


def zipf_weights(count: int, s: float) -> List[float]:
    """Zipfian popularity weights for ``count`` ranked keys.

    ``s`` is the skew exponent: 0 gives uniform weights, ~1 the classic
    web-traffic skew where the rank-0 key dominates.  Shared by the trace
    generator and the closed-loop cluster drivers so "hot key" means the
    same thing in both worlds (rank 0 = hottest).
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if s <= 0:
        return [1.0] * count
    return [1.0 / ((rank + 1) ** s) for rank in range(count)]


@dataclass
class WorkloadConfig:
    """Parameters of a synthetic workload.

    Attributes
    ----------
    clients:
        Number of distinct client sessions.
    servers:
        Replica server ids.
    keys:
        Number of distinct keys (keys are named ``key-0`` ... ``key-{n-1}``).
    operations:
        Total number of client operations to generate (excluding syncs).
    read_probability:
        Probability that an operation is a GET (the rest are writes).
    blind_write_probability:
        Probability that a write ignores the client's context.
    forget_probability:
        Probability, per operation, that the acting client first drops its
        context for the key (session reset).
    sync_every:
        Insert a full anti-entropy round every this many client operations
        (None disables background sync; the trace can still end with one).
    final_sync:
        Append a final full sync so replicas converge before analysis.
    zipf_s:
        Skew of the key-popularity distribution (0 = uniform).  Higher values
        concentrate traffic on few keys, increasing write concurrency.
    stale_read_probability:
        Probability that a writing client *skips* the read it would normally
        do first, reusing an old context — the knob that directly creates
        concurrent siblings.
    seed:
        RNG seed; the same config + seed always yields the same trace.
    """

    clients: int = 8
    servers: Sequence[str] = ("A", "B", "C")
    keys: int = 4
    operations: int = 200
    read_probability: float = 0.5
    blind_write_probability: float = 0.05
    forget_probability: float = 0.02
    sync_every: Optional[int] = 25
    final_sync: bool = True
    zipf_s: float = 0.0
    stale_read_probability: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError("workload needs at least one client")
        if self.keys < 1:
            raise ConfigurationError("workload needs at least one key")
        if self.operations < 1:
            raise ConfigurationError("workload needs at least one operation")
        for name in ("read_probability", "blind_write_probability",
                     "forget_probability", "stale_read_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def client_ids(self) -> List[str]:
        """The generated client identifiers."""
        return [f"client-{index}" for index in range(self.clients)]

    def key_names(self) -> List[str]:
        """The generated key names."""
        return [f"key-{index}" for index in range(self.keys)]


class WorkloadGenerator:
    """Generates traces from a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._value_counter = 0
        self._key_weights = self._build_key_weights()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> Trace:
        """Generate one trace according to the config."""
        config = self.config
        trace = Trace(server_ids=tuple(config.servers),
                      name=f"synthetic(seed={config.seed})",
                      metadata={"config": config})
        clients = config.client_ids()
        # Which clients have read a key at least once (so PUTs can be chained).
        has_context = {(client, key): False for client in clients for key in config.key_names()}

        for index in range(config.operations):
            client = self._rng.choice(clients)
            key = self._pick_key()
            server = self._rng.choice(list(config.servers))

            if self._rng.random() < config.forget_probability:
                if has_context[(client, key)]:
                    trace.forget(client, key)
                    has_context[(client, key)] = False

            if self._rng.random() < config.read_probability:
                trace.get(client, key, server=server)
                has_context[(client, key)] = True
            else:
                self._generate_write(trace, client, key, server, has_context)

            if config.sync_every and (index + 1) % config.sync_every == 0:
                trace.sync_all()

        if config.final_sync:
            trace.sync_all()
        return trace

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _generate_write(self, trace: Trace, client: str, key: str, server: str,
                        has_context: dict) -> None:
        config = self.config
        self._value_counter += 1
        value = f"{client}:v{self._value_counter}"
        if self._rng.random() < config.blind_write_probability:
            trace.blind_put(client, key, value, server=server)
            return
        # A well-behaved client reads before writing; a "stale" client reuses
        # whatever context it already had (possibly none), which is what makes
        # two clients' writes concurrent.
        if not has_context[(client, key)] or self._rng.random() >= config.stale_read_probability:
            trace.get(client, key, server=server)
            has_context[(client, key)] = True
        trace.put(client, key, value, server=server)

    def _build_key_weights(self) -> List[float]:
        return zipf_weights(self.config.keys, self.config.zipf_s)

    def _pick_key(self) -> str:
        keys = self.config.key_names()
        return self._rng.choices(keys, weights=self._key_weights, k=1)[0]


def generate_workload(config: Optional[WorkloadConfig] = None, **overrides) -> Trace:
    """One-call convenience: build a config (with overrides) and generate a trace."""
    if config is None:
        config = WorkloadConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config object or keyword overrides, not both")
    return WorkloadGenerator(config).generate()
