"""Client behaviour drivers for the simulated (message-passing) cluster.

The synchronous store replays :class:`~repro.workloads.traces.Trace` objects;
the simulated cluster instead needs *drivers* — objects that issue a request,
wait for its reply (an event-loop callback), think for a while, and issue the
next one.  The closed-loop read-modify-write driver below is the workload the
latency experiment (E4) uses: it is the access pattern the paper's Riak
evaluation models (clients updating objects they previously fetched).

Two knobs turn the uniform loop into the paper's Figure-1 story at scale:
``zipf_s`` skews key choice toward a hot key, and ``stale_write_fraction``
makes some writes reuse the context of an *earlier* read instead of reading
fresh — exactly the stale-context overwrite that produces concurrent
siblings when several clients race on the same key.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.exceptions import ConfigurationError
from ..kvstore.simulated import SimulatedClient, SimulatedCluster
from .generator import zipf_weights


def _stable_seed(client_id: str) -> int:
    """Deterministic fallback seed for a driver without an explicit one.

    ``hash(str)`` is randomised per process, which silently broke replay:
    the same scenario seeded differently on every run.  CRC32 is stable
    across processes and Python versions.
    """
    return zlib.crc32(client_id.encode("utf-8")) & 0xFFFF


@dataclass
class ClosedLoopConfig:
    """Parameters of a closed-loop read-modify-write client.

    Attributes
    ----------
    keys:
        The keys this client operates on.  Chosen uniformly per operation
        unless ``zipf_s`` > 0, in which case the choice is Zipfian with the
        *first* key the hottest.
    think_time_ms:
        Mean exponential think time between completing one operation and
        starting the next.
    write_fraction:
        Fraction of operations that are writes; a write is always preceded by
        the read whose context it uses (read-modify-write), unless
        ``blind_write_fraction`` or ``stale_write_fraction`` strikes.
    blind_write_fraction:
        Fraction of writes issued without a context (careless client).
    stale_write_fraction:
        Fraction of writes that skip the fresh read and reuse whatever
        context the client's session still holds from an earlier read of the
        key (stale client).  Only applies once the key has been read at
        least once.  This is the sibling driver: two clients writing from
        the same stale context are causally concurrent.
    zipf_s:
        Zipf skew exponent over ``keys`` (0 = uniform).
    stop_at_ms:
        Simulated time after which the driver stops issuing new operations.
    """

    keys: Sequence[str] = ("key-0",)
    think_time_ms: float = 5.0
    write_fraction: float = 0.5
    blind_write_fraction: float = 0.0
    stale_write_fraction: float = 0.0
    zipf_s: float = 0.0
    stop_at_ms: float = 1000.0

    def __post_init__(self) -> None:
        if not self.keys:
            raise ConfigurationError("closed-loop driver needs at least one key")
        if self.think_time_ms < 0:
            raise ConfigurationError("think time must be non-negative")
        if self.zipf_s < 0:
            raise ConfigurationError(f"zipf_s must be >= 0, got {self.zipf_s}")
        for name in ("write_fraction", "blind_write_fraction",
                     "stale_write_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


class ClosedLoopClient:
    """A closed-loop read-modify-write driver over one simulated client."""

    def __init__(self,
                 cluster: SimulatedCluster,
                 client_id: str,
                 config: ClosedLoopConfig,
                 seed: Optional[int] = None) -> None:
        self.cluster = cluster
        self.client: SimulatedClient = cluster.client(client_id)
        self.config = config
        self._rng = random.Random(seed if seed is not None
                                  else _stable_seed(client_id))
        self._keys = list(config.keys)
        self._key_weights = (zipf_weights(len(self._keys), config.zipf_s)
                             if config.zipf_s > 0 else None)
        #: Keys this driver has read at least once — only those can be
        #: written from a stale context.
        self._has_context: set = set()
        self._operation_counter = 0
        self.operations_started = 0
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, initial_delay_ms: Optional[float] = None) -> None:
        """Schedule the driver's first operation."""
        delay = initial_delay_ms if initial_delay_ms is not None else self._think_time()
        self.cluster.simulation.schedule(delay, self._next_operation,
                                         label=f"client-loop:{self.client.client_id}")

    def stop(self) -> None:
        """Stop issuing new operations (in-flight ones still complete)."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def _next_operation(self) -> None:
        if self._stopped or self.cluster.simulation.now >= self.config.stop_at_ms:
            return
        self.operations_started += 1
        key = self._pick_key()
        if self._rng.random() < self.config.write_fraction:
            self._read_modify_write(key)
        else:
            self._read(key)

    def _pick_key(self) -> str:
        if self._key_weights is not None:
            return self._rng.choices(self._keys, weights=self._key_weights, k=1)[0]
        return self._rng.choice(self._keys)

    def _read(self, key: str) -> None:
        def after_read(_result) -> None:
            self._has_context.add(key)
            self._after_operation()

        self.client.get(key, after_read)

    def _read_modify_write(self, key: str) -> None:
        self._operation_counter += 1
        value = f"{self.client.client_id}:v{self._operation_counter}"
        blind = self._rng.random() < self.config.blind_write_fraction

        if blind:
            self.client.put(key, value, lambda _result: self._after_operation(),
                            use_context=False)
            return

        stale = (key in self._has_context
                 and self._rng.random() < self.config.stale_write_fraction)
        if stale:
            # Reuse the session's last-read context without refreshing it:
            # concurrent with any write accepted since that read.
            self.client.put(key, value, lambda _result: self._after_operation())
            return

        def after_read(_result) -> None:
            self._has_context.add(key)
            self.client.put(key, value, lambda _r: self._after_operation())

        self.client.get(key, after_read)

    def _after_operation(self) -> None:
        if self._stopped:
            return
        self.cluster.simulation.schedule(self._think_time(), self._next_operation,
                                         label=f"client-loop:{self.client.client_id}")

    def _think_time(self) -> float:
        if self.config.think_time_ms == 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.config.think_time_ms)


def run_closed_loop_workload(cluster: SimulatedCluster,
                             client_count: int,
                             config: ClosedLoopConfig,
                             drain: bool = True,
                             base_seed: int = 0) -> List[ClosedLoopClient]:
    """Start ``client_count`` closed-loop drivers and run the simulation.

    The simulation runs until ``config.stop_at_ms`` and then (when ``drain``)
    until every in-flight request and background task has completed.  Returns
    the drivers (whose underlying clients hold the request records).
    ``base_seed`` offsets every driver's RNG so a scenario seed fully
    determines the traffic (driver ``i`` gets ``base_seed + i``).
    """
    drivers = [
        ClosedLoopClient(cluster, f"client-{index}", config,
                         seed=base_seed + index)
        for index in range(client_count)
    ]
    for driver in drivers:
        driver.start(initial_delay_ms=driver._rng.uniform(0, config.think_time_ms or 1.0))
    cluster.run(until=config.stop_at_ms)
    for driver in drivers:
        driver.stop()
    if drain:
        cluster.drain()
    return drivers
