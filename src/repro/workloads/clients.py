"""Client behaviour drivers for the simulated (message-passing) cluster.

The synchronous store replays :class:`~repro.workloads.traces.Trace` objects;
the simulated cluster instead needs *drivers* — objects that issue a request,
wait for its reply (an event-loop callback), think for a while, and issue the
next one.  The closed-loop read-modify-write driver below is the workload the
latency experiment (E4) uses: it is the access pattern the paper's Riak
evaluation models (clients updating objects they previously fetched).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.exceptions import ConfigurationError
from ..kvstore.simulated import SimulatedClient, SimulatedCluster


@dataclass
class ClosedLoopConfig:
    """Parameters of a closed-loop read-modify-write client.

    Attributes
    ----------
    keys:
        The keys this client operates on (chosen uniformly per operation).
    think_time_ms:
        Mean exponential think time between completing one operation and
        starting the next.
    write_fraction:
        Fraction of operations that are writes; a write is always preceded by
        the read whose context it uses (read-modify-write), unless
        ``blind_write_fraction`` strikes.
    blind_write_fraction:
        Fraction of writes issued without a context (careless client).
    stop_at_ms:
        Simulated time after which the driver stops issuing new operations.
    """

    keys: Sequence[str] = ("key-0",)
    think_time_ms: float = 5.0
    write_fraction: float = 0.5
    blind_write_fraction: float = 0.0
    stop_at_ms: float = 1000.0

    def __post_init__(self) -> None:
        if not self.keys:
            raise ConfigurationError("closed-loop driver needs at least one key")
        if self.think_time_ms < 0:
            raise ConfigurationError("think time must be non-negative")
        for name in ("write_fraction", "blind_write_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


class ClosedLoopClient:
    """A closed-loop read-modify-write driver over one simulated client."""

    def __init__(self,
                 cluster: SimulatedCluster,
                 client_id: str,
                 config: ClosedLoopConfig,
                 seed: Optional[int] = None) -> None:
        self.cluster = cluster
        self.client: SimulatedClient = cluster.client(client_id)
        self.config = config
        self._rng = random.Random(seed if seed is not None else hash(client_id) & 0xFFFF)
        self._operation_counter = 0
        self.operations_started = 0
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, initial_delay_ms: Optional[float] = None) -> None:
        """Schedule the driver's first operation."""
        delay = initial_delay_ms if initial_delay_ms is not None else self._think_time()
        self.cluster.simulation.schedule(delay, self._next_operation,
                                         label=f"client-loop:{self.client.client_id}")

    def stop(self) -> None:
        """Stop issuing new operations (in-flight ones still complete)."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def _next_operation(self) -> None:
        if self._stopped or self.cluster.simulation.now >= self.config.stop_at_ms:
            return
        self.operations_started += 1
        key = self._rng.choice(list(self.config.keys))
        if self._rng.random() < self.config.write_fraction:
            self._read_modify_write(key)
        else:
            self.client.get(key, lambda _result: self._after_operation())

    def _read_modify_write(self, key: str) -> None:
        self._operation_counter += 1
        value = f"{self.client.client_id}:v{self._operation_counter}"
        blind = self._rng.random() < self.config.blind_write_fraction

        if blind:
            self.client.put(key, value, lambda _result: self._after_operation(),
                            use_context=False)
            return

        def after_read(_result) -> None:
            self.client.put(key, value, lambda _r: self._after_operation())

        self.client.get(key, after_read)

    def _after_operation(self) -> None:
        if self._stopped:
            return
        self.cluster.simulation.schedule(self._think_time(), self._next_operation,
                                         label=f"client-loop:{self.client.client_id}")

    def _think_time(self) -> float:
        if self.config.think_time_ms == 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.config.think_time_ms)


def run_closed_loop_workload(cluster: SimulatedCluster,
                             client_count: int,
                             config: ClosedLoopConfig,
                             drain: bool = True) -> List[ClosedLoopClient]:
    """Start ``client_count`` closed-loop drivers and run the simulation.

    The simulation runs until ``config.stop_at_ms`` and then (when ``drain``)
    until every in-flight request and background task has completed.  Returns
    the drivers (whose underlying clients hold the request records).
    """
    drivers = [
        ClosedLoopClient(cluster, f"client-{index}", config, seed=index)
        for index in range(client_count)
    ]
    for driver in drivers:
        driver.start(initial_delay_ms=driver._rng.uniform(0, config.think_time_ms or 1.0))
    cluster.run(until=config.stop_at_ms)
    for driver in drivers:
        driver.stop()
    if drain:
        cluster.drain()
    return drivers
