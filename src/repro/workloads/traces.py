"""Operation traces: record once, replay under every mechanism.

The comparison the paper makes only means something when every mechanism sees
*exactly* the same client behaviour.  A :class:`Trace` is a mechanism-agnostic
list of client operations (reads, writes, blind writes, session resets,
replica syncs); :func:`replay_trace` executes a trace against a fresh
synchronous store configured with the mechanism under test and returns the
store (plus its write log) for the analysis layer to judge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..clocks.interface import CausalityMechanism
from ..core.exceptions import WorkloadError
from ..kvstore.client import ClientSession
from ..kvstore.sync_store import SyncReplicatedStore


class OpType(enum.Enum):
    """Kinds of steps a trace can contain."""

    GET = "get"
    PUT = "put"
    BLIND_PUT = "blind_put"
    FORGET = "forget"          # client drops its context for the key (session reset)
    SYNC = "sync"              # anti-entropy between two named servers
    SYNC_ALL = "sync_all"      # one full round of pairwise anti-entropy


@dataclass(frozen=True)
class Operation:
    """One trace step.

    ``server`` selects the coordinating replica for GET/PUT (None lets the
    store pick); for SYNC it is the source replica and ``target_server`` the
    destination.
    """

    op: OpType
    client: Optional[str] = None
    key: Optional[str] = None
    value: Any = None
    server: Optional[str] = None
    target_server: Optional[str] = None

    def validate(self) -> None:
        """Raise :class:`WorkloadError` when the step is malformed."""
        if self.op in (OpType.GET, OpType.PUT, OpType.BLIND_PUT, OpType.FORGET):
            if not self.client or not self.key:
                raise WorkloadError(f"{self.op.value} requires client and key: {self}")
        if self.op in (OpType.PUT, OpType.BLIND_PUT) and self.value is None:
            raise WorkloadError(f"{self.op.value} requires a value: {self}")
        if self.op is OpType.SYNC and (not self.server or not self.target_server):
            raise WorkloadError(f"sync requires server and target_server: {self}")


@dataclass
class Trace:
    """An ordered list of operations plus the topology it assumes."""

    operations: List[Operation] = field(default_factory=list)
    server_ids: Sequence[str] = ("A", "B", "C")
    name: str = "trace"
    metadata: Dict[str, Any] = field(default_factory=dict)

    def append(self, operation: Operation) -> None:
        """Validate and append one step."""
        operation.validate()
        self.operations.append(operation)

    def extend(self, operations: Iterable[Operation]) -> None:
        """Validate and append several steps."""
        for operation in operations:
            self.append(operation)

    def clients(self) -> List[str]:
        """All client ids referenced by the trace, sorted."""
        return sorted({op.client for op in self.operations if op.client})

    def keys(self) -> List[str]:
        """All keys referenced by the trace, sorted."""
        return sorted({op.key for op in self.operations if op.key})

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    # Convenience builders -------------------------------------------------
    def get(self, client: str, key: str, server: Optional[str] = None) -> "Trace":
        """Append a GET step (returns self for chaining)."""
        self.append(Operation(OpType.GET, client=client, key=key, server=server))
        return self

    def put(self, client: str, key: str, value: Any, server: Optional[str] = None) -> "Trace":
        """Append a context-carrying PUT step."""
        self.append(Operation(OpType.PUT, client=client, key=key, value=value, server=server))
        return self

    def blind_put(self, client: str, key: str, value: Any,
                  server: Optional[str] = None) -> "Trace":
        """Append a blind (context-less) PUT step."""
        self.append(Operation(OpType.BLIND_PUT, client=client, key=key, value=value,
                              server=server))
        return self

    def forget(self, client: str, key: str) -> "Trace":
        """Append a session-reset step."""
        self.append(Operation(OpType.FORGET, client=client, key=key))
        return self

    def sync(self, source: str, target: str) -> "Trace":
        """Append an anti-entropy step between two replicas."""
        self.append(Operation(OpType.SYNC, server=source, target_server=target))
        return self

    def sync_all(self) -> "Trace":
        """Append a full pairwise anti-entropy round."""
        self.append(Operation(OpType.SYNC_ALL))
        return self


@dataclass
class ReplayResult:
    """Outcome of replaying a trace under one mechanism."""

    store: SyncReplicatedStore
    clients: Dict[str, ClientSession]
    trace: Trace

    @property
    def mechanism_name(self) -> str:
        """Name of the mechanism the trace was replayed under."""
        return self.store.mechanism.name


def replay_trace(trace: Trace,
                 mechanism: CausalityMechanism,
                 replicate_on_write: bool = False) -> ReplayResult:
    """Execute ``trace`` against a fresh synchronous store using ``mechanism``."""
    store = SyncReplicatedStore(
        mechanism,
        server_ids=tuple(trace.server_ids),
        replicate_on_write=replicate_on_write,
    )
    clients: Dict[str, ClientSession] = {
        client_id: ClientSession(client_id) for client_id in trace.clients()
    }
    for operation in trace:
        _apply(store, clients, operation)
    return ReplayResult(store=store, clients=clients, trace=trace)


def _apply(store: SyncReplicatedStore,
           clients: Dict[str, ClientSession],
           operation: Operation) -> None:
    if operation.op is OpType.GET:
        clients[operation.client].get(store, operation.key, server_id=operation.server)
    elif operation.op is OpType.PUT:
        clients[operation.client].put(store, operation.key, operation.value,
                                      server_id=operation.server)
    elif operation.op is OpType.BLIND_PUT:
        clients[operation.client].put(store, operation.key, operation.value,
                                      server_id=operation.server, use_context=False)
    elif operation.op is OpType.FORGET:
        clients[operation.client].forget(operation.key)
    elif operation.op is OpType.SYNC:
        store.sync_key(operation.key, operation.server, operation.target_server) \
            if operation.key else _sync_all_keys(store, operation.server, operation.target_server)
    elif operation.op is OpType.SYNC_ALL:
        store.sync_all()
    else:  # pragma: no cover - defensive
        raise WorkloadError(f"unhandled operation {operation.op}")


def _sync_all_keys(store: SyncReplicatedStore, source: str, target: str) -> None:
    keys = set()
    for node in store.servers.values():
        keys.update(node.storage.keys())
    for key in sorted(keys):
        store.sync_key(key, source, target)
