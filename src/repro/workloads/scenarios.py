"""Hand-written scenarios, including the paper's Figure 1 trace.

Figure 1 of the brief announcement follows a single object replicated on two
servers (A and B) while two clients interact with it:

1. a client reads the (empty) key and writes ``v1`` through server A;
2. a second client reads (seeing ``v1``) — and holds on to that context;
3. the first client reads again and writes ``v2`` through A
   (``v2`` causally follows ``v1``);
4. the second client now writes ``v3`` through A using its stale context —
   ``v3`` is concurrent with ``v2``;
5. server A synchronises with server B (the dotted arrow in the figure);
6. a client reads at B (seeing both ``v2`` and ``v3``), writes ``v4``
   through B, resolving the conflict;
7. the servers synchronise again, converging on ``v4`` everywhere.

Under causal histories (Figure 1a) and dotted version vectors (Figure 1c) the
concurrent pair ``v2 ∥ v3`` is preserved until step 6 resolves it.  Under
per-server version vectors (Figure 1b) the identifier minted for ``v3``
dominates ``v2``'s, so ``v2`` is silently discarded when the servers
synchronise — the lost update the paper illustrates.

Besides Figure 1, this module provides smaller named scenarios used by tests
and benchmarks (concurrent blind writers, read-modify-write chains, session
resets) so the experiments exercise more shapes than the single figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..clocks.interface import CausalityMechanism
from ..clocks.registry import create as create_mechanism
from ..core.comparison import Ordering
from .traces import ReplayResult, Trace, replay_trace


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #
def figure1_trace() -> Trace:
    """The exact interaction trace of Figure 1 (both servers, both clients)."""
    trace = Trace(server_ids=("A", "B"), name="figure1")
    # Step 1: client c1 reads the empty key and writes v1 through A.
    trace.get("c1", "obj", server="A")
    trace.put("c1", "obj", "v1", server="A")
    # Step 2: client c2 reads (sees v1) and keeps the context for later.
    trace.get("c2", "obj", server="A")
    # Step 3: client c1 reads again and writes v2 (causally after v1).
    trace.get("c1", "obj", server="A")
    trace.put("c1", "obj", "v2", server="A")
    # Step 4: client c2 writes v3 with its stale context — concurrent with v2.
    trace.put("c2", "obj", "v3", server="A")
    # Step 5: servers synchronise (A -> B).
    trace.sync("A", "B")
    # Step 6: client c3 reads at B (sees the surviving versions) and writes v4.
    trace.get("c3", "obj", server="B")
    trace.put("c3", "obj", "v4", server="B")
    # Step 7: final synchronisation.
    trace.sync("B", "A")
    return trace


@dataclass
class Figure1Step:
    """State snapshot after one step of the Figure 1 replay."""

    label: str
    values_at_a: List[str]
    values_at_b: List[str]


@dataclass
class Figure1Result:
    """Everything the Figure 1 experiment reports for one mechanism."""

    mechanism: str
    steps: List[Figure1Step] = field(default_factory=list)
    values_after_concurrent_writes: List[str] = field(default_factory=list)
    values_at_b_after_sync: List[str] = field(default_factory=list)
    final_values: List[str] = field(default_factory=list)
    concurrency_preserved: bool = False
    lost_update: bool = False
    converged_to_single_value: bool = False


def run_figure1(mechanism: CausalityMechanism) -> Figure1Result:
    """Replay Figure 1 under ``mechanism`` and report what the figure shows.

    The replay is done step by step (rather than via :func:`replay_trace`) so
    the intermediate states — the annotations next to each circle in the
    figure — can be captured.
    """
    from ..kvstore.client import ClientSession
    from ..kvstore.sync_store import SyncReplicatedStore

    store = SyncReplicatedStore(mechanism, server_ids=("A", "B"))
    c1, c2, c3 = ClientSession("c1"), ClientSession("c2"), ClientSession("c3")
    result = Figure1Result(mechanism=mechanism.name)

    def snapshot(label: str) -> None:
        result.steps.append(Figure1Step(
            label=label,
            values_at_a=sorted(store.values("obj", "A")),
            values_at_b=sorted(store.values("obj", "B")),
        ))

    # Step 1: c1 writes v1 through A after reading the empty key.
    c1.get(store, "obj", server_id="A")
    c1.put(store, "obj", "v1", server_id="A")
    snapshot("c1 writes v1 at A")

    # Step 2: c2 reads v1 (context kept for step 4).
    c2.get(store, "obj", server_id="A")
    snapshot("c2 reads v1 at A")

    # Step 3: c1 reads and writes v2 (supersedes v1).
    c1.get(store, "obj", server_id="A")
    c1.put(store, "obj", "v2", server_id="A")
    snapshot("c1 writes v2 at A")

    # Step 4: c2 writes v3 with its stale context — concurrent with v2.
    c2.put(store, "obj", "v3", server_id="A")
    snapshot("c2 writes v3 at A (stale context)")
    result.values_after_concurrent_writes = sorted(store.values("obj", "A"))

    # Step 5: servers synchronise.
    store.sync_key("obj", "A", "B")
    snapshot("A syncs with B")
    result.values_at_b_after_sync = sorted(store.values("obj", "B"))

    # The paper's correctness criterion: after the concurrent writes and the
    # sync, both v2 and v3 must still be visible (at either replica).
    result.concurrency_preserved = (
        set(result.values_after_concurrent_writes) >= {"v2", "v3"}
        and set(result.values_at_b_after_sync) >= {"v2", "v3"}
    )
    result.lost_update = not result.concurrency_preserved

    # Step 6: c3 reads at B and writes v4 resolving the conflict.
    c3.get(store, "obj", server_id="B")
    c3.put(store, "obj", "v4", server_id="B")
    snapshot("c3 writes v4 at B")

    # Step 7: final sync; both replicas converge.
    store.sync_key("obj", "B", "A")
    snapshot("final sync")
    result.final_values = sorted(store.values("obj", "A"))
    result.converged_to_single_value = (
        store.values("obj", "A") == store.values("obj", "B")
        and len(store.values("obj", "A")) == 1
    )
    return result


def run_figure1_by_name(mechanism_name: str) -> Figure1Result:
    """Replay Figure 1 for a registry mechanism name."""
    return run_figure1(create_mechanism(mechanism_name))


# --------------------------------------------------------------------------- #
# Other named scenarios
# --------------------------------------------------------------------------- #
def concurrent_writers_trace(writers: int = 4,
                             rounds: int = 1,
                             server_ids: Sequence[str] = ("A", "B", "C")) -> Trace:
    """``writers`` clients all write the same key from the same (empty) context.

    Ground truth: after one round every write is concurrent with every other,
    so a precise mechanism keeps ``writers`` siblings.  Used by the sibling
    experiment (E5).
    """
    trace = Trace(server_ids=tuple(server_ids), name=f"concurrent_writers({writers})")
    servers = list(server_ids)
    for round_index in range(rounds):
        # Everyone reads first (same context), then everyone writes.
        for writer_index in range(writers):
            client = f"w{writer_index}"
            server = servers[writer_index % len(servers)]
            trace.get(client, "contested", server=server)
        for writer_index in range(writers):
            client = f"w{writer_index}"
            server = servers[writer_index % len(servers)]
            trace.put(client, "contested", f"{client}-r{round_index}", server=server)
        trace.sync_all()
    return trace


def read_modify_write_chain_trace(clients: int = 3,
                                  length: int = 5,
                                  server_ids: Sequence[str] = ("A", "B")) -> Trace:
    """Clients take turns doing read-modify-write — no concurrency at all.

    Ground truth: a single surviving version.  Useful as the negative control:
    every mechanism, even the inexact ones, must get this right.
    """
    trace = Trace(server_ids=tuple(server_ids), name="rmw_chain")
    servers = list(server_ids)
    turn = 0
    for _ in range(length):
        for client_index in range(clients):
            client = f"c{client_index}"
            server = servers[turn % len(servers)]
            trace.get(client, "chain", server=server)
            trace.put(client, "chain", f"{client}-step{turn}", server=server)
            trace.sync_all()
            turn += 1
    return trace


def session_reset_trace(clients: int = 4,
                        resets: int = 3,
                        server_ids: Sequence[str] = ("A", "B", "C")) -> Trace:
    """Clients repeatedly lose their context and blind-write.

    Ground truth: blind writes are concurrent with whatever they did not read,
    so siblings accumulate until someone does a read-modify-write.  Exercises
    the sibling-growth behaviour of every mechanism under careless clients.
    """
    trace = Trace(server_ids=tuple(server_ids), name="session_resets")
    servers = list(server_ids)
    for reset_round in range(resets):
        for client_index in range(clients):
            client = f"c{client_index}"
            server = servers[client_index % len(servers)]
            trace.blind_put(client, "careless", f"{client}-blind{reset_round}", server=server)
        trace.sync_all()
    # A final reader cleans up.
    trace.get("resolver", "careless", server=servers[0])
    trace.put("resolver", "careless", "resolved", server=servers[0])
    trace.sync_all()
    return trace


def interleaved_two_server_trace(pairs: int = 4) -> Trace:
    """Writers alternate between two coordinators without reading in between.

    This interleaving makes per-server version vectors mint identifiers on both
    servers for causally unrelated writes, and gives the WinFS-style VVE
    baseline non-contiguous histories (exceptions) — used by experiment E6.
    """
    trace = Trace(server_ids=("A", "B"), name="interleaved_two_server")
    for pair_index in range(pairs):
        trace.get(f"left-{pair_index}", "shared", server="A")
        trace.get(f"right-{pair_index}", "shared", server="B")
        trace.put(f"left-{pair_index}", "shared", f"left-{pair_index}", server="A")
        trace.put(f"right-{pair_index}", "shared", f"right-{pair_index}", server="B")
        if pair_index % 2 == 1:
            trace.sync_all()
    trace.sync_all()
    return trace


# --------------------------------------------------------------------------- #
# Churn scenarios (simulated message-passing cluster)
# --------------------------------------------------------------------------- #
@dataclass
class ChurnReport:
    """Outcome of a churn scenario on the simulated cluster.

    Captures everything the elasticity/flappy tests and the CLI ``churn``
    subcommand report: whether the surviving replicas converged, which nodes
    joined/left, how much state moved via handoff, and the cluster-wide
    operation counters (including the hint-replay and merkle-sync counters
    kept separately from ordinary merges).
    """

    scenario: str
    mechanism: str
    converged: bool = False
    convergence_rounds: int = 0
    final_servers: List[str] = field(default_factory=list)
    joined: List[str] = field(default_factory=list)
    departed: List[str] = field(default_factory=list)
    handoff_keys: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    quorum_mode: str = ""
    final_values: Dict[str, List[str]] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)
    sync_bytes: int = 0
    #: Generalized lost-update invariant, judged by the write-log oracle
    #: after convergence (None when the oracle did not run, e.g. the cluster
    #: never converged).  Exact mechanisms must show 0 lost updates.
    lost_updates: "int | None" = None
    false_concurrency: "int | None" = None
    session_superseded: "int | None" = None
    #: Skew fields (hot_key / soak): the contended key and its observed
    #: sibling pressure.  ``sibling_series`` rows are
    #: ``(t_ms, hot_key_max_siblings, cluster_metadata_bytes)`` sampled
    #: periodically during the run — the per-mechanism series the hot-key
    #: benchmark plots.
    hot_key: "str | None" = None
    max_sibling_count: int = 0
    sibling_series: List[tuple] = field(default_factory=list)
    #: Multi-DC fields: datacenters in play and the simulated-time windows
    #: during which every WAN link was cut.
    datacenters: List[str] = field(default_factory=list)
    partition_windows: List[tuple] = field(default_factory=list)
    partition_flaps: int = 0
    #: The cluster the scenario ran on (for test inspection; not reported).
    cluster: object = field(default=None, repr=False, compare=False)


def _finish_churn_run(cluster, report: "ChurnReport", max_rounds: int = 40) -> "ChurnReport":
    """Drive a drained cluster to convergence and fill in the report.

    When the cluster converges and accepted at least one write, the write-log
    oracle judges the surviving siblings of every key — the generalized
    lost-update invariant every churn scenario now reports.
    """
    from ..core.exceptions import ConfigurationError

    try:
        report.convergence_rounds = cluster.converge(max_rounds=max_rounds)
    except ConfigurationError:
        report.convergence_rounds = max_rounds
    report.converged = cluster.is_converged()
    report.final_servers = sorted(cluster.servers)
    records = cluster.all_request_records()
    report.requests_completed = sum(1 for record in records if record.ok)
    report.requests_failed = sum(1 for record in records if not record.ok)
    for key in cluster.key_universe():
        any_server = next(iter(cluster.servers.values()))
        report.final_values[key] = sorted(map(repr, any_server.node.values_of(key)))
    report.stats = cluster.stat_totals()
    report.sync_bytes = cluster.sync_bytes()
    if report.converged and cluster.write_log.keys():
        from ..analysis.correctness import check_cluster

        verdict = check_cluster(cluster)
        report.lost_updates = verdict.total_lost_updates
        report.false_concurrency = verdict.total_false_concurrency
        report.session_superseded = verdict.total_session_superseded
    return report


def _sample_sibling_series(cluster, report: "ChurnReport", hot_key: str,
                           duration_ms: float, every_ms: float) -> None:
    """Periodically record the hot key's sibling count and metadata footprint."""

    def sample() -> None:
        counts = cluster.sibling_counts(hot_key)
        peak = max(counts.values()) if counts else 0
        report.max_sibling_count = max(report.max_sibling_count, peak)
        report.sibling_series.append(
            (round(cluster.simulation.now, 3), peak, cluster.metadata_bytes()))

    at = every_ms
    while at < duration_ms:
        cluster.simulation.schedule_at(at, sample, label="sibling-sample")
        at += every_ms


def run_elasticity_scenario(mechanism: CausalityMechanism,
                            seed: int = 7,
                            duration_ms: float = 400.0,
                            keys: int = 6,
                            clients: int = 4,
                            quorum_mode: str = "sloppy",
                            anti_entropy_strategy: str = "merkle",
                            tracer=None) -> ChurnReport:
    """Elastic cluster under load: two nodes join and one leaves mid-run.

    Starts a 3-node cluster with a closed-loop workload, joins ``n4`` and
    ``n5`` while writes are flowing (ring rebalancing pushes the keys they now
    own), then gracefully decommissions ``n1`` (which first hands its keys
    off).  After the workload drains, anti-entropy rounds must converge the
    surviving replicas to identical sibling sets.
    """
    from ..cluster.preference_list import QuorumConfig
    from ..kvstore.simulated import SimulatedCluster
    from ..network.latency import FixedLatency
    from .clients import ClosedLoopConfig, run_closed_loop_workload

    cluster = SimulatedCluster(
        mechanism,
        server_ids=("n1", "n2", "n3"),
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=(quorum_mode == "sloppy")),
        latency=FixedLatency(0.5),
        anti_entropy_interval_ms=25.0,
        anti_entropy_strategy=anti_entropy_strategy,
        hint_replay_interval_ms=40.0,
        seed=seed,
        tracer=tracer,
    )
    report = ChurnReport(scenario="elasticity", mechanism=mechanism.name,
                         quorum_mode=quorum_mode)

    def do_join(node_id: str) -> None:
        report.handoff_keys += cluster.join_node(node_id)
        report.joined.append(node_id)

    def do_leave(node_id: str) -> None:
        report.handoff_keys += cluster.decommission_node(node_id)
        report.departed.append(node_id)

    cluster.simulation.schedule(duration_ms * 0.30, lambda: do_join("n4"), label="join:n4")
    cluster.simulation.schedule(duration_ms * 0.50, lambda: do_join("n5"), label="join:n5")
    cluster.simulation.schedule(duration_ms * 0.70, lambda: do_leave("n1"), label="leave:n1")

    config = ClosedLoopConfig(
        keys=tuple(f"key-{index}" for index in range(keys)),
        think_time_ms=4.0,
        write_fraction=0.6,
        stop_at_ms=duration_ms,
    )
    run_closed_loop_workload(cluster, client_count=clients, config=config)
    report.cluster = cluster
    return _finish_churn_run(cluster, report)


def run_flappy_replica_scenario(mechanism: CausalityMechanism,
                                seed: int = 11,
                                duration_ms: float = 420.0,
                                keys: int = 4,
                                clients: int = 4,
                                flaps: int = 3,
                                wipe_on_recover: bool = False,
                                quorum_mode: str = "sloppy",
                                anti_entropy_strategy: str = "merkle",
                                tracer=None) -> ChurnReport:
    """A replica repeatedly crashes and recovers while writes keep flowing.

    Every crash makes coordinators store hints for the victim; every recovery
    triggers hint replay (plus the periodic handoff daemon).  With
    ``wipe_on_recover`` the victim loses its storage on each recovery, so it
    must be repopulated entirely by hint replay and anti-entropy.
    """
    from ..cluster.preference_list import QuorumConfig
    from ..kvstore.simulated import SimulatedCluster
    from ..network.latency import FixedLatency
    from .clients import ClosedLoopConfig, run_closed_loop_workload

    cluster = SimulatedCluster(
        mechanism,
        server_ids=("n1", "n2", "n3"),
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=(quorum_mode == "sloppy")),
        latency=FixedLatency(0.5),
        anti_entropy_interval_ms=30.0,
        anti_entropy_strategy=anti_entropy_strategy,
        hint_replay_interval_ms=25.0,
        seed=seed,
        tracer=tracer,
    )
    report = ChurnReport(scenario="flappy_replica", mechanism=mechanism.name,
                         quorum_mode=quorum_mode)
    victim = "n3"
    period = duration_ms / (flaps + 1)
    for flap in range(flaps):
        down_at = period * (flap + 1)
        up_at = down_at + period * 0.5
        cluster.simulation.schedule(down_at, lambda: cluster.fail_node(victim),
                                    label=f"flap-down:{victim}")
        cluster.simulation.schedule(
            up_at,
            lambda: cluster.recover_node(victim, wipe=wipe_on_recover),
            label=f"flap-up:{victim}",
        )

    config = ClosedLoopConfig(
        keys=tuple(f"key-{index}" for index in range(keys)),
        think_time_ms=4.0,
        write_fraction=0.7,
        stop_at_ms=duration_ms,
    )
    run_closed_loop_workload(cluster, client_count=clients, config=config)
    report.cluster = cluster
    return _finish_churn_run(cluster, report)


def run_sloppy_partition_scenario(mechanism: CausalityMechanism,
                                  seed: int = 13,
                                  duration_ms: float = 400.0,
                                  keys: int = 4,
                                  clients: int = 4,
                                  quorum_mode: str = "sloppy",
                                  anti_entropy_strategy: str = "merkle",
                                  tracer=None) -> ChurnReport:
    """Availability under partition with deadline-driven (async) coordination.

    A five-server cluster (N=3, R=W=2) runs a closed-loop workload in
    **async request mode**: coordinators fan out with per-replica deadlines
    instead of consulting the membership view.  Mid-run, two of the first
    key's three primary replicas are partitioned off together; coordinators
    on the majority side can then only assemble W=2 by extending the
    preference list to sloppy-quorum fallback nodes (``quorum_mode="sloppy"``)
    — with ``"strict"`` those writes fail with ``quorum_unreachable``.  After
    the partition heals, fallback-held hints replay to the primaries and
    anti-entropy must converge every replica.  The report's
    ``requests_completed`` / ``requests_failed`` split is the availability
    measurement the strict-vs-sloppy benchmark series compares.
    """
    from ..cluster.preference_list import QuorumConfig
    from ..kvstore.simulated import SimulatedCluster
    from ..network.latency import FixedLatency
    from .clients import ClosedLoopConfig, run_closed_loop_workload

    cluster = SimulatedCluster(
        mechanism,
        server_ids=("n1", "n2", "n3", "n4", "n5"),
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=(quorum_mode == "sloppy")),
        latency=FixedLatency(0.5),
        anti_entropy_interval_ms=50.0,
        anti_entropy_strategy=anti_entropy_strategy,
        hint_replay_interval_ms=25.0,
        request_mode="async",
        replica_timeout_ms=6.0,
        request_timeout_ms=30.0,
        seed=seed,
        tracer=tracer,
    )
    report = ChurnReport(scenario="sloppy_partition", mechanism=mechanism.name,
                         quorum_mode=quorum_mode)

    # Cut two primaries of the first workload key off together: the key's
    # coordinator keeps serving from the majority side, where a strict W=2
    # is unreachable but a sloppy one is not.
    key_names = tuple(f"key-{index}" for index in range(keys))
    primaries = cluster.placement.primary_replicas(key_names[0])
    minority = set(primaries[1:3])
    majority = {server for server in cluster.servers if server not in minority}

    cluster.simulation.schedule(
        duration_ms * 0.25,
        lambda: cluster.partitions.partition(minority, majority),
        label="sloppy-partition:cut",
    )
    cluster.simulation.schedule(
        duration_ms * 0.75,
        lambda: cluster.partitions.heal(),
        label="sloppy-partition:heal",
    )

    config = ClosedLoopConfig(
        keys=key_names,
        think_time_ms=4.0,
        write_fraction=0.6,
        stop_at_ms=duration_ms,
    )
    run_closed_loop_workload(cluster, client_count=clients, config=config)
    cluster.partitions.heal()
    report.cluster = cluster
    return _finish_churn_run(cluster, report)


def run_hot_key_scenario(mechanism: CausalityMechanism,
                         seed: int = 17,
                         duration_ms: float = 420.0,
                         keys: int = 6,
                         clients: int = 6,
                         zipf_s: float = 1.1,
                         stale_write_fraction: float = 0.35,
                         quorum_mode: str = "sloppy",
                         anti_entropy_strategy: str = "merkle",
                         sample_every_ms: float = 40.0,
                         tracer=None) -> ChurnReport:
    """Zipfian traffic hammers one contended key — the Figure-1 story at scale.

    Six clients send Zipf-skewed traffic (rank-0 key hottest) and a third of
    their writes reuse stale read contexts, so causally concurrent versions
    of the hot key pile up — the sibling-explosion regime the paper's
    mechanisms differ on.  Mid-run one of the hot key's primary replicas
    crashes and later recovers (hints + replay on the hottest data).  The
    report carries a ``(time, siblings, metadata_bytes)`` series per run, and
    the oracle judges the generalized lost-update invariant at the end:
    exact mechanisms must keep every frontier write despite the pile-up.
    """
    from ..cluster.preference_list import QuorumConfig
    from ..kvstore.simulated import SimulatedCluster
    from ..network.latency import FixedLatency
    from .clients import ClosedLoopConfig, run_closed_loop_workload

    cluster = SimulatedCluster(
        mechanism,
        server_ids=("n1", "n2", "n3", "n4", "n5"),
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=(quorum_mode == "sloppy")),
        latency=FixedLatency(0.5),
        anti_entropy_interval_ms=40.0,
        anti_entropy_strategy=anti_entropy_strategy,
        hint_replay_interval_ms=30.0,
        seed=seed,
        tracer=tracer,
    )
    key_names = tuple(f"key-{index}" for index in range(keys))
    hot_key = key_names[0]
    report = ChurnReport(scenario="hot_key", mechanism=mechanism.name,
                         quorum_mode=quorum_mode, hot_key=hot_key)

    # Crash one primary of the hot key mid-run: the hottest writes detour
    # through hints while siblings are still exploding.
    victim = cluster.placement.primary_replicas(hot_key)[1]
    cluster.simulation.schedule_at(duration_ms * 0.35,
                                   lambda: cluster.fail_node(victim),
                                   label=f"hot-key-fail:{victim}")
    cluster.simulation.schedule_at(duration_ms * 0.65,
                                   lambda: cluster.recover_node(victim),
                                   label=f"hot-key-recover:{victim}")

    _sample_sibling_series(cluster, report, hot_key, duration_ms, sample_every_ms)

    config = ClosedLoopConfig(
        keys=key_names,
        think_time_ms=4.0,
        write_fraction=0.6,
        stale_write_fraction=stale_write_fraction,
        zipf_s=zipf_s,
        stop_at_ms=duration_ms,
    )
    run_closed_loop_workload(cluster, client_count=clients, config=config,
                             base_seed=seed * 1000)
    report.cluster = cluster
    _finish_churn_run(cluster, report)
    # One last sample after convergence: the settled frontier size.
    counts = cluster.sibling_counts(hot_key)
    peak = max(counts.values()) if counts else 0
    report.max_sibling_count = max(report.max_sibling_count, peak)
    report.sibling_series.append(
        (round(cluster.simulation.now, 3), peak, cluster.metadata_bytes()))
    return report


def _two_dc_topology(server_ids: Sequence[str], client_count: int,
                     dcs: Sequence[str] = ("east", "west")):
    """Servers split half/half across two DCs, clients pinned alternately.

    Client *addresses* (``client:<id>``) are what the transport routes, so
    those are what gets pinned — a whole-DC partition then isolates each
    client with its local replicas.
    """
    from ..cluster.topology import Topology

    half = (len(server_ids) + 1) // 2
    topology = Topology({server: dcs[0] if index < half else dcs[1]
                         for index, server in enumerate(server_ids)})
    for index in range(client_count):
        topology.assign(f"client:client-{index}", dcs[index % len(dcs)])
    return topology


def run_multi_dc_scenario(mechanism: CausalityMechanism,
                          seed: int = 23,
                          duration_ms: float = 1200.0,
                          keys: int = 4,
                          clients: int = 4,
                          quorum_mode: str = "sloppy",
                          anti_entropy_strategy: str = "merkle",
                          partition_window: Sequence[float] = (0.3, 0.75),
                          tracer=None) -> ChurnReport:
    """Two datacenters, WAN latency, and a full cross-DC partition.

    Six servers span two DCs; DC-aware placement spreads every key's three
    primaries 2+1 across them, and clients are pinned into a home DC.
    Messages cross a :class:`~repro.network.latency.WanLatency` model
    (sub-ms intra-DC, tens of ms cross-DC), so the async request mode runs
    with WAN-calibrated deadlines.  Mid-run every WAN link is cut: each DC
    keeps serving its local clients via per-DC sloppy quorums — coordinators
    promote *same-DC* fallbacks (the topology-aware ``fallbacks_for``) and
    hold hints for the unreachable remote primaries.  After the heal, hint
    replay and anti-entropy must reconcile the two DCs' divergent sibling
    sets, and the oracle checks no acknowledged write was lost.
    """
    from ..cluster.preference_list import QuorumConfig
    from ..kvstore.simulated import SimulatedCluster
    from ..network.latency import WanLatency

    from .clients import ClosedLoopConfig, run_closed_loop_workload

    server_ids = ("n1", "n2", "n3", "n4", "n5", "n6")
    topology = _two_dc_topology(server_ids, clients)
    cluster = SimulatedCluster(
        mechanism,
        server_ids=server_ids,
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=(quorum_mode == "sloppy")),
        latency=WanLatency(topology),
        topology=topology,
        anti_entropy_interval_ms=150.0,
        anti_entropy_strategy=anti_entropy_strategy,
        hint_replay_interval_ms=60.0,
        request_mode="async",
        replica_timeout_ms=50.0,
        request_timeout_ms=110.0,
        client_timeout_ms=130.0,
        seed=seed,
        tracer=tracer,
    )
    report = ChurnReport(scenario="multi_dc", mechanism=mechanism.name,
                         quorum_mode=quorum_mode,
                         datacenters=topology.datacenters())

    cut_at = duration_ms * partition_window[0]
    heal_at = duration_ms * partition_window[1]
    cluster.simulation.schedule_at(
        cut_at, lambda: cluster.partitions.partition_datacenters(topology),
        label="wan-partition:cut")
    cluster.simulation.schedule_at(
        heal_at, lambda: cluster.partitions.heal(),
        label="wan-partition:heal")
    report.partition_windows.append((cut_at, heal_at))
    report.partition_flaps = 1

    config = ClosedLoopConfig(
        keys=tuple(f"key-{index}" for index in range(keys)),
        think_time_ms=6.0,
        write_fraction=0.6,
        stale_write_fraction=0.2,
        stop_at_ms=duration_ms,
    )
    run_closed_loop_workload(cluster, client_count=clients, config=config,
                             base_seed=seed * 1000)
    cluster.partitions.heal()
    report.cluster = cluster
    return _finish_churn_run(cluster, report, max_rounds=60)


def run_soak_scenario(mechanism: CausalityMechanism,
                      seed: int = 29,
                      duration_ms: float = 1500.0,
                      keys: int = 8,
                      clients: int = 6,
                      zipf_s: float = 0.9,
                      stale_write_fraction: float = 0.25,
                      flaps: int = 2,
                      quorum_mode: str = "sloppy",
                      anti_entropy_strategy: str = "merkle",
                      sample_every_ms: float = 100.0,
                      tracer=None) -> ChurnReport:
    """Long mixed run: churn × skew × WAN partition flap, all at once.

    A two-DC, six-server cluster under Zipf-skewed stale-context traffic
    takes everything the other scenarios throw one at a time: a node
    crashes and recovers, a new node joins mid-run (ring rebalance +
    handoff), the WAN link flaps ``flaps`` times (cut, heal, repeat), and a
    founding node is gracefully decommissioned near the end.  The point of
    a soak is the *interaction* of the mechanisms — hints replaying into a
    rebalanced ring while anti-entropy reconciles partition-era siblings —
    and the exit bar is the same as everywhere else: convergence plus the
    generalized lost-update invariant.  ``duration_ms`` scales the run; the
    default stays test-sized, the ``-m soak`` suite runs it long.
    """
    from ..cluster.preference_list import QuorumConfig
    from ..kvstore.simulated import SimulatedCluster
    from ..network.latency import WanLatency
    from .clients import ClosedLoopConfig, run_closed_loop_workload

    server_ids = ("n1", "n2", "n3", "n4", "n5", "n6")
    topology = _two_dc_topology(server_ids, clients)
    cluster = SimulatedCluster(
        mechanism,
        server_ids=server_ids,
        quorum=QuorumConfig(n=3, r=2, w=2, sloppy=(quorum_mode == "sloppy")),
        latency=WanLatency(topology),
        topology=topology,
        anti_entropy_interval_ms=120.0,
        anti_entropy_strategy=anti_entropy_strategy,
        hint_replay_interval_ms=50.0,
        request_mode="async",
        replica_timeout_ms=50.0,
        request_timeout_ms=110.0,
        client_timeout_ms=130.0,
        seed=seed,
        tracer=tracer,
    )
    key_names = tuple(f"key-{index}" for index in range(keys))
    hot_key = key_names[0]
    report = ChurnReport(scenario="soak", mechanism=mechanism.name,
                         quorum_mode=quorum_mode, hot_key=hot_key,
                         datacenters=topology.datacenters())

    # Node churn: an early crash/recover cycle and a mid-run join.  The
    # joiner lands in the smaller DC (or east on a tie).
    cluster.simulation.schedule_at(duration_ms * 0.10,
                                   lambda: cluster.fail_node("n2"),
                                   label="soak-fail:n2")
    cluster.simulation.schedule_at(duration_ms * 0.25,
                                   lambda: cluster.recover_node("n2"),
                                   label="soak-recover:n2")

    def do_join() -> None:
        dc = min(topology.datacenters(),
                 key=lambda name: len(topology.nodes_in(name)))
        report.handoff_keys += cluster.join_node("n7", dc=dc)
        report.joined.append("n7")

    cluster.simulation.schedule_at(duration_ms * 0.15, do_join, label="soak-join:n7")

    # WAN flaps: evenly spaced cut/heal cycles in the middle of the run.
    flap_span = duration_ms * 0.5
    flap_start = duration_ms * 0.3
    period = flap_span / max(flaps, 1)
    for flap in range(flaps):
        cut_at = flap_start + flap * period
        heal_at = cut_at + period * 0.6
        cluster.simulation.schedule_at(
            cut_at, lambda: cluster.partitions.partition_datacenters(topology),
            label=f"soak-flap-cut:{flap}")
        cluster.simulation.schedule_at(
            heal_at, lambda: cluster.partitions.heal(),
            label=f"soak-flap-heal:{flap}")
        report.partition_windows.append((cut_at, heal_at))
    report.partition_flaps = flaps

    # Graceful departure after the last heal, once the WAN is quiet.
    def do_leave() -> None:
        report.handoff_keys += cluster.decommission_node("n1")
        report.departed.append("n1")

    cluster.simulation.schedule_at(duration_ms * 0.9, do_leave,
                                   label="soak-leave:n1")

    _sample_sibling_series(cluster, report, hot_key, duration_ms, sample_every_ms)

    config = ClosedLoopConfig(
        keys=key_names,
        think_time_ms=5.0,
        write_fraction=0.6,
        stale_write_fraction=stale_write_fraction,
        zipf_s=zipf_s,
        stop_at_ms=duration_ms,
    )
    run_closed_loop_workload(cluster, client_count=clients, config=config,
                             base_seed=seed * 1000)
    cluster.partitions.heal()
    report.cluster = cluster
    return _finish_churn_run(cluster, report, max_rounds=60)


CHURN_SCENARIOS = {
    "elasticity": run_elasticity_scenario,
    "flappy_replica": run_flappy_replica_scenario,
    "sloppy_partition": run_sloppy_partition_scenario,
    "hot_key": run_hot_key_scenario,
    "multi_dc": run_multi_dc_scenario,
    "soak": run_soak_scenario,
}


def run_churn_scenario(name: str, mechanism: CausalityMechanism, **kwargs) -> ChurnReport:
    """Run one named churn scenario on the simulated cluster."""
    if name not in CHURN_SCENARIOS:
        raise KeyError(f"unknown churn scenario {name!r}; known: {sorted(CHURN_SCENARIOS)}")
    return CHURN_SCENARIOS[name](mechanism, **kwargs)


SCENARIOS: Dict[str, Trace] = {}


def named_scenarios() -> Dict[str, Trace]:
    """Fresh copies of every named scenario trace (excluding Figure 1)."""
    return {
        "concurrent_writers": concurrent_writers_trace(),
        "rmw_chain": read_modify_write_chain_trace(),
        "session_resets": session_reset_trace(),
        "interleaved_two_server": interleaved_two_server_trace(),
    }


def replay_scenario(name: str, mechanism: CausalityMechanism) -> ReplayResult:
    """Replay one named scenario under ``mechanism``."""
    scenarios = named_scenarios()
    if name == "figure1":
        return replay_trace(figure1_trace(), mechanism)
    if name not in scenarios:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(scenarios) + ['figure1']}")
    return replay_trace(scenarios[name], mechanism)
