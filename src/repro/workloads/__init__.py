"""Workloads: the Figure 1 trace, named scenarios, synthetic generators, drivers."""

from .clients import ClosedLoopClient, ClosedLoopConfig, run_closed_loop_workload
from .generator import WorkloadConfig, WorkloadGenerator, generate_workload
from .scenarios import (
    CHURN_SCENARIOS,
    ChurnReport,
    Figure1Result,
    Figure1Step,
    concurrent_writers_trace,
    figure1_trace,
    interleaved_two_server_trace,
    named_scenarios,
    read_modify_write_chain_trace,
    replay_scenario,
    run_churn_scenario,
    run_elasticity_scenario,
    run_figure1,
    run_figure1_by_name,
    run_flappy_replica_scenario,
    session_reset_trace,
)
from .traces import Operation, OpType, ReplayResult, Trace, replay_trace

__all__ = [
    "CHURN_SCENARIOS",
    "ChurnReport",
    "ClosedLoopClient",
    "ClosedLoopConfig",
    "Figure1Result",
    "Figure1Step",
    "Operation",
    "OpType",
    "ReplayResult",
    "Trace",
    "WorkloadConfig",
    "WorkloadGenerator",
    "concurrent_writers_trace",
    "figure1_trace",
    "generate_workload",
    "interleaved_two_server_trace",
    "named_scenarios",
    "read_modify_write_chain_trace",
    "replay_scenario",
    "replay_trace",
    "run_churn_scenario",
    "run_closed_loop_workload",
    "run_elasticity_scenario",
    "run_figure1",
    "run_figure1_by_name",
    "run_flappy_replica_scenario",
    "session_reset_trace",
]
