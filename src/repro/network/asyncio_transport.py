"""Real-socket transport: the asyncio backend of the protocol machines.

Where the simulator delivers :class:`~repro.network.message.Message` objects
through a virtual-time event queue, an :class:`AsyncioEndpoint` puts the same
messages on actual sockets — TCP or Unix-domain — using the length-prefixed
framing of :mod:`repro.network.wire`.  One endpoint is one addressable node
(a storage server or a client): it listens on its own address for inbound
frames and lazily opens one persistent outbound connection per peer it sends
to, so the socket topology mirrors the message-passing model the protocol
was written against.

Everything runs on one event loop; per-connection reader coroutines decode
frames and hand messages to the node's handler synchronously, exactly like
the simulator's delivery callback.  Timers map to ``loop.call_later`` and the
clock to ``loop.time()`` — the state machines never notice they moved from
virtual milliseconds to wall-clock milliseconds.

Failure semantics match the simulated transport's stance: a send toward an
address nobody listens on, or over a connection that breaks, is a counted,
silent drop (``stats.dropped_unknown_destination``).  The protocol already
tolerates lost messages — deadlines, read repair and anti-entropy exist for
exactly that — so the backend never retries or errors a send.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Tuple, Union

from .base import ProtocolTransport
from .message import Message
from .transport import TransportStats
from .wire import frame_message, read_message

#: Where an endpoint listens: ``("tcp", host, port)`` or ``("unix", path)``.
Address = Union[Tuple[str, str, int], Tuple[str, str]]

MessageHandler = Callable[[Message], None]


class _TimerHandle:
    """Adapter giving ``loop.call_later`` handles the simulator's surface."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        self._handle.cancel()


class _Peer:
    """One lazily-connected outbound stream to a fixed peer address."""

    def __init__(self, address: Address) -> None:
        self.address = address
        self.writer: Optional[asyncio.StreamWriter] = None
        self.connect_task: Optional[asyncio.Task] = None
        #: Frames queued while the connection is still being established.
        self.backlog: List[bytes] = []


class AsyncioEndpoint(ProtocolTransport):
    """One addressable node of the asyncio backend.

    Parameters
    ----------
    node_id:
        The address the protocol knows this node by (``"A"``,
        ``"client:c1"``, ...).
    address_book:
        Shared map from node id to listen address for every node this one
        may talk to (including itself).  Ids absent from the book are
        undeliverable — counted drops, like the simulator's unregistered
        receivers.
    handler:
        Called synchronously with every decoded inbound message.
    loop:
        Event loop; defaults to the running loop at :meth:`start` time.
    """

    def __init__(self,
                 node_id: str,
                 address_book: Dict[str, Address],
                 handler: Optional[MessageHandler] = None) -> None:
        self.node_id = node_id
        self.address_book = address_book
        self.handler = handler
        self.stats = TransportStats()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._peers: Dict[str, _Peer] = {}
        self._reader_tasks: List[asyncio.Task] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listen socket and start accepting inbound connections."""
        self._loop = asyncio.get_running_loop()
        address = self.address_book[self.node_id]
        if address[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._accept, path=address[1])
        elif address[0] == "tcp":
            self._server = await asyncio.start_server(
                self._accept, host=address[1], port=address[2])
        else:
            raise ValueError(f"unknown address kind {address[0]!r}")

    async def close(self) -> None:
        """Stop listening, drop every connection, cancel reader tasks."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._reader_tasks:
            task.cancel()
        for task in self._reader_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._reader_tasks.clear()
        for peer in self._peers.values():
            if peer.connect_task is not None:
                peer.connect_task.cancel()
            if peer.writer is not None:
                peer.writer.close()
        self._peers.clear()

    # ------------------------------------------------------------------ #
    # Inbound
    # ------------------------------------------------------------------ #
    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.append(task)
        try:
            while True:
                message = await read_message(reader)
                self.stats.record_delivered(message.msg_type.value,
                                            message.size_bytes)
                if self.handler is not None:
                    self.handler(message)
        except asyncio.CancelledError:
            pass  # endpoint closing; finish normally so close() can await us
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer closed (or died); it will redial if it needs us
        finally:
            writer.close()
            if task is not None and task in self._reader_tasks:
                self._reader_tasks.remove(task)

    # ------------------------------------------------------------------ #
    # Outbound (the transport contract)
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Frame and write toward the receiver's endpoint, best-effort."""
        self.stats.sent += 1
        self.stats.bytes_sent += message.size_bytes
        self.stats.record_type(message.msg_type.value, message.size_bytes)
        if self._closed or message.receiver not in self.address_book:
            self.stats.dropped_unknown_destination += 1
            self.stats.record_dropped(message.msg_type.value, message.size_bytes)
            return
        frame = frame_message(message)
        peer = self._peers.get(message.receiver)
        if peer is None:
            peer = _Peer(self.address_book[message.receiver])
            self._peers[message.receiver] = peer
        if peer.writer is not None:
            try:
                peer.writer.write(frame)
            except (ConnectionError, RuntimeError):
                # Broken pipe: drop this frame, forget the stream so the
                # next send redials.  The protocol tolerates the loss.
                self._drop(message)
                peer.writer = None
            return
        peer.backlog.append(frame)
        if peer.connect_task is None:
            peer.connect_task = self._require_loop().create_task(
                self._connect(message.receiver, peer))

    def _drop(self, message: Message) -> None:
        self.stats.dropped_unknown_destination += 1
        self.stats.record_dropped(message.msg_type.value, message.size_bytes)

    async def _connect(self, peer_id: str, peer: _Peer) -> None:
        try:
            if peer.address[0] == "unix":
                _, writer = await asyncio.open_unix_connection(path=peer.address[1])
            else:
                _, writer = await asyncio.open_connection(
                    host=peer.address[1], port=peer.address[2])
        except OSError:
            # Nobody listening: everything queued for this peer is dropped,
            # and the *next* send attempts a fresh connection.
            peer.backlog.clear()
            peer.connect_task = None
            return
        peer.writer = writer
        peer.connect_task = None
        backlog, peer.backlog = peer.backlog, []
        for frame in backlog:
            writer.write(frame)

    # ------------------------------------------------------------------ #
    # Timers and clock (the transport contract)
    # ------------------------------------------------------------------ #
    def schedule_deadline(self, delay_ms: float, callback: Callable[[], None],
                          label: str = "deadline") -> _TimerHandle:
        self.stats.deadlines_set += 1

        def fire() -> None:
            self.stats.deadlines_fired += 1
            callback()

        return _TimerHandle(
            self._require_loop().call_later(delay_ms / 1000.0, fire))

    def cancel_deadline(self, handle: Optional[_TimerHandle]) -> None:
        if handle is None or handle.cancelled:
            return
        self.stats.deadlines_cancelled += 1
        handle.cancel()

    def schedule_task(self, delay_ms: float, callback: Callable[[], None],
                      label: str = "task") -> _TimerHandle:
        return _TimerHandle(
            self._require_loop().call_later(delay_ms / 1000.0, callback))

    def cancel_task(self, handle: Optional[_TimerHandle]) -> None:
        if handle is None or handle.cancelled:
            return
        handle.cancel()

    def now_ms(self) -> float:
        return self._require_loop().time() * 1000.0

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"AsyncioEndpoint(id={self.node_id!r}, "
                f"sent={self.stats.sent}, delivered={self.stats.delivered})")
