"""The transport contract protocol state machines are hosted over.

The state machines in :mod:`repro.kvstore.protocol` never talk to a network
directly — they emit effects, and an
:class:`~repro.kvstore.protocol.effects.EffectRunner` executes those against
*some* transport.  This module pins down what "some transport" must provide,
so a third backend only has to implement these six methods:

``send(message)``
    Put a :class:`~repro.network.message.Message` on the wire, best-effort.
    Delivery semantics are the backend's: the simulator applies latency,
    loss, duplication and partitions; the asyncio backend writes a frame to
    the receiver's socket.  Unreachable receivers are a silent drop — the
    protocol is built to tolerate exactly that.

``schedule_deadline(delay_ms, callback, label) -> handle``
    Arm a failure-detection deadline.  Backends may account these separately
    (the simulator's ``deadlines_set/fired/cancelled`` stats).

``cancel_deadline(handle)``
    Disarm a deadline; must tolerate ``None`` and already-fired handles.

``schedule_task(delay_ms, callback, label) -> handle`` / ``cancel_task(handle)``
    Same, for ordinary scheduled work (coalescing flushes) that is *not* a
    failure signal and must not pollute deadline statistics.

``now_ms() -> float``
    The backend's clock, in milliseconds.  Simulated time or wall clock —
    the machines only ever subtract two readings.

Implementations: :class:`repro.network.transport.Transport` (deterministic
simulator) and :class:`repro.network.asyncio_transport.AsyncioEndpoint`
(real sockets).  The contract is duck-typed — the simulator's ``Transport``
predates it — but new backends should subclass for the documentation value.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from .message import Message


class ProtocolTransport(abc.ABC):
    """What an :class:`EffectRunner` needs from a backend."""

    @abc.abstractmethod
    def send(self, message: Message) -> None:
        """Best-effort delivery of ``message`` toward ``message.receiver``."""

    @abc.abstractmethod
    def schedule_deadline(self, delay_ms: float, callback: Callable[[], None],
                          label: str = "deadline") -> Any:
        """Arm a failure-detection deadline; returns a cancellable handle."""

    @abc.abstractmethod
    def cancel_deadline(self, handle: Any) -> None:
        """Disarm a deadline (idempotent; tolerates ``None``)."""

    @abc.abstractmethod
    def schedule_task(self, delay_ms: float, callback: Callable[[], None],
                      label: str = "task") -> Any:
        """Schedule ordinary work; returns a cancellable handle."""

    @abc.abstractmethod
    def cancel_task(self, handle: Any) -> None:
        """Disarm a scheduled task (idempotent; tolerates ``None``)."""

    @abc.abstractmethod
    def now_ms(self) -> float:
        """The backend's clock in milliseconds (simulated or wall)."""
