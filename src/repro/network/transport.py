"""Simulated message transport: delays, drops, duplicates, partitions.

The transport is the only way nodes in the simulated store talk to each other.
It is intentionally unreliable-by-configuration: messages can be delayed
according to a :class:`~repro.network.latency.LatencyModel`, dropped with a
configurable probability, duplicated, and blocked entirely by a
:class:`~repro.network.partition.PartitionManager`.  The storage layer above
it must therefore tolerate exactly the failure modes a real Dynamo-style
deployment tolerates, which keeps the substitution for the paper's Riak
cluster honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.exceptions import ConfigurationError, SimulationError
from .latency import FixedLatency, LatencyModel, PerLinkLatency
from .message import Message
from .partition import PartitionManager
from .simulator import Simulation

MessageHandler = Callable[[Message], None]


@dataclass
class TransportStats:
    """Counters the transport maintains for analysis and debugging.

    Byte accounting distinguishes *attempted* traffic (``bytes_sent``, every
    message handed to the transport) from *delivered* and *dropped* traffic.
    Messages eaten by a partition, a lossy link or a crashed/unregistered
    receiver count toward ``bytes_dropped``, never ``bytes_delivered``, so
    byte-series built from :meth:`bytes_for` no longer over-report traffic
    that never reached a handler.  A duplicated message that arrives twice is
    counted as delivered twice — it really did cross the wire twice.
    """

    sent: int = 0
    delivered: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0
    dropped_unknown_destination: int = 0
    duplicated: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    bytes_dropped: int = 0
    deadlines_set: int = 0
    deadlines_fired: int = 0
    deadlines_cancelled: int = 0
    per_type: Dict[str, int] = field(default_factory=dict)
    bytes_per_type: Dict[str, int] = field(default_factory=dict)
    delivered_bytes_per_type: Dict[str, int] = field(default_factory=dict)
    dropped_bytes_per_type: Dict[str, int] = field(default_factory=dict)

    def record_type(self, msg_type: str, size_bytes: int = 0) -> None:
        self.per_type[msg_type] = self.per_type.get(msg_type, 0) + 1
        self.bytes_per_type[msg_type] = self.bytes_per_type.get(msg_type, 0) + size_bytes

    def record_delivered(self, msg_type: str, size_bytes: int = 0) -> None:
        self.delivered += 1
        self.bytes_delivered += size_bytes
        self.delivered_bytes_per_type[msg_type] = (
            self.delivered_bytes_per_type.get(msg_type, 0) + size_bytes
        )

    def record_dropped(self, msg_type: str, size_bytes: int = 0) -> None:
        self.bytes_dropped += size_bytes
        self.dropped_bytes_per_type[msg_type] = (
            self.dropped_bytes_per_type.get(msg_type, 0) + size_bytes
        )

    def bytes_for(self, *msg_types: str) -> int:
        """Total bytes *delivered* across the given message types."""
        return sum(self.delivered_bytes_per_type.get(msg_type, 0) for msg_type in msg_types)

    def attempted_bytes_for(self, *msg_types: str) -> int:
        """Total bytes handed to the transport for the given message types."""
        return sum(self.bytes_per_type.get(msg_type, 0) for msg_type in msg_types)


class Transport:
    """Delivers messages between registered nodes through the simulation.

    Parameters
    ----------
    simulation:
        The event loop that owns virtual time and randomness.
    latency:
        One-way delay model.  A :class:`PerLinkLatency` wrapper is honoured
        per (sender, receiver) pair.
    loss_probability:
        Probability that any given message is silently dropped.
    duplicate_probability:
        Probability that a delivered message is delivered a second time
        (slightly later), exercising idempotence of the store's handlers.
    partitions:
        Optional partition manager; when absent the cluster is fully connected.
    """

    def __init__(self,
                 simulation: Simulation,
                 latency: Optional[LatencyModel] = None,
                 loss_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 partitions: Optional[PartitionManager] = None) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(f"loss_probability must be in [0, 1), got {loss_probability}")
        if not 0.0 <= duplicate_probability < 1.0:
            raise ConfigurationError(
                f"duplicate_probability must be in [0, 1), got {duplicate_probability}"
            )
        self.simulation = simulation
        self.latency = latency or FixedLatency(1.0)
        self.loss_probability = loss_probability
        self.duplicate_probability = duplicate_probability
        self.partitions = partitions or PartitionManager()
        self.stats = TransportStats()
        self._handlers: Dict[str, MessageHandler] = {}
        self._trace: List[Message] = []
        self.trace_enabled = False

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Register the message handler of a node (client or server)."""
        if node_id in self._handlers:
            raise ConfigurationError(f"node {node_id!r} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        """Remove a node (messages to it are then counted as undeliverable)."""
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: str) -> bool:
        """True iff a handler is registered for ``node_id``."""
        return node_id in self._handlers

    def nodes(self) -> List[str]:
        """Identifiers of all registered nodes."""
        return sorted(self._handlers)

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Send ``message``; delivery (if any) happens via the simulation."""
        self.stats.sent += 1
        self.stats.bytes_sent += message.size_bytes
        self.stats.record_type(message.msg_type.value, message.size_bytes)
        if self.trace_enabled:
            self._trace.append(message)

        if not self.partitions.can_communicate(message.sender, message.receiver):
            self.stats.dropped_partition += 1
            self.stats.record_dropped(message.msg_type.value, message.size_bytes)
            return
        if message.receiver not in self._handlers:
            self.stats.dropped_unknown_destination += 1
            self.stats.record_dropped(message.msg_type.value, message.size_bytes)
            return
        rng = self.simulation.rng
        if self.loss_probability and rng.random() < self.loss_probability:
            self.stats.dropped_loss += 1
            self.stats.record_dropped(message.msg_type.value, message.size_bytes)
            return

        delay = self._sample_delay(message)
        self.simulation.schedule(delay, lambda: self._deliver(message),
                                 label=f"deliver:{message.msg_type.value}")
        if self.duplicate_probability and rng.random() < self.duplicate_probability:
            self.stats.duplicated += 1
            extra_delay = delay + self._sample_delay(message)
            self.simulation.schedule(extra_delay, lambda: self._deliver(message),
                                     label=f"deliver-dup:{message.msg_type.value}")

    def _sample_delay(self, message: Message) -> float:
        model = self.latency
        if isinstance(model, PerLinkLatency):
            model = model.for_link(message.sender, message.receiver)
        return model.sample(self.simulation.rng, message.size_bytes)

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.receiver)
        if handler is None:
            # Receiver crashed (deregistered) between send and delivery.
            self.stats.dropped_unknown_destination += 1
            self.stats.record_dropped(message.msg_type.value, message.size_bytes)
            return
        self.stats.record_delivered(message.msg_type.value, message.size_bytes)
        handler(message)

    # ------------------------------------------------------------------ #
    # Deadlines (async request mode)
    # ------------------------------------------------------------------ #
    def schedule_deadline(self, delay_ms: float, callback: Callable[[], None],
                          label: str = "deadline"):
        """Schedule a timeout callback ``delay_ms`` from now.

        This is the timer primitive of the async request mode: coordinators
        and clients arm a deadline per outstanding request (or per replica
        fan-out) and treat its firing as the failure signal, instead of
        consulting the membership view's failure detector.  Returns an event
        handle; pass it to :meth:`cancel_deadline` when the awaited reply
        arrives first.
        """
        self.stats.deadlines_set += 1

        def fire() -> None:
            self.stats.deadlines_fired += 1
            callback()

        return self.simulation.schedule(delay_ms, fire, label=label)

    def cancel_deadline(self, handle) -> None:
        """Disarm a deadline (idempotent; None is tolerated for convenience)."""
        if handle is None or handle.cancelled:
            return
        self.stats.deadlines_cancelled += 1
        handle.cancel()

    # ------------------------------------------------------------------ #
    # Plain scheduled work (not a failure-detection deadline)
    # ------------------------------------------------------------------ #
    def schedule_task(self, delay_ms: float, callback: Callable[[], None],
                      label: str = "task"):
        """Schedule ordinary work ``delay_ms`` from now.

        Unlike :meth:`schedule_deadline` this carries no deadline statistics:
        it is the primitive behind coalescing windows and similar scheduled
        work, where firing is the normal case rather than a failure signal.
        """
        return self.simulation.schedule(delay_ms, callback, label=label)

    def cancel_task(self, handle) -> None:
        """Disarm a scheduled task (idempotent; None is tolerated)."""
        if handle is None or handle.cancelled:
            return
        handle.cancel()

    def now_ms(self) -> float:
        """The transport's clock (virtual milliseconds)."""
        return self.simulation.now

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    @property
    def trace(self) -> List[Message]:
        """Messages sent while :attr:`trace_enabled` was on (testing aid)."""
        return list(self._trace)

    def clear_trace(self) -> None:
        """Discard the recorded trace."""
        self._trace.clear()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Transport(nodes={len(self._handlers)}, sent={self.stats.sent}, "
            f"delivered={self.stats.delivered})"
        )
