"""Wire format of the asyncio backend: framing plus a payload codec.

The simulated transport passes :class:`~repro.network.message.Message`
objects around in memory; the asyncio backend puts the same messages on real
sockets.  Each message travels as one *frame*:

    +----------------+---------+-----------------------------------------+
    | length (4B BE) | version | message body (see :func:`encode_message`)|
    +----------------+---------+-----------------------------------------+

The length prefix counts everything after itself.  The body reuses the
varint/length-prefixed-string primitives of :mod:`repro.core.serialization`
and adds a small recursive *value* codec for the payload dictionaries, whose
entries mix plain Python data with the repo's causality types (dots, clocks,
siblings, causal contexts).  The codec is strict in both directions: an
unsupported payload type raises :class:`SerializationError` at encode time
(instead of pickling arbitrary objects), and a malformed or truncated frame
raises at decode time.

Two deliberate choices:

* ``tuple`` and ``list`` are distinct tags, because mechanism states are
  tuples and handlers pattern-match on their shape; round-tripping must not
  quietly turn one into the other.
* :class:`~repro.clocks.interface.Sibling` keeps its ``uid`` across the wire.
  Uids are process-local sequence numbers; within one process (the backend's
  intended deployment for experiments) preserving them keeps report output
  stable, and between processes they are only used for display.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Tuple

from ..clocks.interface import Sibling
from ..core import codec
from ..core.causal_history import CausalHistory
from ..core.dot import Dot
from ..core.dvv import DottedVersionVector
from ..core.dvvset import DVVSet
from ..core.exceptions import SerializationError
from ..core.serialization import (
    _decode_actor,
    _decode_str,
    _decode_varint,
    _decode_vv_body,
    _encode_str,
    _encode_varint,
    _encode_vv_body,
)
from ..core.version_vector import VersionVector
from ..clocks.vve import DottedVVE, VersionVectorWithExceptions
from ..kvstore.context import CausalContext
from .message import Message, MessageType

#: Bumped when the frame layout or a tag changes incompatibly.
WIRE_VERSION = 1

#: Upper bound on one frame's body (guards against a corrupted length prefix
#: making the reader try to buffer gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")
_FLOAT = struct.Struct(">d")


# ---------------------------------------------------------------------- #
# Recursive value codec
# ---------------------------------------------------------------------- #
def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        out += b"i"
        out += _encode_varint(_zigzag(value))
    elif isinstance(value, float):
        out += b"f"
        out += _FLOAT.pack(value)
    elif isinstance(value, str):
        out += b"s"
        out += _encode_str(value)
    elif isinstance(value, (bytes, bytearray)):
        out += b"b"
        out += _encode_varint(len(value))
        out += value
    elif isinstance(value, list):
        out += b"l"
        out += _encode_varint(len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, tuple):
        out += b"t"
        out += _encode_varint(len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, frozenset):
        out += b"z"
        out += _encode_varint(len(value))
        for item in sorted(value):
            _encode_value(item, out)
    elif isinstance(value, dict):
        out += b"d"
        out += _encode_varint(len(value))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    elif isinstance(value, Dot):
        out += b"D"
        out += _encode_str(value.actor)
        out += _encode_varint(value.counter)
    elif isinstance(value, VersionVector):
        # Canonical tag "V" matches the wire tag: embed the cached bytes.
        out += codec.canonical_bytes(value)
    elif isinstance(value, DottedVersionVector):
        # Canonical tag is "D" (the wire reserves "D" for Dot): retag to "W",
        # the body layouts are identical.
        out += b"W"
        out += codec.canonical_bytes(value)[1:]
    elif isinstance(value, VersionVectorWithExceptions):
        # Canonical "E" encoding (registered by repro.clocks.vve) matches.
        out += codec.canonical_bytes(value)
    elif isinstance(value, DottedVVE):
        out += codec.canonical_bytes(value)
    elif isinstance(value, CausalHistory):
        out += codec.canonical_bytes(value)
    elif isinstance(value, DVVSet):
        # Unlike repro.core.serialization (which stringifies DVVSet values
        # for size accounting), the wire codec recurses into them: in the
        # store the values are Sibling records and must survive round-trip.
        out += b"S"
        out += _encode_varint(len(value.entries))
        for actor, counter, values in value.entries:
            out += _encode_str(actor)
            out += _encode_varint(counter)
            out += _encode_varint(len(values))
            for item in values:
                _encode_value(item, out)
        out += _encode_varint(len(value.anonymous))
        for item in value.anonymous:
            _encode_value(item, out)
    elif isinstance(value, Sibling):
        # Siblings are frozen dataclasses; when the payload value is itself
        # immutable the whole G-record is a pure function of the instance, so
        # memoize it (a sibling is re-sent on every replicate/handoff/repair).
        cached = getattr(value, "_wire_encoded", None)
        if cached is not None:
            out += cached
            return
        record = bytearray(b"G")
        _encode_value(value.value, record)
        record += _encode_str(value.origin_dot.actor)
        record += _encode_varint(value.origin_dot.counter)
        _encode_value(value.history, record)
        _encode_value(value.writer, record)
        record += _encode_varint(value.uid)
        if isinstance(value.value, (str, int, float, bool, bytes, type(None))):
            object.__setattr__(value, "_wire_encoded", bytes(record))
        out += record
    elif isinstance(value, CausalContext):
        out += b"C"
        out += _encode_str(value.key)
        _encode_value(value.mechanism_context, out)
        _encode_value(value.observed_history, out)
        out += _encode_str(value.mechanism_name)
    else:
        raise SerializationError(
            f"cannot put object of type {type(value).__name__} on the wire"
        )


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise SerializationError("truncated value")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        raw, offset = _decode_varint(data, offset)
        return _unzigzag(raw), offset
    if tag == b"f":
        if offset + 8 > len(data):
            raise SerializationError("truncated float")
        return _FLOAT.unpack_from(data, offset)[0], offset + 8
    if tag == b"s":
        return _decode_str(data, offset)
    if tag == b"b":
        length, offset = _decode_varint(data, offset)
        if offset + length > len(data):
            raise SerializationError("truncated bytes")
        return data[offset:offset + length], offset + length
    if tag in (b"l", b"t", b"z"):
        count, offset = _decode_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            items.append(item)
        if tag == b"l":
            return items, offset
        if tag == b"t":
            return tuple(items), offset
        return frozenset(items), offset
    if tag == b"d":
        count, offset = _decode_varint(data, offset)
        entries: Dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode_value(data, offset)
            item, offset = _decode_value(data, offset)
            entries[key] = item
        return entries, offset
    if tag == b"D":
        actor, offset = _decode_actor(data, offset)
        counter, offset = _decode_varint(data, offset)
        return Dot(actor, counter), offset
    if tag == b"V":
        return _decode_vv_body(data, offset)
    if tag == b"W":
        actor, offset = _decode_actor(data, offset)
        counter, offset = _decode_varint(data, offset)
        past, offset = _decode_vv_body(data, offset)
        return DottedVersionVector(Dot(actor, counter), past), offset
    if tag == b"E":
        base, offset = _decode_vv_body(data, offset)
        count, offset = _decode_varint(data, offset)
        exceptions = []
        for _ in range(count):
            actor, offset = _decode_actor(data, offset)
            counter, offset = _decode_varint(data, offset)
            exceptions.append(Dot(actor, counter))
        return VersionVectorWithExceptions(base.entries(), exceptions), offset
    if tag == b"X":
        actor, offset = _decode_actor(data, offset)
        counter, offset = _decode_varint(data, offset)
        past, offset = _decode_value(data, offset)
        if not isinstance(past, VersionVectorWithExceptions):
            raise SerializationError("DottedVVE causal past must be a VVE")
        return DottedVVE(Dot(actor, counter), past), offset
    if tag == b"H":
        has_event, offset = _decode_varint(data, offset)
        event = None
        if has_event:
            actor, offset = _decode_actor(data, offset)
            counter, offset = _decode_varint(data, offset)
            event = Dot(actor, counter)
        count, offset = _decode_varint(data, offset)
        dots = []
        for _ in range(count):
            actor, offset = _decode_actor(data, offset)
            counter, offset = _decode_varint(data, offset)
            dots.append(Dot(actor, counter))
        return CausalHistory.from_events(dots, event), offset
    if tag == b"S":
        entry_count, offset = _decode_varint(data, offset)
        entries = []
        for _ in range(entry_count):
            actor, offset = _decode_actor(data, offset)
            counter, offset = _decode_varint(data, offset)
            value_count, offset = _decode_varint(data, offset)
            values = []
            for _ in range(value_count):
                item, offset = _decode_value(data, offset)
                values.append(item)
            entries.append((actor, counter, tuple(values)))
        anon_count, offset = _decode_varint(data, offset)
        anonymous = []
        for _ in range(anon_count):
            item, offset = _decode_value(data, offset)
            anonymous.append(item)
        return DVVSet(entries, anonymous), offset
    if tag == b"G":
        value, offset = _decode_value(data, offset)
        actor, offset = _decode_actor(data, offset)
        counter, offset = _decode_varint(data, offset)
        history, offset = _decode_value(data, offset)
        writer, offset = _decode_value(data, offset)
        uid, offset = _decode_varint(data, offset)
        return Sibling(value=value, origin_dot=Dot(actor, counter),
                       history=history, writer=writer, uid=uid), offset
    if tag == b"C":
        key, offset = _decode_str(data, offset)
        mechanism_context, offset = _decode_value(data, offset)
        observed_history, offset = _decode_value(data, offset)
        mechanism_name, offset = _decode_str(data, offset)
        return CausalContext(
            key=key,
            mechanism_context=mechanism_context,
            observed_history=observed_history,
            mechanism_name=mechanism_name,
        ), offset
    raise SerializationError(f"unknown wire tag {tag!r}")


# ---------------------------------------------------------------------- #
# Message bodies and frames
# ---------------------------------------------------------------------- #
def encode_message(message: Message) -> bytes:
    """Encode a message into one frame body (version byte included)."""
    out = bytearray()
    out.append(WIRE_VERSION)
    out += _encode_str(message.msg_type.value)
    out += _encode_str(message.sender)
    out += _encode_str(message.receiver)
    out += _encode_varint(message.size_bytes)
    out += _encode_varint(message.msg_id)
    out += _encode_varint(1 if message.request_id is not None else 0)
    if message.request_id is not None:
        out += _encode_varint(message.request_id)
    _encode_value(message.payload, out)
    return bytes(out)


def decode_message(data: bytes) -> Message:
    """Decode one frame body back into a :class:`Message`."""
    if not data:
        raise SerializationError("empty frame")
    version = data[0]
    if version != WIRE_VERSION:
        raise SerializationError(
            f"unsupported wire version {version} (speak {WIRE_VERSION})"
        )
    offset = 1
    type_value, offset = _decode_str(data, offset)
    try:
        msg_type = MessageType(type_value)
    except ValueError as exc:
        raise SerializationError(f"unknown message type {type_value!r}") from exc
    sender, offset = _decode_str(data, offset)
    receiver, offset = _decode_str(data, offset)
    size_bytes, offset = _decode_varint(data, offset)
    msg_id, offset = _decode_varint(data, offset)
    has_request_id, offset = _decode_varint(data, offset)
    request_id = None
    if has_request_id:
        request_id, offset = _decode_varint(data, offset)
    payload, offset = _decode_value(data, offset)
    if offset != len(data):
        raise SerializationError(
            f"trailing bytes after decoding message ({len(data) - offset} left)"
        )
    return Message(
        sender=sender,
        receiver=receiver,
        msg_type=msg_type,
        payload=payload,
        size_bytes=size_bytes,
        request_id=request_id,
        msg_id=msg_id,
    )


def frame_message(message: Message) -> bytes:
    """One wire frame: 4-byte big-endian length prefix plus the body."""
    body = encode_message(message)
    if len(body) > MAX_FRAME_BYTES:
        raise SerializationError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LENGTH.pack(len(body)) + body


def unframe(buffer: bytes) -> Tuple[Any, bytes]:
    """Split one complete frame off ``buffer``.

    Returns ``(message, rest)`` — or ``(None, buffer)`` when the buffer does
    not yet hold a complete frame (the caller keeps reading).
    """
    if len(buffer) < _LENGTH.size:
        return None, buffer
    (length,) = _LENGTH.unpack_from(buffer)
    if length > MAX_FRAME_BYTES:
        raise SerializationError(
            f"frame length {length} exceeds MAX_FRAME_BYTES (corrupt stream?)"
        )
    end = _LENGTH.size + length
    if len(buffer) < end:
        return None, buffer
    return decode_message(buffer[_LENGTH.size:end]), buffer[end:]


async def read_message(reader) -> Message:
    """Read exactly one framed message from an asyncio stream reader.

    Raises ``asyncio.IncompleteReadError`` on a cleanly closed connection
    (empty partial read) and :class:`SerializationError` on corruption.
    """
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise SerializationError(
            f"frame length {length} exceeds MAX_FRAME_BYTES (corrupt stream?)"
        )
    body = await reader.readexactly(length)
    return decode_message(body)
