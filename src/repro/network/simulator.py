"""A deterministic discrete-event simulator.

The paper's evaluation ran against a real Riak cluster; we replace the cluster
with a simulated one, and this module is the heart of that substitution: a
single-threaded, deterministic event loop with virtual time.  Determinism
matters because the benchmarks replay the *same* workload under several
causality mechanisms and compare outcomes — any nondeterminism in the
substrate would contaminate the comparison.  All randomness is drawn from one
seeded :class:`random.Random` owned by the simulation.

Components (transports, storage nodes, clients, anti-entropy daemons) interact
with the simulation only through :meth:`Simulation.schedule`,
:meth:`Simulation.schedule_at` and :meth:`Simulation.cancel`; the simulation
never calls back into wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.exceptions import SchedulingError, SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: ordered by (time, sequence) for determinism."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulation.schedule`, usable to cancel the event."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Virtual time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True


class Simulation:
    """A single-threaded discrete-event simulation with virtual time.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned random number generator.  Every
        stochastic component (latency models, workload generators wired to the
        simulation) must draw from :attr:`rng` so that a run is reproducible
        from its seed alone.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self.rng = random.Random(seed)
        self.seed = seed
        #: Free-form counters components may bump (message counts, retries, ...).
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Time and scheduling
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current virtual time (arbitrary units; the store interprets ms)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones not yet popped)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay} time units in the past")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, when: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise SchedulingError(f"cannot schedule at {when}, current time is {self._now}")
        event = _ScheduledEvent(when, next(self._sequence), callback, label)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        handle.cancel()

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named statistics counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        ``until`` is an absolute virtual time; events scheduled exactly at
        ``until`` still run.  ``max_events`` guards against runaway event
        storms in misconfigured experiments.
        """
        executed = 0
        while self._queue:
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and next_event.time > until:
                self._now = until
                return
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"simulation exceeded max_events={max_events} (possible event storm)"
                )
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(until=None, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Simulation(now={self._now:.3f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )


class PeriodicTask:
    """A recurring simulation task (anti-entropy rounds, workload ticks, ...).

    The callback runs every ``interval`` time units starting ``offset`` from
    creation, until :meth:`stop` is called or the simulation stops running
    events.  Each instance reschedules itself, so cancelling is race-free
    within the single-threaded simulation.
    """

    def __init__(self,
                 simulation: Simulation,
                 interval: float,
                 callback: EventCallback,
                 offset: float = 0.0,
                 label: str = "periodic") -> None:
        if interval <= 0:
            raise SchedulingError(f"periodic interval must be positive, got {interval}")
        self._simulation = simulation
        self._interval = interval
        self._callback = callback
        self._label = label
        self._stopped = False
        self._handle = simulation.schedule(offset if offset > 0 else interval, self._fire, label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._simulation.schedule(self._interval, self._fire, self._label)

    def stop(self) -> None:
        """Stop the recurrence (the currently scheduled firing is cancelled)."""
        self._stopped = True
        self._handle.cancel()
