"""Message envelopes exchanged by the simulated store's nodes.

Every interaction in the simulated cluster — client requests, coordinator to
replica fan-out, replica replies, anti-entropy exchanges — travels as a
:class:`Message` through the :class:`~repro.network.transport.Transport`.
Messages carry an explicit ``size_bytes`` so the latency models can charge
transmission time proportional to payload size; that is how the paper's
"smaller metadata ⇒ better latency" effect is reproduced (experiment E4).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class MessageType(enum.Enum):
    """Kinds of messages understood by the store's nodes."""

    # Client <-> coordinator
    COORDINATE_GET = "coordinate_get"
    COORDINATE_PUT = "coordinate_put"
    GET_REPLY = "get_reply"
    PUT_REPLY = "put_reply"
    ERROR_REPLY = "error_reply"

    # Coordinator <-> replica
    REPLICA_GET = "replica_get"
    REPLICA_GET_REPLY = "replica_get_reply"
    REPLICA_PUT = "replica_put"
    REPLICA_PUT_ACK = "replica_put_ack"
    READ_REPAIR = "read_repair"

    # Replica <-> replica (background)
    SYNC_REQUEST = "sync_request"
    SYNC_REPLY = "sync_reply"

    # Merkle-delta anti-entropy (level-by-level hashtree exchange).  With
    # per-vnode indexes the exchange opens with a partition-root comparison
    # (PARTITION_DIGESTS / PARTITION_DIFF) and then descends each differing
    # range independently; without them the whole keyspace is one tree.
    MERKLE_PARTITION_DIGESTS = "merkle_partition_digests"
    MERKLE_PARTITION_DIFF = "merkle_partition_diff"
    MERKLE_SYNC_REQUEST = "merkle_sync_request"
    MERKLE_SYNC_RESPONSE = "merkle_sync_response"
    MERKLE_KEY_STATES = "merkle_key_states"

    # Hinted handoff (coordinator-held writes for unreachable replicas)
    HINT_REPLAY = "hint_replay"
    HINT_ACK = "hint_ack"

    # Membership changes (join / decommission rebalancing)
    KEY_HANDOFF = "key_handoff"

    # Control plane
    PING = "ping"
    PONG = "pong"


_message_ids = itertools.count(1)


@dataclass
class Message:
    """A single message in flight between two nodes.

    Attributes
    ----------
    sender / receiver:
        Node identifiers registered with the transport.
    msg_type:
        One of :class:`MessageType`.
    payload:
        Free-form dictionary; the store's handlers document the keys they use.
    size_bytes:
        Approximate wire size.  The transport adds per-byte transmission time
        when a size-dependent latency model is configured.
    request_id:
        Correlation id: replies carry the id of the request they answer so the
        pending-request tracker can match them up.
    msg_id:
        Unique id of this message (diagnostics, tracing).
    """

    sender: str
    receiver: str
    msg_type: MessageType
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    request_id: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def reply(self,
              msg_type: MessageType,
              payload: Optional[Dict[str, Any]] = None,
              size_bytes: int = 0) -> "Message":
        """Build a reply to this message (swapped endpoints, same request id)."""
        return Message(
            sender=self.receiver,
            receiver=self.sender,
            msg_type=msg_type,
            payload=payload or {},
            size_bytes=size_bytes,
            request_id=self.request_id if self.request_id is not None else self.msg_id,
        )

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"Message#{self.msg_id} {self.msg_type.value} {self.sender}->{self.receiver}"
            f" ({self.size_bytes}B)"
        )
