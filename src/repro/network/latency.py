"""Latency models for the simulated network.

Latency is where the paper's "better latency when serving requests" claim is
reproduced without the original Riak testbed: message delay is modelled as a
propagation component (drawn from a distribution) plus a transmission
component proportional to the message size.  Since the only thing that varies
between mechanisms on an identical workload is the size of the causality
metadata they attach to requests and replicated objects, any latency
difference measured by experiment E4 is attributable to metadata size — which
is exactly the effect the paper reports.

All models draw randomness from the :class:`random.Random` instance supplied
per call, so the same seed reproduces the same delays.
"""

from __future__ import annotations

import abc
import math
import random
from typing import Optional

from ..core.exceptions import ConfigurationError


class LatencyModel(abc.ABC):
    """Strategy producing the one-way delay of a message."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        """Return the delay (in simulated milliseconds) for one message."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__}>"


class FixedLatency(LatencyModel):
    """Constant one-way delay; the simplest deterministic model."""

    def __init__(self, delay_ms: float = 1.0) -> None:
        if delay_ms < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay_ms}")
        self.delay_ms = delay_ms

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        return self.delay_ms


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low_ms, high_ms]``."""

    def __init__(self, low_ms: float = 0.5, high_ms: float = 2.0) -> None:
        if low_ms < 0 or high_ms < low_ms:
            raise ConfigurationError(f"invalid uniform bounds [{low_ms}, {high_ms}]")
        self.low_ms = low_ms
        self.high_ms = high_ms

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        return rng.uniform(self.low_ms, self.high_ms)


class LogNormalLatency(LatencyModel):
    """Log-normally distributed delay — the classic long-tailed datacentre model.

    Parameterised by the median delay and a shape factor ``sigma``; the long
    tail is what makes quorum waiting times sensitive to fan-out size.
    """

    def __init__(self, median_ms: float = 1.0, sigma: float = 0.5) -> None:
        if median_ms <= 0:
            raise ConfigurationError(f"median must be positive, got {median_ms}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        self.median_ms = median_ms
        self.sigma = sigma

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        return rng.lognormvariate(math.log(self.median_ms), self.sigma)


class SizeDependentLatency(LatencyModel):
    """Propagation delay (from a base model) plus size-proportional transmission time.

    ``bytes_per_ms`` plays the role of effective bandwidth; the default of
    5000 bytes/ms (≈40 Mbit/s of usable goodput per connection, including
    serialisation overheads) makes kilobyte-scale metadata measurably painful
    without dwarfing propagation delay — the regime the Riak evaluation sits
    in.  A per-message fixed processing overhead can be added too, modelling
    serialisation/parsing cost that also grows with metadata in practice.
    """

    def __init__(self,
                 base: Optional[LatencyModel] = None,
                 bytes_per_ms: float = 5000.0,
                 per_message_overhead_ms: float = 0.05) -> None:
        if bytes_per_ms <= 0:
            raise ConfigurationError(f"bytes_per_ms must be positive, got {bytes_per_ms}")
        if per_message_overhead_ms < 0:
            raise ConfigurationError(
                f"per_message_overhead_ms must be non-negative, got {per_message_overhead_ms}"
            )
        self.base = base or UniformLatency(0.3, 1.0)
        self.bytes_per_ms = bytes_per_ms
        self.per_message_overhead_ms = per_message_overhead_ms

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        propagation = self.base.sample(rng, size_bytes)
        transmission = size_bytes / self.bytes_per_ms
        return propagation + transmission + self.per_message_overhead_ms


class PerLinkLatency(LatencyModel):
    """Wrapper assigning different models to different (sender, receiver) links.

    Useful for modelling a cluster spanning two sites: intra-site links get a
    fast model, inter-site links a slow one.  The transport calls
    :meth:`for_link` to resolve the model; :meth:`sample` falls back to the
    default model so the wrapper is still usable standalone.
    """

    def __init__(self, default: LatencyModel) -> None:
        self.default = default
        self._links: dict = {}

    def set_link(self, sender: str, receiver: str, model: LatencyModel,
                 symmetric: bool = True) -> None:
        """Assign ``model`` to the ``sender -> receiver`` link."""
        self._links[(sender, receiver)] = model
        if symmetric:
            self._links[(receiver, sender)] = model

    def for_link(self, sender: str, receiver: str) -> LatencyModel:
        """The model governing this link (default when unset)."""
        return self._links.get((sender, receiver), self.default)

    def sample(self, rng: random.Random, size_bytes: int = 0) -> float:
        return self.default.sample(rng, size_bytes)


class WanLatency(PerLinkLatency):
    """Topology-driven latency: intra-DC links fast, cross-DC links slow.

    Resolves each (sender, receiver) pair through the cluster
    :class:`~repro.cluster.topology.Topology` instead of an explicit link
    table: same-DC pairs use the ``intra`` model, different-DC pairs the
    ``cross`` model.  Explicit :meth:`set_link` overrides still win, so a
    single degraded link can be layered on top of the site model.  The
    defaults put intra-DC propagation well under a millisecond and cross-DC
    propagation in the tens of milliseconds — the WAN regime where the
    paper's metadata-size differences turn into visible request latency.

    All draws come from the ``rng`` the transport passes per message, so a
    seeded simulation replays the identical delay sequence.
    """

    #: Cross-DC bandwidth default: WAN links carry fewer bytes/ms than the
    #: intra-DC fabric, so big causality metadata hurts twice (propagation
    #: and transmission).
    def __init__(self, topology,
                 intra: Optional[LatencyModel] = None,
                 cross: Optional[LatencyModel] = None) -> None:
        self.topology = topology
        self.intra = intra or SizeDependentLatency(
            base=UniformLatency(0.2, 0.8), bytes_per_ms=5000.0)
        self.cross = cross or SizeDependentLatency(
            base=UniformLatency(12.0, 22.0), bytes_per_ms=1500.0)
        super().__init__(default=self.intra)

    def for_link(self, sender: str, receiver: str) -> LatencyModel:
        explicit = self._links.get((sender, receiver))
        if explicit is not None:
            return explicit
        if self.topology.is_local(sender, receiver):
            return self.intra
        return self.cross
