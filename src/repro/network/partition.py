"""Network partition injection for the simulated cluster.

Concurrent versions arise in Dynamo-style stores for two reasons: clients
racing on the same key, and replicas accepting writes while partitioned from
each other.  The paper's Figure 1 shows the first; the store's integration
tests and the sibling experiment (E5) also exercise the second, using this
module to cut and heal links between groups of nodes during a run.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple


class PartitionManager:
    """Tracks which node pairs can currently communicate.

    By default every pair is connected.  A partition is expressed as a list of
    disjoint groups: nodes in different groups cannot exchange messages until
    :meth:`heal` is called.  Individual links can also be cut independently of
    group partitions (e.g. a single flaky cable).
    """

    def __init__(self) -> None:
        self._groups: List[FrozenSet[str]] = []
        self._cut_links: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------ #
    # Group partitions
    # ------------------------------------------------------------------ #
    def partition(self, *groups: Iterable[str]) -> None:
        """Split the cluster into the given disjoint groups.

        Nodes not mentioned in any group remain able to talk to everyone
        (they are treated as belonging to every group).
        """
        frozen = [frozenset(group) for group in groups]
        seen: Set[str] = set()
        for group in frozen:
            overlap = seen & group
            if overlap:
                raise ValueError(f"nodes {sorted(overlap)} appear in more than one group")
            seen |= group
        self._groups = frozen

    def partition_datacenters(self, topology,
                              extras: "Dict[str, Iterable[str]] | None" = None) -> None:
        """Cut every WAN link: one partition group per datacenter.

        ``topology`` supplies the node → DC assignment (servers and any
        pinned client addresses alike); ``extras`` adds further ids to a
        DC's group, e.g. client addresses the topology does not manage.
        Intra-DC traffic is untouched — this is the whole-DC partition the
        multi-DC scenarios flap on and off.
        """
        groups: Dict[str, Set[str]] = {
            dc: set(topology.nodes_in(dc)) for dc in topology.datacenters()}
        for dc, members in (extras or {}).items():
            groups.setdefault(dc, set()).update(members)
        self.partition(*(groups[dc] for dc in sorted(groups)))

    def heal(self) -> None:
        """Remove every group partition (cut links stay cut)."""
        self._groups = []

    # ------------------------------------------------------------------ #
    # Individual links
    # ------------------------------------------------------------------ #
    def cut_link(self, a: str, b: str) -> None:
        """Make the (bidirectional) link between ``a`` and ``b`` unusable."""
        self._cut_links.add((a, b))
        self._cut_links.add((b, a))

    def restore_link(self, a: str, b: str) -> None:
        """Restore a previously cut link."""
        self._cut_links.discard((a, b))
        self._cut_links.discard((b, a))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def can_communicate(self, a: str, b: str) -> bool:
        """True iff a message from ``a`` can currently reach ``b``."""
        if a == b:
            return True
        if (a, b) in self._cut_links:
            return False
        if not self._groups:
            return True
        group_a = self._group_of(a)
        group_b = self._group_of(b)
        if group_a is None or group_b is None:
            return True
        return group_a == group_b

    def _group_of(self, node: str) -> "FrozenSet[str] | None":
        for group in self._groups:
            if node in group:
                return group
        return None

    def describe(self) -> Dict[str, object]:
        """Snapshot of the current partition state (diagnostics)."""
        return {
            "groups": [sorted(group) for group in self._groups],
            "cut_links": sorted({tuple(sorted(link)) for link in self._cut_links}),
        }
