"""Simulated network substrate: event loop, transport, latency and partitions.

This subpackage replaces the physical cluster of the paper's Riak evaluation
with a deterministic discrete-event simulation.  See ``DESIGN.md`` §5 for why
the substitution preserves the behaviours the experiments measure.
"""

from .latency import (
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    PerLinkLatency,
    SizeDependentLatency,
    UniformLatency,
    WanLatency,
)
from .message import Message, MessageType
from .partition import PartitionManager
from .simulator import EventHandle, PeriodicTask, Simulation
from .transport import Transport, TransportStats

__all__ = [
    "EventHandle",
    "FixedLatency",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "MessageType",
    "PartitionManager",
    "PerLinkLatency",
    "PeriodicTask",
    "Simulation",
    "SizeDependentLatency",
    "Transport",
    "TransportStats",
    "UniformLatency",
    "WanLatency",
]
