"""Datacenter topology: which DC each node (or pinned client) lives in.

A :class:`Topology` is a plain mapping from node id to datacenter id, shared
by every layer that wants to be DC-aware:

* **placement** (:mod:`repro.cluster.preference_list`) spreads a key's
  primary replicas across datacenters and prefers same-DC sloppy fallbacks,
  so a whole-DC outage leaves each surviving DC with local replicas *and*
  local stand-ins — the per-DC sloppy quorum of the Dynamo lineage;
* **latency** (:class:`repro.network.latency.WanLatency`) draws intra-DC
  and cross-DC delays from different distributions;
* **partitions** (:meth:`repro.network.partition.PartitionManager.
  partition_datacenters`) cut every WAN link at once — the classic
  cross-DC partition the paper's sloppy-quorum story is about.

Client addresses (``client:<id>``) may be pinned into a DC too, so a
cross-DC partition isolates clients together with their local replicas.
Nodes never assigned a DC fall into :data:`DEFAULT_DC`; a topology where
every node shares one DC is equivalent to having no topology at all, which
keeps single-DC clusters byte-identical to the pre-topology behavior.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.exceptions import ConfigurationError

#: Datacenter assigned to nodes the topology was never told about.
DEFAULT_DC = "dc1"


class Topology:
    """Assignment of nodes to datacenters.

    The mapping is intentionally open: any string id (server or pinned
    client address) can be assigned, and lookups for unknown ids return
    :data:`DEFAULT_DC` rather than raising, so a topology can be threaded
    through layers that also see ids it does not manage.
    """

    def __init__(self, assignment: Optional[Mapping[str, str]] = None) -> None:
        self._dc_of: Dict[str, str] = {}
        for node_id, dc in (assignment or {}).items():
            self.assign(node_id, dc)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def single_dc(cls, nodes: Iterable[str], dc: str = DEFAULT_DC) -> "Topology":
        """Every node in one datacenter (the no-op topology)."""
        return cls({node: dc for node in nodes})

    @classmethod
    def striped(cls, nodes: Sequence[str], datacenters: Sequence[str]) -> "Topology":
        """Nodes dealt round-robin across the given datacenters."""
        if not datacenters:
            raise ConfigurationError("striped() needs at least one datacenter")
        return cls({node: datacenters[index % len(datacenters)]
                    for index, node in enumerate(nodes)})

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def assign(self, node_id: str, dc: str) -> None:
        """Place (or move) a node into a datacenter."""
        if not node_id:
            raise ConfigurationError("node id must be a non-empty string")
        if not dc:
            raise ConfigurationError("datacenter id must be a non-empty string")
        self._dc_of[node_id] = dc

    def forget(self, node_id: str) -> None:
        """Drop a node's assignment (it reverts to :data:`DEFAULT_DC`)."""
        self._dc_of.pop(node_id, None)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def dc_of(self, node_id: str) -> str:
        """The datacenter a node lives in (:data:`DEFAULT_DC` if unassigned)."""
        return self._dc_of.get(node_id, DEFAULT_DC)

    def is_local(self, a: str, b: str) -> bool:
        """True iff both ids live in the same datacenter."""
        return self.dc_of(a) == self.dc_of(b)

    def datacenters(self) -> List[str]:
        """All datacenter ids with at least one assigned node, sorted."""
        return sorted(set(self._dc_of.values()))

    def nodes_in(self, dc: str) -> List[str]:
        """All assigned node ids in one datacenter, sorted."""
        return sorted(node for node, node_dc in self._dc_of.items()
                      if node_dc == dc)

    @property
    def spans_multiple_dcs(self) -> bool:
        """True iff assigned nodes cover more than one datacenter."""
        return len(set(self._dc_of.values())) > 1

    def describe(self) -> Dict[str, List[str]]:
        """``{dc: [nodes...]}`` snapshot for diagnostics."""
        return {dc: self.nodes_in(dc) for dc in self.datacenters()}

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._dc_of

    def __len__(self) -> int:
        return len(self._dc_of)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        parts = ", ".join(f"{dc}:{len(self.nodes_in(dc))}"
                          for dc in self.datacenters())
        return f"Topology({parts or 'empty'})"
