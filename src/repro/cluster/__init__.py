"""Cluster substrate: consistent hashing, membership and replica placement."""

from .membership import Membership, MembershipListener, NodeInfo, NodeStatus
from .preference_list import PlacementService, QuorumConfig
from .ring import ConsistentHashRing, RebalanceMove, rebalance_plan

__all__ = [
    "ConsistentHashRing",
    "Membership",
    "MembershipListener",
    "NodeInfo",
    "NodeStatus",
    "PlacementService",
    "QuorumConfig",
    "RebalanceMove",
    "rebalance_plan",
]
