"""Cluster substrate: consistent hashing, membership and replica placement."""

from .membership import Membership, MembershipListener, NodeInfo, NodeStatus
from .preference_list import PlacementService, QuorumConfig
from .ring import (
    DEFAULT_PARTITION_COUNT,
    ConsistentHashRing,
    PartitionMap,
    RebalanceMove,
    rebalance_plan,
)
from .topology import DEFAULT_DC, Topology

__all__ = [
    "DEFAULT_DC",
    "DEFAULT_PARTITION_COUNT",
    "ConsistentHashRing",
    "Membership",
    "MembershipListener",
    "NodeInfo",
    "NodeStatus",
    "PartitionMap",
    "PlacementService",
    "QuorumConfig",
    "RebalanceMove",
    "Topology",
    "rebalance_plan",
]
