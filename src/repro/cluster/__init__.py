"""Cluster substrate: consistent hashing, membership and replica placement."""

from .membership import Membership, NodeInfo, NodeStatus
from .preference_list import PlacementService, QuorumConfig
from .ring import ConsistentHashRing

__all__ = [
    "ConsistentHashRing",
    "Membership",
    "NodeInfo",
    "NodeStatus",
    "PlacementService",
    "QuorumConfig",
]
