"""Cluster substrate: consistent hashing, membership and replica placement."""

from .membership import Membership, MembershipListener, NodeInfo, NodeStatus
from .preference_list import PlacementService, QuorumConfig
from .ring import (
    DEFAULT_PARTITION_COUNT,
    ConsistentHashRing,
    PartitionMap,
    RebalanceMove,
    rebalance_plan,
)

__all__ = [
    "DEFAULT_PARTITION_COUNT",
    "ConsistentHashRing",
    "Membership",
    "MembershipListener",
    "NodeInfo",
    "NodeStatus",
    "PartitionMap",
    "PlacementService",
    "QuorumConfig",
    "RebalanceMove",
    "rebalance_plan",
]
