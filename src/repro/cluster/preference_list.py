"""Replica placement: preference lists, quorum parameters and sloppy quorums.

Combines the consistent-hashing ring (where a key *should* live) with the
membership view (who is actually up) to produce the list of nodes a
coordinator talks to for a given request, following Dynamo's rules:

* the **primary preference list** is the first N distinct nodes clockwise
  from the key's ring position;
* with **strict quorums**, down nodes simply shrink the usable list (requests
  may then fail to reach quorum);
* with **sloppy quorums**, down nodes are replaced by the next nodes on the
  ring, which accept writes on their behalf (hand-off) — this is one of the
  ways causally concurrent versions of a key end up on different nodes and
  must later be reconciled by the causality mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.exceptions import ConfigurationError
from .membership import Membership
from .ring import ConsistentHashRing, PartitionMap
from .topology import Topology


@dataclass(frozen=True)
class QuorumConfig:
    """Replication and quorum parameters (Dynamo's N / R / W)."""

    n: int = 3
    r: int = 2
    w: int = 2
    sloppy: bool = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"replication factor n must be >= 1, got {self.n}")
        if not 1 <= self.r <= self.n:
            raise ConfigurationError(f"read quorum r must be in [1, {self.n}], got {self.r}")
        if not 1 <= self.w <= self.n:
            raise ConfigurationError(f"write quorum w must be in [1, {self.n}], got {self.w}")

    @property
    def overlapping(self) -> bool:
        """True when R + W > N (read-your-writes through quorum intersection)."""
        return self.r + self.w > self.n


class PlacementService:
    """Resolves keys to the replica nodes a coordinator should contact."""

    def __init__(self,
                 ring: ConsistentHashRing,
                 membership: Membership,
                 config: Optional[QuorumConfig] = None,
                 partition_map: Optional[PartitionMap] = None,
                 topology: Optional[Topology] = None) -> None:
        self.ring = ring
        self.membership = membership
        self.config = config or QuorumConfig()
        #: Range ↔ vnode mapping shared by every node's storage layout; a
        #: default map is used when the caller does not supply the
        #: cluster-wide one.
        self.partition_map = partition_map or PartitionMap()
        #: Datacenter assignment.  DC-aware placement only activates when the
        #: topology actually spans multiple DCs, so single-DC clusters (and
        #: every pre-topology caller) keep the plain ring-walk order
        #: bit-for-bit.
        self.topology = topology

    @property
    def _multi_dc(self) -> bool:
        return self.topology is not None and self.topology.spans_multiple_dcs

    def partition_of(self, key: str) -> int:
        """The storage partition (vnode range) ``key`` belongs to."""
        return self.partition_map.partition_of(key)

    # ------------------------------------------------------------------ #
    # Placement queries
    # ------------------------------------------------------------------ #
    def primary_replicas(self, key: str) -> List[str]:
        """The key's N primary replica homes, regardless of liveness.

        With a multi-DC topology the first pass of the ring walk picks one
        node per datacenter, so every DC holds at least one primary (when
        N >= DC count) and a whole-DC outage cannot take out every home.
        """
        if self._multi_dc:
            return self.ring.preference_list_spread(
                key, self.config.n, self.topology.dc_of)
        return self.ring.preference_list(key, self.config.n)

    def active_replicas(self, key: str) -> List[str]:
        """The replicas a coordinator should contact right now.

        Strict quorums return the up subset of the primary list; sloppy
        quorums top the list back up to N with fallback nodes further along
        the ring.
        """
        primaries = self.primary_replicas(key)
        up_primaries = [node for node in primaries if self.membership.is_up(node)]
        if not self.config.sloppy:
            return up_primaries
        if len(up_primaries) == self.config.n:
            return up_primaries
        fallback_pool = self.extended_preference_list(key)
        result = list(up_primaries)
        for node in fallback_pool:
            if len(result) >= self.config.n:
                break
            if node in result or not self.membership.is_up(node):
                continue
            result.append(node)
        return result

    def extended_preference_list(self, key: str, count: Optional[int] = None) -> List[str]:
        """Every ring node in clockwise order from the key: primaries first.

        This is the candidate order the *async* request mode walks: the first
        N entries are the primary replicas, the rest are the sloppy-quorum
        fallback nodes that stand in for timed-out primaries.  Liveness is
        deliberately ignored — in async mode failures are discovered by
        deadline, not by consulting the membership view.

        With a multi-DC topology the DC-spread primaries lead the list (so
        the first N entries are still exactly the primary replicas) and the
        remaining nodes follow in ring order.
        """
        limit = count if count is not None else len(self.ring)
        if not self._multi_dc:
            return self.ring.preference_list(key, limit)
        primaries = self.primary_replicas(key)
        result = list(primaries)
        for node in self.ring.preference_list(key, len(self.ring)):
            if len(result) >= limit:
                break
            if node not in result:
                result.append(node)
        return result[:limit]

    def fallbacks_for(self, key: str, exclude: Sequence[str] = (),
                      near: Optional[str] = None) -> List[str]:
        """Sloppy-quorum fallback candidates for ``key``, in ring order.

        ``exclude`` lists nodes already contacted (primaries and previously
        tried fallbacks); the result is the remaining ring walk.  With a
        multi-DC topology, ``near`` (typically the coordinator) pulls
        same-datacenter candidates to the front — the per-DC sloppy quorum:
        during a cross-DC partition the coordinator promotes local stand-ins
        it can actually reach instead of timing out on WAN peers.  The sort
        is stable, so ring order is preserved within each half.
        """
        excluded = set(exclude)
        candidates = [node for node in self.extended_preference_list(key)
                      if node not in excluded]
        if near is not None and self._multi_dc:
            near_dc = self.topology.dc_of(near)
            candidates.sort(key=lambda node: self.topology.dc_of(node) != near_dc)
        return candidates

    def coordinator_for(self, key: str) -> str:
        """The node a client should send its request to (first active replica)."""
        replicas = self.active_replicas(key)
        if not replicas:
            raise ConfigurationError(f"no active replicas available for key {key!r}")
        return replicas[0]

    def is_replica(self, key: str, node_id: str) -> bool:
        """True iff ``node_id`` is one of the key's primary replicas."""
        return node_id in self.primary_replicas(key)

    def describe(self, key: str) -> dict:
        """Placement snapshot for diagnostics and examples."""
        return {
            "key": key,
            "partition": self.partition_of(key),
            "primary": self.primary_replicas(key),
            "active": self.active_replicas(key),
            "extended": self.extended_preference_list(key),
            "coordinator": self.coordinator_for(key),
            "config": self.config,
        }
