"""Cluster membership and node liveness.

The membership view answers two questions the request path needs: which
physical nodes exist (so the ring can be built) and which of them are
currently reachable (so coordinators can skip down nodes and, with sloppy
quorums, pick fallback replicas).  The view is dynamic: nodes can be added
and removed at runtime (elastic clusters), and every mutation bumps a
version counter and notifies subscribed listeners, which is how the
simulated cluster's background daemons (anti-entropy pair scheduling, hinted
handoff replay) learn about joins, departures, crashes and recoveries
without polling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from ..core.exceptions import ConfigurationError
from .topology import DEFAULT_DC, Topology

#: Listener signature: ``callback(node_id, event)`` with event one of
#: ``"added"``, ``"removed"``, ``"up"``, ``"down"``.
MembershipListener = Callable[[str, str], None]


class NodeStatus(enum.Enum):
    """Liveness state of a node as seen by the membership view."""

    UP = "up"
    DOWN = "down"


@dataclass
class NodeInfo:
    """Static and dynamic information about a cluster node."""

    node_id: str
    status: NodeStatus = NodeStatus.UP
    #: Datacenter the node lives in (:data:`DEFAULT_DC` when the cluster has
    #: no topology).
    dc: str = DEFAULT_DC

    @property
    def is_up(self) -> bool:
        return self.status is NodeStatus.UP


class Membership:
    """The set of storage nodes and their liveness.

    When a :class:`~repro.cluster.topology.Topology` is supplied, each node's
    datacenter is recorded on join (explicit ``dc`` argument first, then the
    topology's assignment) so liveness queries can be scoped per-DC — the
    view a DC-local failure detector would have.
    """

    def __init__(self, nodes: Iterable[str] = (),
                 topology: "Topology | None" = None) -> None:
        self._nodes: Dict[str, NodeInfo] = {}
        self._listeners: List[MembershipListener] = []
        self.topology = topology
        #: Monotonic view version, bumped on every mutation.
        self.version = 0
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    # Change notification
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: MembershipListener) -> None:
        """Register a callback invoked after every membership mutation."""
        self._listeners.append(listener)

    def _notify(self, node_id: str, event: str) -> None:
        self.version += 1
        for listener in self._listeners:
            listener(node_id, event)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, node_id: str, dc: "str | None" = None) -> None:
        """Register a node (initially up), optionally placing it in a DC."""
        if not node_id:
            raise ConfigurationError("node id must be a non-empty string")
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id!r} already in membership")
        if dc is None:
            dc = self.topology.dc_of(node_id) if self.topology else DEFAULT_DC
        elif self.topology is not None:
            self.topology.assign(node_id, dc)
        self._nodes[node_id] = NodeInfo(node_id, dc=dc)
        self._notify(node_id, "added")

    def remove(self, node_id: str) -> None:
        """Remove a node from the membership entirely."""
        if self._nodes.pop(node_id, None) is not None:
            self._notify(node_id, "removed")

    def mark_down(self, node_id: str) -> None:
        """Mark a node as unreachable (crash / partition from everyone)."""
        info = self._require(node_id)
        if info.status is not NodeStatus.DOWN:
            info.status = NodeStatus.DOWN
            self._notify(node_id, "down")

    def mark_up(self, node_id: str) -> None:
        """Mark a node as reachable again."""
        info = self._require(node_id)
        if info.status is not NodeStatus.UP:
            info.status = NodeStatus.UP
            self._notify(node_id, "up")

    def _require(self, node_id: str) -> NodeInfo:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id!r}") from None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def nodes(self) -> List[str]:
        """All known node ids, sorted."""
        return sorted(self._nodes)

    def up_nodes(self) -> List[str]:
        """Node ids currently marked up, sorted."""
        return sorted(node_id for node_id, info in self._nodes.items() if info.is_up)

    def is_up(self, node_id: str) -> bool:
        """True iff the node exists and is marked up."""
        info = self._nodes.get(node_id)
        return info is not None and info.is_up

    def dc_of(self, node_id: str) -> str:
        """The datacenter a member lives in."""
        return self._require(node_id).dc

    def up_nodes_in(self, dc: str) -> List[str]:
        """Node ids in one datacenter currently marked up, sorted."""
        return sorted(node_id for node_id, info in self._nodes.items()
                      if info.is_up and info.dc == dc)

    def status(self, node_id: str) -> NodeStatus:
        """The liveness status of ``node_id``."""
        return self._require(node_id).status

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        up = len(self.up_nodes())
        return f"Membership({up}/{len(self._nodes)} up)"
