"""Cluster membership and node liveness.

The membership view answers two questions the request path needs: which
physical nodes exist (so the ring can be built) and which of them are
currently reachable (so coordinators can skip down nodes and, with sloppy
quorums, pick fallback replicas).  The view is deliberately simple — a static
node list with an up/down flag toggled by tests and fault-injection
experiments — because dynamic membership protocols (gossip, hinted membership
transfer) are orthogonal to causality tracking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.exceptions import ConfigurationError


class NodeStatus(enum.Enum):
    """Liveness state of a node as seen by the membership view."""

    UP = "up"
    DOWN = "down"


@dataclass
class NodeInfo:
    """Static and dynamic information about a cluster node."""

    node_id: str
    status: NodeStatus = NodeStatus.UP

    @property
    def is_up(self) -> bool:
        return self.status is NodeStatus.UP


class Membership:
    """The set of storage nodes and their liveness."""

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes: Dict[str, NodeInfo] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, node_id: str) -> None:
        """Register a node (initially up)."""
        if not node_id:
            raise ConfigurationError("node id must be a non-empty string")
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id!r} already in membership")
        self._nodes[node_id] = NodeInfo(node_id)

    def remove(self, node_id: str) -> None:
        """Remove a node from the membership entirely."""
        self._nodes.pop(node_id, None)

    def mark_down(self, node_id: str) -> None:
        """Mark a node as unreachable (crash / partition from everyone)."""
        self._require(node_id).status = NodeStatus.DOWN

    def mark_up(self, node_id: str) -> None:
        """Mark a node as reachable again."""
        self._require(node_id).status = NodeStatus.UP

    def _require(self, node_id: str) -> NodeInfo:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id!r}") from None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def nodes(self) -> List[str]:
        """All known node ids, sorted."""
        return sorted(self._nodes)

    def up_nodes(self) -> List[str]:
        """Node ids currently marked up, sorted."""
        return sorted(node_id for node_id, info in self._nodes.items() if info.is_up)

    def is_up(self, node_id: str) -> bool:
        """True iff the node exists and is marked up."""
        info = self._nodes.get(node_id)
        return info is not None and info.is_up

    def status(self, node_id: str) -> NodeStatus:
        """The liveness status of ``node_id``."""
        return self._require(node_id).status

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        up = len(self.up_nodes())
        return f"Membership({up}/{len(self._nodes)} up)"
