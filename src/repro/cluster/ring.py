"""Consistent-hashing ring with virtual nodes (Dynamo/Riak style key placement).

The replicated store places each key on ``N`` distinct physical nodes chosen
by walking a consistent-hashing ring clockwise from the key's hash.  Virtual
nodes (multiple ring positions per physical node) smooth the load.  This is
the same placement scheme the paper's host system (Riak) uses, so the set of
replica servers that coordinate writes for a key — the actor space of the
dotted version vectors — is realistic: small, stable, and independent of the
number of clients.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.exceptions import ConfigurationError


def _hash_position(token: str) -> int:
    """Map a token to a position on the 128-bit ring."""
    return int.from_bytes(hashlib.md5(token.encode("utf-8")).digest(), "big")


#: Ring-space width: positions are 128-bit md5 values.
RING_BITS = 128

#: Default number of fixed partitions a node's key space is divided into.
#: Riak uses a fixed ring-partition count (a power of two) chosen at cluster
#: creation; 16 keeps per-vnode structures small in tests while still giving
#: range-local handoff and anti-entropy something to exploit.
DEFAULT_PARTITION_COUNT = 16


class PartitionMap:
    """Fixed division of the hash ring into contiguous key ranges (partitions).

    Each partition is one arc of the 128-bit ring; a key belongs to the
    partition its ring position falls in.  This is the range ↔ vnode mapping
    of the Dynamo/Riak storage layout: every node materialises one vnode
    store (plus one Merkle tree) per partition it holds keys for, so handoff
    can move a whole range and anti-entropy can compare a single range.  The
    partition count is a cluster-wide constant — every node must agree on it
    for per-range digests to be comparable.
    """

    def __init__(self, partition_count: int = DEFAULT_PARTITION_COUNT) -> None:
        if partition_count < 1:
            raise ConfigurationError(
                f"partition_count must be >= 1, got {partition_count}"
            )
        self.partition_count = partition_count

    def partition_ids(self) -> range:
        """Every partition id, in range order."""
        return range(self.partition_count)

    def partition_of_position(self, position: int) -> int:
        """The partition owning a ring position (equal-width arcs)."""
        return (position * self.partition_count) >> RING_BITS

    def partition_of(self, key: str) -> int:
        """The partition a key's ring position falls in.

        Uses the same ``key:`` token as :meth:`ConsistentHashRing.key_position`
        so a partition really is a contiguous arc of the placement ring.
        """
        return self.partition_of_position(_hash_position(f"key:{key}"))

    def partition_range(self, partition_id: int) -> Tuple[int, int]:
        """Half-open ``[start, end)`` ring-position range of one partition."""
        if not 0 <= partition_id < self.partition_count:
            raise ConfigurationError(f"unknown partition {partition_id!r}")
        span = 1 << RING_BITS
        start = -(-partition_id * span // self.partition_count)
        end = -(-(partition_id + 1) * span // self.partition_count)
        return start, min(end, span)

    def __len__(self) -> int:
        return self.partition_count

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PartitionMap(partition_count={self.partition_count})"


class ConsistentHashRing:
    """A consistent-hashing ring over a set of physical nodes.

    Parameters
    ----------
    nodes:
        Initial physical node identifiers.
    virtual_nodes:
        Number of ring positions per physical node.  More virtual nodes give a
        smoother key distribution at the cost of a larger ring index.
    """

    def __init__(self, nodes: Iterable[str] = (), virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ConfigurationError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._positions: List[int] = []
        self._position_to_node: Dict[int, str] = {}
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------ #
    # Membership of the ring
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: str) -> None:
        """Add a physical node (and all of its virtual positions) to the ring."""
        if not node_id:
            raise ConfigurationError("node id must be a non-empty string")
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id!r} is already on the ring")
        positions = []
        for replica_index in range(self.virtual_nodes):
            position = _hash_position(f"{node_id}#{replica_index}")
            # Hash collisions across tokens are astronomically unlikely but
            # would silently shadow a node; fail loudly instead.
            if position in self._position_to_node:
                raise ConfigurationError(f"hash collision for node {node_id!r}")
            bisect.insort(self._positions, position)
            self._position_to_node[position] = node_id
            positions.append(position)
        self._nodes[node_id] = positions

    def remove_node(self, node_id: str) -> None:
        """Remove a physical node and all of its virtual positions."""
        positions = self._nodes.pop(node_id, None)
        if positions is None:
            return
        for position in positions:
            index = bisect.bisect_left(self._positions, position)
            if index < len(self._positions) and self._positions[index] == position:
                self._positions.pop(index)
            self._position_to_node.pop(position, None)

    def nodes(self) -> List[str]:
        """Physical nodes currently on the ring, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # ------------------------------------------------------------------ #
    # Key placement
    # ------------------------------------------------------------------ #
    def key_position(self, key: str) -> int:
        """Ring position of a key."""
        return _hash_position(f"key:{key}")

    def primary(self, key: str) -> str:
        """The physical node owning the key's primary replica."""
        owners = self.preference_list(key, 1)
        if not owners:
            raise ConfigurationError("ring has no nodes")
        return owners[0]

    def preference_list(self, key: str, count: int) -> List[str]:
        """The first ``count`` *distinct* physical nodes clockwise from the key.

        This is the Dynamo preference list: the key's N replica homes, in
        priority order.  When the ring has fewer than ``count`` physical nodes
        the whole ring is returned.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if not self._positions:
            return []
        result: List[str] = []
        start = bisect.bisect_right(self._positions, self.key_position(key))
        total_positions = len(self._positions)
        for offset in range(total_positions):
            position = self._positions[(start + offset) % total_positions]
            node = self._position_to_node[position]
            if node not in result:
                result.append(node)
                if len(result) == count or len(result) == len(self._nodes):
                    break
        return result

    def preference_list_spread(self, key: str, count: int,
                               group_of: "Callable[[str], str]") -> List[str]:
        """Like :meth:`preference_list`, but spread across node groups.

        Walks the ring clockwise from the key twice: the first pass picks at
        most one node per *group* (datacenter), the second fills the
        remaining slots in plain ring order.  With ``count`` at least the
        number of groups, every group contributes a replica — the Dynamo
        multi-DC placement rule that lets a whole-DC outage leave local
        copies everywhere else.  When all nodes share one group the result
        degenerates to :meth:`preference_list` exactly.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if not self._positions:
            return []
        walk: List[str] = []
        start = bisect.bisect_right(self._positions, self.key_position(key))
        total_positions = len(self._positions)
        for offset in range(total_positions):
            position = self._positions[(start + offset) % total_positions]
            node = self._position_to_node[position]
            if node not in walk:
                walk.append(node)
                if len(walk) == len(self._nodes):
                    break
        result: List[str] = []
        seen_groups = set()
        for node in walk:
            group = group_of(node)
            if group in seen_groups:
                continue
            seen_groups.add(group)
            result.append(node)
            if len(result) == count:
                return result
        for node in walk:
            if node in result:
                continue
            result.append(node)
            if len(result) == count:
                break
        return result

    def ownership_histogram(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of the given keys each node owns as primary (load check)."""
        histogram: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            histogram[self.primary(key)] += 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ConsistentHashRing(nodes={len(self._nodes)}, vnodes={self.virtual_nodes})"


@dataclass
class RebalanceMove:
    """Replica-set change for one key when the ring membership changes."""

    key: str
    owners_before: List[str] = field(default_factory=list)
    owners_after: List[str] = field(default_factory=list)

    @property
    def gained(self) -> List[str]:
        """Nodes that become replicas of the key and need its state pushed."""
        return [node for node in self.owners_after if node not in self.owners_before]

    @property
    def lost(self) -> List[str]:
        """Nodes that stop being replicas of the key."""
        return [node for node in self.owners_before if node not in self.owners_after]


def rebalance_plan(before: ConsistentHashRing,
                   after: ConsistentHashRing,
                   keys: Iterable[str],
                   replication: int) -> List[RebalanceMove]:
    """The key movements implied by a ring change (join / decommission).

    Compares each key's N-node preference list on the two rings and returns a
    move for every key whose replica *set* changed.  The lists are priority
    orders, so a ring change can permute them without changing membership —
    e.g. a joining node's virtual positions reordering the clockwise walk for
    a key whose replicas all stay put.  Such keys need no data movement
    (``gained`` and ``lost`` would both be empty), and emitting moves for
    them would make the handoff machinery ship states to nodes that already
    hold them; they are skipped here.  The caller pushes each returned key's
    state to the ``gained`` nodes; ``lost`` nodes may drop or retain their
    copy depending on policy.
    """
    if replication < 1:
        raise ConfigurationError(f"replication must be >= 1, got {replication}")
    moves: List[RebalanceMove] = []
    for key in sorted(set(keys)):
        owners_before = before.preference_list(key, replication)
        owners_after = after.preference_list(key, replication)
        if set(owners_before) != set(owners_after):
            moves.append(RebalanceMove(key, owners_before, owners_after))
    return moves
