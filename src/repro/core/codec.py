"""Canonical bytes for clocks: one encoding, computed once, shared everywhere.

Every clock type in the repo (:class:`~repro.core.version_vector.VersionVector`,
:class:`~repro.core.dvv.DottedVersionVector`,
:class:`~repro.core.causal_history.CausalHistory`,
:class:`~repro.core.dvvset.DVVSet`, plus the WinFS baselines registered by
:mod:`repro.clocks.vve`) is a strictly immutable value object, so its compact
binary encoding — and the sha256 fingerprint of that encoding — is a pure
function of the instance.  Before this layer existed the same clock state was
re-encoded from scratch in at least four independent places (size accounting,
wire frames, Merkle fingerprints, JSON); now each instance carries two memo
slots, ``_encoded`` and ``_fingerprint``, filled on first use:

* :func:`canonical_bytes` returns the canonical encoding, O(entries) the
  first time and an attribute read afterwards;
* :func:`fingerprint` returns ``sha256(canonical_bytes)``, memoized the same
  way;
* :func:`sibling_set_fingerprint` memoizes the mechanism-independent Merkle
  key fingerprint (over sorted sibling origin dots), so a replica merge or
  handoff that reproduces an already-seen sibling set hashes nothing.

The canonical encoding is **byte-identical** to the historic
:func:`repro.core.serialization.encode` output (tags ``V``/``D``/``H``/``S``)
and, for the registered baseline clocks, to the wire value codec's body
(tags ``E``/``X``) — pinned by ``tests/core/golden_clock_encodings.json``.
Consumers therefore share one encoding instead of four: ``encoded_size`` is a
length of the cached bytes, the wire codec embeds them verbatim (retagging
``D``→``W`` for DVVs), and the Merkle layers hash them at most once.

Cache-effectiveness counters are kept module-wide (:func:`codec_stats` /
:func:`reset_codec_stats`) so benchmarks can report a hit ratio.

Clock modules must not import this module (it imports them); types outside
``repro.core`` opt in via :func:`register_encoder` at their own import time.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import Any, Callable, Dict, List, Tuple

from .causal_history import CausalHistory
from .dot import Dot
from .dvv import DottedVersionVector
from .dvvset import DVVSet
from .exceptions import SerializationError
from .version_vector import VersionVector

#: Slots every canonical clock type reserves for the memoized encoding and
#: fingerprint (declared in each class's ``__slots__``, initialised to None).
MEMO_SLOTS = ("_encoded", "_fingerprint")

_sha256 = hashlib.sha256
_set_attr = object.__setattr__


# ---------------------------------------------------------------------- #
# Low-level primitives (LEB128 varints, length-prefixed UTF-8 strings)
# ---------------------------------------------------------------------- #
def _encode_varint(value: int) -> bytes:
    if value < 0:
        raise SerializationError(f"cannot encode negative integer {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _encode_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return _encode_varint(len(raw)) + raw


def _decode_str(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = _decode_varint(data, offset)
    if offset + length > len(data):
        raise SerializationError("truncated string")
    return data[offset:offset + length].decode("utf-8"), offset + length


def intern_actor(actor: str) -> str:
    """Return the process-wide shared instance of an actor-id string.

    Decode paths run this on every actor id they parse, so a decoded
    cluster's clock entries share one string object per actor instead of one
    per message — cheaper equality checks in the comparison hot paths and a
    smaller resident set for long-lived stored states.
    """
    return sys.intern(actor)


def _decode_actor(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a length-prefixed actor id, interned."""
    actor, offset = _decode_str(data, offset)
    return sys.intern(actor), offset


def _encode_vv_body(vv: VersionVector) -> bytes:
    out = bytearray(_encode_varint(len(vv)))
    for actor, counter in vv.items():
        out += _encode_str(actor)
        out += _encode_varint(counter)
    return bytes(out)


def _decode_vv_body(data: bytes, offset: int) -> Tuple[VersionVector, int]:
    count, offset = _decode_varint(data, offset)
    entries: Dict[str, int] = {}
    for _ in range(count):
        actor, offset = _decode_actor(data, offset)
        counter, offset = _decode_varint(data, offset)
        entries[actor] = counter
    return VersionVector(entries), offset


def _value_to_str(value: Any) -> str:
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, default=str)


# ---------------------------------------------------------------------- #
# Cache-effectiveness counters
# ---------------------------------------------------------------------- #
_STATS = {
    "encode_hits": 0,
    "encode_misses": 0,
    "fingerprint_hits": 0,
    "fingerprint_misses": 0,
    "state_fp_hits": 0,
    "state_fp_misses": 0,
}


def codec_stats() -> Dict[str, int]:
    """A copy of the cache counters (hits are reads served from a memo)."""
    return dict(_STATS)


def reset_codec_stats() -> None:
    """Zero the cache counters (benchmarks bracket measurements with this)."""
    for name in _STATS:
        _STATS[name] = 0


def cache_hit_ratio(stats: Dict[str, int], prefix: str = "encode") -> float:
    """``hits / (hits + misses)`` for one counter family (0.0 when idle)."""
    hits = stats[f"{prefix}_hits"]
    total = hits + stats[f"{prefix}_misses"]
    return hits / total if total else 0.0


# ---------------------------------------------------------------------- #
# Cold encoders (run once per instance)
# ---------------------------------------------------------------------- #
def _encode_vv(vv: VersionVector) -> bytes:
    return b"V" + _encode_vv_body(vv)


def _encode_dvv(clock: DottedVersionVector) -> bytes:
    body = _encode_str(clock.dot.actor) + _encode_varint(clock.dot.counter)
    return b"D" + body + _encode_vv_body(clock.causal_past)


def _encode_history(clock: CausalHistory) -> bytes:
    dots = sorted(clock.events())
    out = bytearray(b"H")
    event = clock.event
    out += _encode_varint(1 if event is not None else 0)
    if event is not None:
        out += _encode_str(event.actor) + _encode_varint(event.counter)
    out += _encode_varint(len(dots))
    for dot in dots:
        out += _encode_str(dot.actor) + _encode_varint(dot.counter)
    return bytes(out)


def _encode_dvvset(clock: DVVSet) -> bytes:
    out = bytearray(b"S")
    out += _encode_varint(len(clock.entries))
    for actor, counter, values in clock.entries:
        out += _encode_str(actor)
        out += _encode_varint(counter)
        out += _encode_varint(len(values))
        for value in values:
            out += _encode_str(_value_to_str(value))
    out += _encode_varint(len(clock.anonymous))
    for value in clock.anonymous:
        out += _encode_str(_value_to_str(value))
    return bytes(out)


#: Cold encoder per supported type.  Types outside ``repro.core`` (the WinFS
#: baselines) add themselves via :func:`register_encoder` when their module
#: is imported, keeping the import graph acyclic.
_ENCODERS: Dict[type, Callable[[Any], bytes]] = {
    VersionVector: _encode_vv,
    DottedVersionVector: _encode_dvv,
    CausalHistory: _encode_history,
    DVVSet: _encode_dvvset,
}


def register_encoder(cls: type, encoder: Callable[[Any], bytes]) -> None:
    """Opt a clock type into the canonical-bytes layer.

    ``cls`` must reserve the :data:`MEMO_SLOTS` (initialised to None) and be
    strictly immutable — the encoding is computed once per instance and never
    invalidated.
    """
    _ENCODERS[cls] = encoder


def is_canonical_type(value: Any) -> bool:
    """True when ``value`` participates in the canonical-bytes layer."""
    return type(value) in _ENCODERS


# ---------------------------------------------------------------------- #
# The memoized public surface
# ---------------------------------------------------------------------- #
def canonical_bytes(clock: Any) -> bytes:
    """The canonical binary encoding of ``clock``, memoized on the instance."""
    try:
        encoded = clock._encoded
    except AttributeError:
        raise SerializationError(
            f"cannot encode object of type {type(clock).__name__}"
        ) from None
    if encoded is not None:
        _STATS["encode_hits"] += 1
        return encoded
    encoder = _ENCODERS.get(type(clock))
    if encoder is None:
        raise SerializationError(
            f"cannot encode object of type {type(clock).__name__}"
        )
    _STATS["encode_misses"] += 1
    encoded = encoder(clock)
    _set_attr(clock, "_encoded", encoded)
    return encoded


def fingerprint(clock: Any) -> bytes:
    """``sha256(canonical_bytes(clock))``, memoized on the instance."""
    try:
        digest = clock._fingerprint
    except AttributeError:
        raise SerializationError(
            f"cannot fingerprint object of type {type(clock).__name__}"
        ) from None
    if digest is not None:
        _STATS["fingerprint_hits"] += 1
        return digest
    _STATS["fingerprint_misses"] += 1
    digest = _sha256(canonical_bytes(clock)).digest()
    _set_attr(clock, "_fingerprint", digest)
    return digest


def hexfingerprint(clock: Any) -> str:
    """Hex form of :func:`fingerprint` (for logs and reports)."""
    return fingerprint(clock).hex()


# ---------------------------------------------------------------------- #
# Sibling-set fingerprints (the Merkle layers' unit of work)
# ---------------------------------------------------------------------- #
#: Bounded memo of sibling-set fingerprints keyed by the sorted origin-dot
#: tuple.  Mechanism states are plain tuples (not attribute-bearing), so the
#: memo lives here; the bound keeps a long churny run from accumulating every
#: sibling set it ever saw.
_STATE_FP_CACHE: Dict[Tuple[Dot, ...], bytes] = {}
_STATE_FP_CACHE_MAX = 16384


def sibling_set_material(dots: Tuple[Dot, ...]) -> bytes:
    """The byte material a sibling set's Merkle fingerprint hashes.

    ``dots`` must already be sorted; the format is pinned (it predates this
    module) — changing it changes every Merkle digest in the system.
    """
    return ";".join(f"{d.actor}:{d.counter}" for d in dots).encode("utf-8")


def sibling_set_fingerprint(dots: Tuple[Dot, ...]) -> bytes:
    """Fingerprint of a sorted tuple of sibling origin dots, memoized.

    Two replicas store the same versions of a key iff their sorted origin-dot
    tuples are equal, so the memo turns the common convergence cases — a
    merge, handoff or replayed hint that reproduces an already-fingerprinted
    sibling set — into a dict lookup instead of a sha256.
    """
    cached = _STATE_FP_CACHE.get(dots)
    if cached is not None:
        _STATS["state_fp_hits"] += 1
        return cached
    _STATS["state_fp_misses"] += 1
    digest = _sha256(sibling_set_material(dots)).digest()
    if len(_STATE_FP_CACHE) >= _STATE_FP_CACHE_MAX:
        _STATE_FP_CACHE.clear()
    _STATE_FP_CACHE[dots] = digest
    return digest


def clear_state_fingerprint_cache() -> None:
    """Drop the sibling-set memo (tests use this to force cold recomputes)."""
    _STATE_FP_CACHE.clear()


__all__ = [
    "MEMO_SLOTS",
    "cache_hit_ratio",
    "canonical_bytes",
    "clear_state_fingerprint_cache",
    "codec_stats",
    "fingerprint",
    "hexfingerprint",
    "intern_actor",
    "is_canonical_type",
    "register_encoder",
    "reset_codec_stats",
    "sibling_set_fingerprint",
    "sibling_set_material",
]
