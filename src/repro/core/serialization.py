"""Serialisation and size accounting for clocks.

The quantitative half of the paper's evaluation ("a significant reduction in
the size of metadata, and better latency when serving requests") is about how
many bytes of causality metadata travel with every request and sit next to
every stored value.  This module provides:

* a compact, dependency-free binary encoding for every clock type (length-
  prefixed UTF-8 actor ids + varint counters), used both to measure realistic
  byte sizes and to exercise round-trip correctness in the tests;
* a JSON-compatible encoding for human inspection and for the examples;
* :func:`encoded_size` / :func:`entry_count`, the two measurements the
  metadata-size experiments (E2/E4 in DESIGN.md) report.

The binary encoding itself lives in :mod:`repro.core.codec`, the canonical-
bytes layer: clocks are immutable, so the encoding is computed once per
instance and memoized, and :func:`encode` / :func:`encoded_size` here are
cache reads after the first call.  The byte format is unchanged — the low-
level helpers (``_encode_varint`` & co.) are re-exported so existing
importers (the wire codec, tests) keep working.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

from . import codec
from .causal_history import CausalHistory
from .codec import (  # noqa: F401  (re-exported; the wire codec imports these)
    _decode_actor,
    _decode_str,
    _decode_varint,
    _decode_vv_body,
    _encode_str,
    _encode_varint,
    _encode_vv_body,
    _value_to_str,
)
from .dot import Dot
from .dvv import DottedVersionVector
from .dvvset import DVVSet
from .exceptions import SerializationError
from .version_vector import VersionVector

Clock = Union[CausalHistory, VersionVector, DottedVersionVector, DVVSet]

_TYPE_TAGS = {
    VersionVector: b"V",
    DottedVersionVector: b"D",
    CausalHistory: b"H",
    DVVSet: b"S",
}


# ---------------------------------------------------------------------- #
# Binary encoding
# ---------------------------------------------------------------------- #
def encode(clock: Clock) -> bytes:
    """Encode any clock type into a compact, self-describing byte string.

    Delegates to the canonical-bytes layer: the first call on an instance
    walks the structure, every later call returns the memoized bytes.
    """
    return codec.canonical_bytes(clock)


def decode(data: bytes) -> Clock:
    """Decode a byte string produced by :func:`encode`."""
    if not data:
        raise SerializationError("empty input")
    tag, offset = data[:1], 1
    if tag == b"V":
        vv, offset = _decode_vv_body(data, offset)
        _check_consumed(data, offset)
        return vv
    if tag == b"D":
        actor, offset = _decode_actor(data, offset)
        counter, offset = _decode_varint(data, offset)
        vv, offset = _decode_vv_body(data, offset)
        _check_consumed(data, offset)
        return DottedVersionVector(Dot(actor, counter), vv)
    if tag == b"H":
        has_event, offset = _decode_varint(data, offset)
        event = None
        if has_event:
            actor, offset = _decode_actor(data, offset)
            counter, offset = _decode_varint(data, offset)
            event = Dot(actor, counter)
        count, offset = _decode_varint(data, offset)
        dots: List[Dot] = []
        for _ in range(count):
            actor, offset = _decode_actor(data, offset)
            counter, offset = _decode_varint(data, offset)
            dots.append(Dot(actor, counter))
        _check_consumed(data, offset)
        return CausalHistory.from_events(dots, event)
    if tag == b"S":
        entry_count_, offset = _decode_varint(data, offset)
        entries = []
        for _ in range(entry_count_):
            actor, offset = _decode_actor(data, offset)
            counter, offset = _decode_varint(data, offset)
            value_count, offset = _decode_varint(data, offset)
            values = []
            for _ in range(value_count):
                value, offset = _decode_str(data, offset)
                values.append(value)
            entries.append((actor, counter, tuple(values)))
        anon_count, offset = _decode_varint(data, offset)
        anonymous = []
        for _ in range(anon_count):
            value, offset = _decode_str(data, offset)
            anonymous.append(value)
        _check_consumed(data, offset)
        return DVVSet(entries, anonymous)
    raise SerializationError(f"unknown clock tag {tag!r}")


def _check_consumed(data: bytes, offset: int) -> None:
    if offset != len(data):
        raise SerializationError(f"trailing bytes after decoding ({len(data) - offset} left)")


# ---------------------------------------------------------------------- #
# JSON encoding
# ---------------------------------------------------------------------- #
def to_json(clock: Clock) -> Dict[str, Any]:
    """A human-readable JSON-compatible representation of any clock."""
    if isinstance(clock, VersionVector):
        return {"type": "version_vector", "entries": dict(clock.items())}
    if isinstance(clock, DottedVersionVector):
        return {
            "type": "dotted_version_vector",
            "dot": list(clock.dot.as_tuple()),
            "causal_past": dict(clock.causal_past.items()),
        }
    if isinstance(clock, CausalHistory):
        return {
            "type": "causal_history",
            "event": list(clock.event.as_tuple()) if clock.event else None,
            "events": [list(d.as_tuple()) for d in sorted(clock.events())],
        }
    if isinstance(clock, DVVSet):
        return {
            "type": "dvvset",
            "entries": [[actor, counter, list(values)] for actor, counter, values in clock.entries],
            "anonymous": list(clock.anonymous),
        }
    raise SerializationError(f"cannot convert {type(clock).__name__} to JSON")


def from_json(payload: Dict[str, Any]) -> Clock:
    """Inverse of :func:`to_json`."""
    kind = payload.get("type")
    if kind == "version_vector":
        return VersionVector(payload["entries"])
    if kind == "dotted_version_vector":
        actor, counter = payload["dot"]
        return DottedVersionVector(Dot(actor, counter), VersionVector(payload["causal_past"]))
    if kind == "causal_history":
        event = Dot(*payload["event"]) if payload.get("event") else None
        return CausalHistory.from_events((Dot(a, c) for a, c in payload["events"]), event)
    if kind == "dvvset":
        entries = [(actor, counter, tuple(values)) for actor, counter, values in payload["entries"]]
        return DVVSet(entries, payload.get("anonymous", ()))
    raise SerializationError(f"unknown clock type {kind!r}")


# ---------------------------------------------------------------------- #
# Size accounting — what the metadata experiments measure
# ---------------------------------------------------------------------- #
def encoded_size(clock: Clock) -> int:
    """Number of bytes of the compact binary encoding of ``clock``.

    A cache read after the instance has been encoded once (metadata-size
    accounting in the mechanisms calls this per request on the same stored
    clocks, so the memo carries the whole measurement path).
    """
    return len(codec.canonical_bytes(clock))


def entry_count(clock: Clock) -> int:
    """Number of logical entries in the clock (the paper's "size of metadata").

    * version vector: number of (actor, counter) pairs;
    * DVV: vector entries + 1 for the dot;
    * DVVSet: number of per-actor entries;
    * causal history: number of recorded events (unbounded).
    """
    if isinstance(clock, VersionVector):
        return len(clock)
    if isinstance(clock, DottedVersionVector):
        return len(clock.causal_past) + 1
    if isinstance(clock, DVVSet):
        return clock.entry_count()
    if isinstance(clock, CausalHistory):
        return len(clock)
    raise SerializationError(f"cannot size object of type {type(clock).__name__}")
