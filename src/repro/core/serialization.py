"""Serialisation and size accounting for clocks.

The quantitative half of the paper's evaluation ("a significant reduction in
the size of metadata, and better latency when serving requests") is about how
many bytes of causality metadata travel with every request and sit next to
every stored value.  This module provides:

* a compact, dependency-free binary encoding for every clock type (length-
  prefixed UTF-8 actor ids + varint counters), used both to measure realistic
  byte sizes and to exercise round-trip correctness in the tests;
* a JSON-compatible encoding for human inspection and for the examples;
* :func:`encoded_size` / :func:`entry_count`, the two measurements the
  metadata-size experiments (E2/E4 in DESIGN.md) report.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Tuple, Union

from .causal_history import CausalHistory
from .dot import Dot
from .dvv import DottedVersionVector
from .dvvset import DVVSet
from .exceptions import SerializationError
from .version_vector import VersionVector

Clock = Union[CausalHistory, VersionVector, DottedVersionVector, DVVSet]

_TYPE_TAGS = {
    VersionVector: b"V",
    DottedVersionVector: b"D",
    CausalHistory: b"H",
    DVVSet: b"S",
}


# ---------------------------------------------------------------------- #
# Varint helpers (LEB128, unsigned)
# ---------------------------------------------------------------------- #
def _encode_varint(value: int) -> bytes:
    if value < 0:
        raise SerializationError(f"cannot encode negative integer {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _encode_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return _encode_varint(len(raw)) + raw


def _decode_str(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = _decode_varint(data, offset)
    if offset + length > len(data):
        raise SerializationError("truncated string")
    return data[offset:offset + length].decode("utf-8"), offset + length


# ---------------------------------------------------------------------- #
# Binary encoding
# ---------------------------------------------------------------------- #
def _encode_vv_body(vv: VersionVector) -> bytes:
    out = bytearray(_encode_varint(len(vv)))
    for actor, counter in vv.items():
        out += _encode_str(actor)
        out += _encode_varint(counter)
    return bytes(out)


def _decode_vv_body(data: bytes, offset: int) -> Tuple[VersionVector, int]:
    count, offset = _decode_varint(data, offset)
    entries: Dict[str, int] = {}
    for _ in range(count):
        actor, offset = _decode_str(data, offset)
        counter, offset = _decode_varint(data, offset)
        entries[actor] = counter
    return VersionVector(entries), offset


def encode(clock: Clock) -> bytes:
    """Encode any clock type into a compact, self-describing byte string."""
    if isinstance(clock, VersionVector):
        return b"V" + _encode_vv_body(clock)
    if isinstance(clock, DottedVersionVector):
        body = _encode_str(clock.dot.actor) + _encode_varint(clock.dot.counter)
        return b"D" + body + _encode_vv_body(clock.causal_past)
    if isinstance(clock, CausalHistory):
        dots = sorted(clock.events())
        out = bytearray(b"H")
        event = clock.event
        out += _encode_varint(1 if event is not None else 0)
        if event is not None:
            out += _encode_str(event.actor) + _encode_varint(event.counter)
        out += _encode_varint(len(dots))
        for dot in dots:
            out += _encode_str(dot.actor) + _encode_varint(dot.counter)
        return bytes(out)
    if isinstance(clock, DVVSet):
        out = bytearray(b"S")
        out += _encode_varint(len(clock.entries))
        for actor, counter, values in clock.entries:
            out += _encode_str(actor)
            out += _encode_varint(counter)
            out += _encode_varint(len(values))
            for value in values:
                out += _encode_str(_value_to_str(value))
        out += _encode_varint(len(clock.anonymous))
        for value in clock.anonymous:
            out += _encode_str(_value_to_str(value))
        return bytes(out)
    raise SerializationError(f"cannot encode object of type {type(clock).__name__}")


def decode(data: bytes) -> Clock:
    """Decode a byte string produced by :func:`encode`."""
    if not data:
        raise SerializationError("empty input")
    tag, offset = data[:1], 1
    if tag == b"V":
        vv, offset = _decode_vv_body(data, offset)
        _check_consumed(data, offset)
        return vv
    if tag == b"D":
        actor, offset = _decode_str(data, offset)
        counter, offset = _decode_varint(data, offset)
        vv, offset = _decode_vv_body(data, offset)
        _check_consumed(data, offset)
        return DottedVersionVector(Dot(actor, counter), vv)
    if tag == b"H":
        has_event, offset = _decode_varint(data, offset)
        event = None
        if has_event:
            actor, offset = _decode_str(data, offset)
            counter, offset = _decode_varint(data, offset)
            event = Dot(actor, counter)
        count, offset = _decode_varint(data, offset)
        dots: List[Dot] = []
        for _ in range(count):
            actor, offset = _decode_str(data, offset)
            counter, offset = _decode_varint(data, offset)
            dots.append(Dot(actor, counter))
        _check_consumed(data, offset)
        return CausalHistory.from_events(dots, event)
    if tag == b"S":
        entry_count_, offset = _decode_varint(data, offset)
        entries = []
        for _ in range(entry_count_):
            actor, offset = _decode_str(data, offset)
            counter, offset = _decode_varint(data, offset)
            value_count, offset = _decode_varint(data, offset)
            values = []
            for _ in range(value_count):
                value, offset = _decode_str(data, offset)
                values.append(value)
            entries.append((actor, counter, tuple(values)))
        anon_count, offset = _decode_varint(data, offset)
        anonymous = []
        for _ in range(anon_count):
            value, offset = _decode_str(data, offset)
            anonymous.append(value)
        _check_consumed(data, offset)
        return DVVSet(entries, anonymous)
    raise SerializationError(f"unknown clock tag {tag!r}")


def _check_consumed(data: bytes, offset: int) -> None:
    if offset != len(data):
        raise SerializationError(f"trailing bytes after decoding ({len(data) - offset} left)")


def _value_to_str(value: Any) -> str:
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, default=str)


# ---------------------------------------------------------------------- #
# JSON encoding
# ---------------------------------------------------------------------- #
def to_json(clock: Clock) -> Dict[str, Any]:
    """A human-readable JSON-compatible representation of any clock."""
    if isinstance(clock, VersionVector):
        return {"type": "version_vector", "entries": dict(clock.items())}
    if isinstance(clock, DottedVersionVector):
        return {
            "type": "dotted_version_vector",
            "dot": list(clock.dot.as_tuple()),
            "causal_past": dict(clock.causal_past.items()),
        }
    if isinstance(clock, CausalHistory):
        return {
            "type": "causal_history",
            "event": list(clock.event.as_tuple()) if clock.event else None,
            "events": [list(d.as_tuple()) for d in sorted(clock.events())],
        }
    if isinstance(clock, DVVSet):
        return {
            "type": "dvvset",
            "entries": [[actor, counter, list(values)] for actor, counter, values in clock.entries],
            "anonymous": list(clock.anonymous),
        }
    raise SerializationError(f"cannot convert {type(clock).__name__} to JSON")


def from_json(payload: Dict[str, Any]) -> Clock:
    """Inverse of :func:`to_json`."""
    kind = payload.get("type")
    if kind == "version_vector":
        return VersionVector(payload["entries"])
    if kind == "dotted_version_vector":
        actor, counter = payload["dot"]
        return DottedVersionVector(Dot(actor, counter), VersionVector(payload["causal_past"]))
    if kind == "causal_history":
        event = Dot(*payload["event"]) if payload.get("event") else None
        return CausalHistory.from_events((Dot(a, c) for a, c in payload["events"]), event)
    if kind == "dvvset":
        entries = [(actor, counter, tuple(values)) for actor, counter, values in payload["entries"]]
        return DVVSet(entries, payload.get("anonymous", ()))
    raise SerializationError(f"unknown clock type {kind!r}")


# ---------------------------------------------------------------------- #
# Size accounting — what the metadata experiments measure
# ---------------------------------------------------------------------- #
def encoded_size(clock: Clock) -> int:
    """Number of bytes of the compact binary encoding of ``clock``."""
    return len(encode(clock))


def entry_count(clock: Clock) -> int:
    """Number of logical entries in the clock (the paper's "size of metadata").

    * version vector: number of (actor, counter) pairs;
    * DVV: vector entries + 1 for the dot;
    * DVVSet: number of per-actor entries;
    * causal history: number of recorded events (unbounded).
    """
    if isinstance(clock, VersionVector):
        return len(clock)
    if isinstance(clock, DottedVersionVector):
        return len(clock.causal_past) + 1
    if isinstance(clock, DVVSet):
        return clock.entry_count()
    if isinstance(clock, CausalHistory):
        return len(clock)
    raise SerializationError(f"cannot size object of type {type(clock).__name__}")
