"""Causal histories: the reference model for causality.

Causal histories (Schwarz & Mattern, reference [5] in the paper) characterise
causality *exactly*: each event ``a`` is assigned a fresh unique identifier
``id_a`` and its causal history is the set ``H_a = {id_a} ∪ P_a`` where ``P_a``
contains the identifiers of every event that causally precedes ``a``.  Set
inclusion then decides the happens-before relation precisely::

    H_a ⊂ H_b      ⇒  a happened before b
    H_a ⊄ H_b and H_b ⊄ H_a  ⇒  a ∥ b  (concurrent)

The representation is expensive — the sets grow without bound — which is why
practical systems use version vectors or dotted version vectors instead.  In
this library causal histories play the role of the *ground-truth oracle*: every
compact mechanism is checked (in the property-based tests and in
:mod:`repro.analysis.correctness`) against the orderings computed here, via the
denotation functions in :mod:`repro.core.semantics`.

This module corresponds to Figure 1a of the paper.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, Optional

from .comparison import Ordering
from .dot import Actor, Dot
from .exceptions import InvalidClockError


class CausalHistory:
    """An explicit, immutable set of event identifiers (dots).

    ``CausalHistory`` keeps the *version identifier* of the event it describes
    separate from the rest of the set, mirroring the paper's presentation (the
    underlined bold identifier in Figure 1a).  The full history — the set the
    formal model works with — is ``{event} ∪ past`` and is what
    :meth:`events` returns and what comparisons operate on.
    """

    __slots__ = ("_event", "_past", "_encoded", "_fingerprint")

    def __init__(self, event: Optional[Dot] = None, past: Iterable[Dot] = ()) -> None:
        past_set = frozenset(past)
        for entry in past_set:
            if not isinstance(entry, Dot):
                raise InvalidClockError(f"causal history entries must be Dots, got {entry!r}")
        if event is not None and not isinstance(event, Dot):
            raise InvalidClockError(f"causal history event must be a Dot, got {event!r}")
        object.__setattr__(self, "_event", event)
        object.__setattr__(
            self, "_past", past_set - ({event} if event is not None else frozenset())
        )
        object.__setattr__(self, "_encoded", None)
        object.__setattr__(self, "_fingerprint", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"CausalHistory is immutable; cannot set {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"CausalHistory is immutable; cannot delete {name!r}"
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "CausalHistory":
        """The history of "no events yet" (bottom of the lattice)."""
        return cls(None, ())

    @classmethod
    def from_events(cls, events: Iterable[Dot], event: Optional[Dot] = None) -> "CausalHistory":
        """Build a history from an arbitrary set of events.

        ``event`` optionally marks which member is the version identifier; the
        remaining members become the causal past.
        """
        events = frozenset(events)
        if event is not None and event not in events:
            events = events | {event}
        return cls(event, events)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def event(self) -> Optional[Dot]:
        """The identifier of the event this history describes (the "dot")."""
        return self._event

    @property
    def past(self) -> FrozenSet[Dot]:
        """The identifiers of the events that causally precede :attr:`event`."""
        return self._past

    def events(self) -> FrozenSet[Dot]:
        """The complete history ``{event} ∪ past``."""
        if self._event is None:
            return self._past
        return self._past | {self._event}

    def __len__(self) -> int:
        return len(self.events())

    def __iter__(self) -> Iterator[Dot]:
        return iter(self.events())

    def __contains__(self, item: Dot) -> bool:
        return item in self.events()

    def contains(self, dot: Dot) -> bool:
        """True iff ``dot`` is part of this history (identifier or past)."""
        return dot in self.events()

    # ------------------------------------------------------------------ #
    # Events and merging
    # ------------------------------------------------------------------ #
    def record_event(self, dot: Dot) -> "CausalHistory":
        """Return the history of a new event ``dot`` that causally follows ``self``.

        The new history has ``dot`` as its identifier and everything already in
        ``self`` as its causal past (``H_new = {dot} ∪ H_self``).
        """
        if dot in self.events():
            raise InvalidClockError(f"event identifier {dot} already present in history")
        return CausalHistory(dot, self.events())

    def merge(self, other: "CausalHistory") -> "CausalHistory":
        """Set-union of two histories, with no distinguished event.

        Merging models the causal past of a synchronisation point: the result
        describes knowledge of every event either side knew about.  A
        subsequent :meth:`record_event` creates the identifier for the merge's
        own write, if any.
        """
        return CausalHistory(None, self.events() | other.events())

    # ------------------------------------------------------------------ #
    # Comparison
    # ------------------------------------------------------------------ #
    def compare(self, other: "CausalHistory") -> Ordering:
        """Precise causal comparison by set inclusion."""
        mine: AbstractSet[Dot] = self.events()
        theirs: AbstractSet[Dot] = other.events()
        if mine == theirs:
            return Ordering.EQUAL
        if mine < theirs:
            return Ordering.BEFORE
        if mine > theirs:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def happens_before(self, other: "CausalHistory") -> bool:
        """True iff this history strictly precedes ``other``.

        When both histories have a distinguished event identifier the check
        reduces to the paper's containment test ``id_a ∈ H_b ∧ id_a ≠ id_b``;
        otherwise it falls back to strict set inclusion.
        """
        if self._event is not None and other._event is not None:
            return self._event in other.events() and self._event != other._event
        return self.compare(other) is Ordering.BEFORE

    def concurrent_with(self, other: "CausalHistory") -> bool:
        """True iff neither history precedes the other."""
        return self.compare(other) is Ordering.CONCURRENT

    # ------------------------------------------------------------------ #
    # Dunder / formatting
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CausalHistory):
            return NotImplemented
        return self._event == other._event and self._past == other._past

    def __hash__(self) -> int:
        return hash((self._event, self._past))

    def __repr__(self) -> str:
        return f"CausalHistory(event={self._event!r}, past={sorted(self._past)!r})"

    def __str__(self) -> str:
        def fmt(d: Dot) -> str:
            return f"{d.actor}{d.counter}"

        parts = []
        for entry in sorted(self.events()):
            label = fmt(entry)
            if self._event is not None and entry == self._event:
                label = f"*{label}*"
            parts.append(label)
        return "{" + ",".join(parts) + "}"
