"""Dotted version vectors — the paper's core contribution.

A dotted version vector (DVV) is a pair ``((i, n), v)`` where ``(i, n)`` is a
*dot* (the globally unique identifier of the event/version being described) and
``v`` is a plain version vector describing the *causal past* of that event.
Its denotation as a causal history is::

    C[[((i, n), v)]] = {i_n} ∪ ⋃_j {j_m | 1 <= m <= v[j]}

Decoupling the version identifier from the causal past gives the two
properties the paper highlights:

* **O(1) causality verification** — event ``a`` precedes event ``b`` iff
  ``n_a <= v_b[i_a]``, i.e. a single dictionary lookup
  (:meth:`DottedVersionVector.happens_before`).
* **Precise tracking of concurrent client writes with one entry per replica
  server** — the dot is minted by the coordinating *server*, so the actor
  space (and therefore the vector size) is bounded by the replication degree,
  yet writes racing through the same server still get distinct dots and are
  correctly detected as concurrent (Figure 1c:
  ``(A,3)[1,0] ∥ (A,2)[1,0]``).

Besides the clock itself, this module provides the *kernel* operations a
storage server needs (following the companion technical report, reference [4]):

* :func:`update` — mint the clock for a new version written by a client that
  supplied causal context ``ctx`` at server ``r`` currently holding
  ``server_versions``.
* :func:`sync` — merge the version sets of two replicas, discarding versions
  that are in the causal past of another version.
* :func:`discard` — drop the versions already covered by a client context.
* :func:`join` — summarise a set of versions into the version-vector context
  handed back to clients on GET.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .causal_history import CausalHistory
from .comparison import Ordering
from .dot import Actor, Dot
from .exceptions import InvalidClockError
from .version_vector import VersionVector


class DottedVersionVector:
    """The paper's ``(dot, version-vector)`` logical clock.

    Instances are immutable value objects.  The dot identifies the version,
    the vector records its causal past; the dot is *not* required to be the
    contiguous successor of the vector's entry for the same actor — that gap
    (e.g. ``(A,3)[1,0]``, which skips ``(A,2)``) is exactly what lets DVVs
    represent versions written concurrently through the same server.
    """

    __slots__ = ("_dot", "_vv", "_encoded", "_fingerprint")

    def __init__(self, dot: Dot, causal_past: Optional[VersionVector] = None) -> None:
        if not isinstance(dot, Dot):
            raise InvalidClockError(f"DVV dot must be a Dot, got {dot!r}")
        vv = causal_past if causal_past is not None else VersionVector.empty()
        if not isinstance(vv, VersionVector):
            raise InvalidClockError(f"DVV causal past must be a VersionVector, got {vv!r}")
        if vv.contains_dot(dot):
            raise InvalidClockError(
                f"dot {dot} must not already be contained in its own causal past {vv}"
            )
        object.__setattr__(self, "_dot", dot)
        object.__setattr__(self, "_vv", vv)
        object.__setattr__(self, "_encoded", None)
        object.__setattr__(self, "_fingerprint", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"DottedVersionVector is immutable; cannot set {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"DottedVersionVector is immutable; cannot delete {name!r}"
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def dot(self) -> Dot:
        """The version identifier ``(i, n)``."""
        return self._dot

    @property
    def causal_past(self) -> VersionVector:
        """The version vector ``v`` encoding the causal past."""
        return self._vv

    def contains_dot(self, dot: Dot) -> bool:
        """O(1) membership test of ``dot`` in the denoted causal history."""
        return dot == self._dot or self._vv.contains_dot(dot)

    def size(self) -> int:
        """Number of vector entries (excluding the dot) — bounded by #replicas."""
        return len(self._vv)

    # ------------------------------------------------------------------ #
    # Causality
    # ------------------------------------------------------------------ #
    def happens_before(self, other: "DottedVersionVector") -> bool:
        """O(1) test: does this version causally precede ``other``?

        Directly implements the paper's rule ``a < b iff n_a <= v_b[i_a]`` —
        a single lookup in ``other``'s causal past, independent of the number
        of entries in either vector.
        """
        return self._dot != other._dot and other._vv.contains_dot(self._dot)

    def concurrent_with(self, other: "DottedVersionVector") -> bool:
        """O(1) test: ``a ∥ b iff n_a > v_b[i_a] ∧ n_b > v_a[i_b]``."""
        if self._dot == other._dot:
            return False
        return not other._vv.contains_dot(self._dot) and not self._vv.contains_dot(other._dot)

    def descends(self, other: "DottedVersionVector") -> bool:
        """True iff ``other`` is in this version's causal past (or is the same version)."""
        return self._dot == other._dot or self.contains_dot(other._dot)

    def compare(self, other: "DottedVersionVector") -> Ordering:
        """Full four-way comparison (still O(1) apart from the EQUAL check)."""
        if self._dot == other._dot:
            return Ordering.EQUAL if self._vv == other._vv else (
                Ordering.BEFORE if other._vv.descends(self._vv) else
                Ordering.AFTER if self._vv.descends(other._vv) else Ordering.CONCURRENT
            )
        mine_in_theirs = other._vv.contains_dot(self._dot)
        theirs_in_mine = self._vv.contains_dot(other._dot)
        if mine_in_theirs and theirs_in_mine:
            # Only possible for hand-built clocks describing overlapping
            # histories; fall back to the precise causal-history comparison.
            return self.to_causal_history().compare(other.to_causal_history())
        if mine_in_theirs:
            return Ordering.BEFORE
        if theirs_in_mine:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_causal_history(self) -> CausalHistory:
        """Expand to the denoted causal history ``C[[(dot, v)]]`` (O(events))."""
        return CausalHistory(self._dot, self._vv.dots())

    def to_version_vector(self) -> VersionVector:
        """Smallest plain VV that covers this clock (dot folded into the vector).

        This is the per-version "ceiling" used when building the GET context:
        note it may include dots that are *not* in the causal history when the
        dot is non-contiguous (that imprecision is exactly why the dot must be
        kept separate while versions are still live).
        """
        actor = self._dot.actor
        return self._vv.with_entry(actor, max(self._vv.get(actor), self._dot.counter))

    # ------------------------------------------------------------------ #
    # Dunder / formatting
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DottedVersionVector):
            return NotImplemented
        return self._dot == other._dot and self._vv == other._vv

    def __hash__(self) -> int:
        return hash((self._dot, self._vv))

    def __repr__(self) -> str:
        return f"DottedVersionVector(dot={self._dot!r}, causal_past={self._vv!r})"

    def __str__(self) -> str:
        return f"({self._dot.actor},{self._dot.counter}){self._vv}"


# ---------------------------------------------------------------------- #
# Kernel operations (server-side protocol from the technical report)
# ---------------------------------------------------------------------- #
def max_counter_for(actor: Actor, versions: Iterable[DottedVersionVector],
                    context: Optional[VersionVector] = None) -> int:
    """Highest event counter of ``actor`` known among ``versions`` and ``context``.

    Used by :func:`update` to mint a fresh dot that is greater than anything
    the coordinating server has already issued or heard about.
    """
    best = context.get(actor) if context is not None else 0
    for version in versions:
        if version.dot.actor == actor:
            best = max(best, version.dot.counter)
        best = max(best, version.causal_past.get(actor))
    return best


def update(context: VersionVector,
           server_versions: Sequence[DottedVersionVector],
           server_id: Actor) -> DottedVersionVector:
    """Mint the clock of a new version written through ``server_id``.

    ``context`` is the causal context the client obtained from its last GET
    (empty for a blind write); ``server_versions`` are the clocks of the
    versions currently stored at the coordinating replica.  The new clock's
    dot is a fresh event of ``server_id`` (one past everything it has issued)
    and its causal past is exactly the client's context — which is what makes
    two clients racing through the same server produce *concurrent* clocks,
    e.g. ``(A,2)[1,0]`` and ``(A,3)[1,0]`` in Figure 1c.
    """
    counter = max_counter_for(server_id, server_versions, context) + 1
    return DottedVersionVector(Dot(server_id, counter), context)


def obsoleted_by(version: DottedVersionVector,
                 candidates: Iterable[DottedVersionVector]) -> bool:
    """True iff some candidate's causal history contains ``version``'s dot."""
    return any(version.happens_before(candidate) for candidate in candidates)


def covered_by_context(version: DottedVersionVector, context: VersionVector) -> bool:
    """True iff ``version`` is already included in a client context vector."""
    return context.contains_dot(version.dot)


def discard(versions: Sequence[DottedVersionVector],
            context: VersionVector) -> List[DottedVersionVector]:
    """Drop the versions whose dot is covered by ``context``.

    This is the server-side step of a PUT: every sibling the writing client had
    already seen (its dot is in the client's context) is superseded by the new
    write; siblings the client had *not* seen survive as concurrent versions.
    """
    return [v for v in versions if not covered_by_context(v, context)]


def sync(left: Sequence[DottedVersionVector],
         right: Sequence[DottedVersionVector]) -> List[DottedVersionVector]:
    """Merge the version sets of two replicas (anti-entropy / read repair).

    The result is the union of both sets minus every version that is in the
    causal past of another version in the union, with duplicates (same dot)
    collapsed.  Order of the result is deterministic (sorted by dot) so that
    replicas converge to identical sibling lists.
    """
    by_dot = {}
    for version in list(left) + list(right):
        existing = by_dot.get(version.dot)
        if existing is None or version.causal_past.descends(existing.causal_past):
            by_dot[version.dot] = version
    merged = list(by_dot.values())
    survivors = [v for v in merged if not obsoleted_by(v, merged)]
    survivors.sort(key=lambda v: v.dot)
    return survivors


def join(versions: Iterable[DottedVersionVector]) -> VersionVector:
    """Summarise a sibling set into the causal context returned on GET.

    The join is the pointwise maximum over every version's ceiling vector
    (:meth:`DottedVersionVector.to_version_vector`); a client that later PUTs
    with this context supersedes exactly the versions it read.
    """
    acc = VersionVector.empty()
    for version in versions:
        acc = acc.merge(version.to_version_vector())
    return acc
