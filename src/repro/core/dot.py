"""Dots: globally unique event identifiers.

A *dot* is the pair ``(actor, counter)`` identifying the ``counter``-th event
produced by ``actor``.  In the terminology of the paper, the dot is the
*version identifier* of a write, kept separate from the causal past so that
causality checks become a single containment test (Section 2 of the brief
announcement).

Dots are small immutable value objects.  They are hashable (usable as set
members and dict keys), totally ordered lexicographically (useful for
deterministic iteration and for sibling ordering in the store — note that this
*total* order is not the causal order), and cheap to copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .exceptions import InvalidDotError

Actor = str
"""Type alias for actor (node / replica / client) identifiers."""


@dataclass(frozen=True, order=True)
class Dot:
    """A globally unique event identifier ``(actor, counter)``.

    Parameters
    ----------
    actor:
        Identifier of the entity that produced the event.  In the storage
        system this is a replica-server id (the paper's key point is that the
        actor space is the set of servers, not the set of clients).
    counter:
        1-based sequence number of the event at ``actor``.  The first event an
        actor produces is numbered 1, matching the paper's convention that the
        first identifier assigned by site ``s_i`` is ``(s_i, 1)``.
    """

    actor: Actor
    counter: int

    def __post_init__(self) -> None:
        if not isinstance(self.actor, str) or not self.actor:
            raise InvalidDotError(f"dot actor must be a non-empty string, got {self.actor!r}")
        if not isinstance(self.counter, int) or isinstance(self.counter, bool):
            raise InvalidDotError(f"dot counter must be an int, got {self.counter!r}")
        if self.counter < 1:
            raise InvalidDotError(f"dot counter must be >= 1, got {self.counter}")

    def next(self) -> "Dot":
        """Return the dot for the next event of the same actor."""
        return Dot(self.actor, self.counter + 1)

    def previous_dots(self) -> Iterator["Dot"]:
        """Iterate over all earlier dots of the same actor (1 .. counter-1)."""
        for n in range(1, self.counter):
            yield Dot(self.actor, n)

    def as_tuple(self) -> Tuple[Actor, int]:
        """Return the dot as a plain ``(actor, counter)`` tuple."""
        return (self.actor, self.counter)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.actor},{self.counter})"


def dot(actor: Actor, counter: int) -> Dot:
    """Convenience factory for :class:`Dot` (mirrors the paper's ``(i, n)``)."""
    return Dot(actor, counter)
