"""Causal ordering results and generic comparison helpers.

Every causality mechanism in this library (causal histories, version vectors,
dotted version vectors, version vectors with exceptions, ...) can relate two
values in exactly one of four ways, captured by :class:`Ordering`:

* ``BEFORE``     — the first value causally precedes the second.
* ``AFTER``      — the first value causally follows the second.
* ``EQUAL``      — the two values describe the same causal history.
* ``CONCURRENT`` — neither precedes the other.

The module also exposes :func:`compare`, a structural dispatcher that works on
any pair of objects implementing the small ``compare(other) -> Ordering``
protocol, plus boolean convenience wrappers used throughout the store and the
analysis code.
"""

from __future__ import annotations

import enum
from typing import Protocol, runtime_checkable

from .exceptions import IncomparableError


class Ordering(enum.Enum):
    """Outcome of comparing two causally-related values."""

    BEFORE = "before"
    AFTER = "after"
    EQUAL = "equal"
    CONCURRENT = "concurrent"

    def inverse(self) -> "Ordering":
        """Return the ordering seen from the other operand's point of view."""
        if self is Ordering.BEFORE:
            return Ordering.AFTER
        if self is Ordering.AFTER:
            return Ordering.BEFORE
        return self

    @property
    def is_ordered(self) -> bool:
        """True when the two values are comparable (not concurrent)."""
        return self is not Ordering.CONCURRENT


@runtime_checkable
class Comparable(Protocol):
    """Protocol implemented by every clock type in the library."""

    def compare(self, other: "Comparable") -> Ordering:  # pragma: no cover - protocol
        """Return the causal ordering between ``self`` and ``other``."""
        ...


def compare(a: Comparable, b: Comparable) -> Ordering:
    """Compare two clock values of the same mechanism.

    This is a thin wrapper over ``a.compare(b)`` that exists so call sites can
    stay symmetric (``compare(a, b)``) and so analysis code can be written
    against a single free function.
    """
    return a.compare(b)


def happens_before(a: Comparable, b: Comparable) -> bool:
    """True iff ``a`` causally precedes ``b`` (strictly)."""
    return compare(a, b) is Ordering.BEFORE


def happens_after(a: Comparable, b: Comparable) -> bool:
    """True iff ``a`` causally follows ``b`` (strictly)."""
    return compare(a, b) is Ordering.AFTER


def concurrent(a: Comparable, b: Comparable) -> bool:
    """True iff neither value causally precedes the other."""
    return compare(a, b) is Ordering.CONCURRENT


def equivalent(a: Comparable, b: Comparable) -> bool:
    """True iff the two values describe the same causal history."""
    return compare(a, b) is Ordering.EQUAL


def dominates(a: Comparable, b: Comparable) -> bool:
    """True iff ``a`` is causally at or after ``b`` (``EQUAL`` or ``AFTER``)."""
    return compare(a, b) in (Ordering.EQUAL, Ordering.AFTER)


def strictly_ordered(a: Comparable, b: Comparable) -> Ordering:
    """Like :func:`compare` but raising when the values are concurrent.

    Useful in code paths (e.g. log truncation) that require a total order and
    would silently misbehave on concurrent inputs.
    """
    result = compare(a, b)
    if result is Ordering.CONCURRENT:
        raise IncomparableError(f"values are concurrent: {a!r} || {b!r}")
    return result
