"""Dotted version vector *sets* (DVVSet) — the compact server-side clock.

The brief announcement describes one DVV per stored version.  The production
integration in Riak (and the companion technical report) goes one step
further: since all sibling versions of a key live together at a replica, their
clocks can be packed into a single structure, the **dotted version vector
set**.  A DVVSet keeps, per server id, a counter (how many events that server
has minted for this key) together with the most recent values that server
minted and that are still causally relevant, plus a list of "anonymous" values
not yet associated with a dot (e.g. a value carried by a fresh client PUT
before the coordinating server assigns its dot).

Concretely a DVVSet is::

    ({(actor, counter, (v_k, ..., v_1)), ...},  (anonymous values...))

where ``counter`` counts every event ``actor`` produced for the key and the
value tuple holds the newest ``len(values)`` of those events, newest first:
the event for value ``values[j]`` has sequence number ``counter - j``.  Events
older than ``counter - len(values)`` are in the causal past and carry no
value.  This is a direct port of Riak's ``dvvset.erl`` with Python naming.

The public operations mirror the server protocol:

* :meth:`DVVSet.new` / :meth:`DVVSet.new_with_context` — wrap a freshly
  written value (optionally with the client's causal context).
* :meth:`DVVSet.update` — mint the coordinating server's dot for the new
  value, discarding the siblings the client had already seen.
* :meth:`DVVSet.sync` — merge the clocks of two replicas (anti-entropy,
  read repair), keeping exactly the concurrent values.
* :meth:`DVVSet.join` — extract the version-vector causal context sent back
  to clients on GET.
* :meth:`DVVSet.values` — list the currently live (concurrent) values.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from .comparison import Ordering
from .dot import Actor, Dot
from .exceptions import InvalidClockError
from .version_vector import VersionVector

V = TypeVar("V")

Entry = Tuple[Actor, int, Tuple[V, ...]]


class DVVSet(Generic[V]):
    """A dotted version vector set holding sibling values and their causality."""

    __slots__ = ("_entries", "_anonymous", "_encoded", "_fingerprint")

    def __init__(self,
                 entries: Iterable[Entry] = (),
                 anonymous: Iterable[V] = ()) -> None:
        normalised: List[Entry] = []
        seen = set()
        for actor, counter, values in entries:
            if not isinstance(actor, str) or not actor:
                raise InvalidClockError(f"DVVSet actor must be a non-empty string, got {actor!r}")
            if not isinstance(counter, int) or counter < 0:
                raise InvalidClockError(f"DVVSet counter must be a non-negative int, got {counter!r}")
            values = tuple(values)
            if len(values) > counter:
                raise InvalidClockError(
                    f"entry for {actor!r} holds {len(values)} values but only {counter} events"
                )
            if actor in seen:
                raise InvalidClockError(f"duplicate DVVSet entry for actor {actor!r}")
            seen.add(actor)
            normalised.append((actor, counter, values))
        normalised.sort(key=lambda e: e[0])
        object.__setattr__(self, "_entries", tuple(normalised))
        object.__setattr__(self, "_anonymous", tuple(anonymous))
        object.__setattr__(self, "_encoded", None)
        object.__setattr__(self, "_fingerprint", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"DVVSet is immutable; cannot set {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"DVVSet is immutable; cannot delete {name!r}"
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def new(cls, value: V) -> "DVVSet[V]":
        """Clock for a brand-new value written with no causal context."""
        return cls((), (value,))

    @classmethod
    def new_with_context(cls, context: VersionVector, value: V) -> "DVVSet[V]":
        """Clock for a new value written by a client holding GET context ``context``."""
        entries = tuple((actor, counter, ()) for actor, counter in context.items())
        return cls(entries, (value,))

    @classmethod
    def empty(cls) -> "DVVSet[V]":
        """A clock describing no events and carrying no values."""
        return cls((), ())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def entries(self) -> Tuple[Entry, ...]:
        """The per-actor entries, sorted by actor id."""
        return self._entries

    @property
    def anonymous(self) -> Tuple[V, ...]:
        """Values not yet associated with a dot."""
        return self._anonymous

    def actors(self) -> Tuple[Actor, ...]:
        """Actors (server ids) present in the clock."""
        return tuple(actor for actor, _, _ in self._entries)

    def counter(self, actor: Actor) -> int:
        """Number of events minted by ``actor`` for this key (0 when absent)."""
        for entry_actor, counter, _ in self._entries:
            if entry_actor == actor:
                return counter
        return 0

    def values(self) -> List[V]:
        """All currently live sibling values (anonymous first, then per-actor, newest first)."""
        out: List[V] = list(self._anonymous)
        for _, _, values in self._entries:
            out.extend(values)
        return out

    def size(self) -> int:
        """Number of live sibling values."""
        return len(self._anonymous) + sum(len(values) for _, _, values in self._entries)

    def entry_count(self) -> int:
        """Number of per-actor entries — the metadata footprint driver."""
        return len(self._entries)

    def total_events(self) -> int:
        """Total number of events recorded across all actors."""
        return sum(counter for _, counter, _ in self._entries)

    def dots(self) -> List[Tuple[Dot, Optional[V]]]:
        """Every event in the clock with its value (None for past, value-less events)."""
        out: List[Tuple[Dot, Optional[V]]] = []
        for actor, counter, values in self._entries:
            for offset in range(counter):
                seq = counter - offset
                value = values[offset] if offset < len(values) else None
                out.append((Dot(actor, seq), value))
        return out

    def contains_dot(self, dot: Dot) -> bool:
        """O(#actors) membership of an event in the clock's causal history."""
        return dot.counter <= self.counter(dot.actor)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def join(self) -> VersionVector:
        """The causal context of the whole sibling set (sent to clients on GET)."""
        return VersionVector({actor: counter for actor, counter, _ in self._entries})

    def event(self, actor: Actor, value: V) -> "DVVSet[V]":
        """Record a new event by ``actor`` carrying ``value`` (internal to PUT)."""
        entries: List[Entry] = []
        found = False
        for entry_actor, counter, values in self._entries:
            if entry_actor == actor:
                entries.append((entry_actor, counter + 1, (value,) + values))
                found = True
            else:
                entries.append((entry_actor, counter, values))
        if not found:
            entries.append((actor, 1, (value,)))
        return DVVSet(entries, self._anonymous)

    def update(self, server_clock: "DVVSet[V]", server_id: Actor) -> "DVVSet[V]":
        """Mint ``server_id``'s dot for this clock's new value, against ``server_clock``.

        ``self`` must be a clock produced by :meth:`new` /
        :meth:`new_with_context` (one anonymous value, entries describing the
        client's context).  ``server_clock`` is the clock currently stored at
        the coordinating replica.  The result contains the new value tagged
        with a fresh dot of ``server_id`` plus every stored sibling that the
        client had *not* yet seen — exactly the paper's semantics for
        concurrent client writes.
        """
        if len(self._anonymous) != 1:
            raise InvalidClockError(
                "update() expects a client clock carrying exactly one anonymous value"
            )
        value = self._anonymous[0]
        context_only = DVVSet(self._entries, ())
        merged = context_only.sync(server_clock)
        return merged.event(server_id, value)

    def advance(self, server_id: Actor, value: V) -> "DVVSet[V]":
        """Shortcut for a blind server-local write (no client context, no stored clock)."""
        return DVVSet(self._entries, self._anonymous).event(server_id, value)

    def sync(self, other: "DVVSet[V]") -> "DVVSet[V]":
        """Merge two replica clocks, keeping exactly the concurrent values.

        For each actor the entry with more events wins; values of the loser
        that the winner has already superseded are dropped, values the winner
        has not yet seen are kept.  Anonymous values are unioned.
        """
        mine: Dict[Actor, Tuple[int, Tuple[V, ...]]] = {
            actor: (counter, values) for actor, counter, values in self._entries
        }
        theirs: Dict[Actor, Tuple[int, Tuple[V, ...]]] = {
            actor: (counter, values) for actor, counter, values in other._entries
        }
        entries: List[Entry] = []
        for actor in sorted(set(mine) | set(theirs)):
            if actor not in theirs:
                counter, values = mine[actor]
                entries.append((actor, counter, values))
            elif actor not in mine:
                counter, values = theirs[actor]
                entries.append((actor, counter, values))
            else:
                entries.append(self._merge_entry(actor, mine[actor], theirs[actor]))
        anonymous = _unique(self._anonymous + other._anonymous)
        return DVVSet(entries, anonymous)

    @staticmethod
    def _merge_entry(actor: Actor,
                     left: Tuple[int, Tuple[V, ...]],
                     right: Tuple[int, Tuple[V, ...]]) -> Entry:
        """Merge the two replicas' entries for one actor (dvvset.erl ``merge/5``)."""
        left_counter, left_values = left
        right_counter, right_values = right
        if left_counter < right_counter:
            left_counter, left_values, right_counter, right_values = (
                right_counter, right_values, left_counter, left_values
            )
        # ``left`` now has at least as many events.  The oldest event that
        # ``right`` still carries a value for is ``right_counter - len(right_values) + 1``;
        # anything older than that has been superseded on the right, so the
        # left may only keep values at least that recent.
        left_floor = left_counter - len(left_values)
        right_floor = right_counter - len(right_values)
        if left_floor >= right_floor:
            return (actor, left_counter, left_values)
        keep = left_counter - right_floor
        return (actor, left_counter, left_values[:keep])

    # ------------------------------------------------------------------ #
    # Comparison
    # ------------------------------------------------------------------ #
    def descends(self, other: "DVVSet[V]") -> bool:
        """True iff this clock's history includes every event of ``other``."""
        return all(self.counter(actor) >= counter for actor, counter, _ in other._entries)

    def compare(self, other: "DVVSet[V]") -> Ordering:
        """Causal comparison of the two clocks' event histories."""
        forwards = self.descends(other)
        backwards = other.descends(self)
        if forwards and backwards:
            return Ordering.EQUAL
        if forwards:
            return Ordering.AFTER
        if backwards:
            return Ordering.BEFORE
        return Ordering.CONCURRENT

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DVVSet):
            return NotImplemented
        return self._entries == other._entries and self._anonymous == other._anonymous

    def __hash__(self) -> int:
        return hash((self._entries, self._anonymous))

    def __repr__(self) -> str:
        return f"DVVSet(entries={self._entries!r}, anonymous={self._anonymous!r})"

    def __str__(self) -> str:
        entries = ", ".join(
            f"{actor}:{counter}{list(values)!r}" for actor, counter, values in self._entries
        )
        return "{" + entries + (f" | {list(self._anonymous)!r}" if self._anonymous else "") + "}"


def _unique(values: Sequence[V]) -> Tuple[V, ...]:
    """Deduplicate while preserving first-seen order (values may be unhashable)."""
    out: List[V] = []
    for value in values:
        if value not in out:
            out.append(value)
    return tuple(out)
