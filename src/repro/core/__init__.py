"""Core causality-tracking primitives: the paper's contribution.

This subpackage contains the dotted version vector itself
(:class:`~repro.core.dvv.DottedVersionVector` and its server-side kernel
operations), the compact sibling-set variant
(:class:`~repro.core.dvvset.DVVSet`), the classic version vector it improves
upon, the causal-history reference model used as the ground-truth oracle, and
the serialisation / size-accounting helpers the metadata experiments rely on.
"""

from .causal_history import CausalHistory
from .comparison import (
    Comparable,
    Ordering,
    compare,
    concurrent,
    dominates,
    equivalent,
    happens_after,
    happens_before,
    strictly_ordered,
)
from .dot import Actor, Dot, dot
from .dvv import (
    DottedVersionVector,
    covered_by_context,
    discard,
    join,
    max_counter_for,
    obsoleted_by,
    sync,
    update,
)
from .dvvset import DVVSet
from .exceptions import (
    ActorMismatchError,
    AnalysisError,
    ClockError,
    ConfigurationError,
    IncomparableError,
    InvalidClockError,
    InvalidDotError,
    KeyNotFoundError,
    NodeDownError,
    QuorumError,
    ReproError,
    SchedulingError,
    SerializationError,
    SimulationError,
    StaleContextError,
    StoreError,
    WorkloadError,
)
from .semantics import (
    agrees_with_history,
    covers,
    denote,
    denote_dvv,
    denote_dvvset,
    denote_version_vector,
    semantic_compare,
)
from .serialization import decode, encode, encoded_size, entry_count, from_json, to_json
from .version_vector import VersionVector, VersionVectorBuilder

__all__ = [
    "Actor",
    "ActorMismatchError",
    "AnalysisError",
    "CausalHistory",
    "ClockError",
    "Comparable",
    "ConfigurationError",
    "Dot",
    "DottedVersionVector",
    "DVVSet",
    "IncomparableError",
    "InvalidClockError",
    "InvalidDotError",
    "KeyNotFoundError",
    "NodeDownError",
    "Ordering",
    "QuorumError",
    "ReproError",
    "SchedulingError",
    "SerializationError",
    "SimulationError",
    "StaleContextError",
    "StoreError",
    "VersionVector",
    "VersionVectorBuilder",
    "WorkloadError",
    "agrees_with_history",
    "compare",
    "concurrent",
    "covered_by_context",
    "covers",
    "decode",
    "denote",
    "denote_dvv",
    "denote_dvvset",
    "denote_version_vector",
    "discard",
    "dominates",
    "dot",
    "encode",
    "encoded_size",
    "entry_count",
    "equivalent",
    "from_json",
    "happens_after",
    "happens_before",
    "join",
    "max_counter_for",
    "obsoleted_by",
    "semantic_compare",
    "strictly_ordered",
    "sync",
    "to_json",
    "update",
]
