"""Denotational semantics: mapping compact clocks to causal histories.

Every compact causality mechanism in this library is a lossy or lossless
encoding of a causal history.  This module makes those encodings explicit by
providing denotation functions into :class:`~repro.core.causal_history.CausalHistory`,
plus helpers that check whether two mechanisms *agree* on the ordering of two
events.  The property-based tests and the correctness analysis both lean on
these functions: the causal history is the ground truth, and each mechanism is
expected either to match it exactly (DVV, DVVSet, VVE, client-id VV without
pruning) or to deviate in precisely the way the paper describes (server-id VV
falsely ordering concurrent client writes; pruned client VVs losing history).
"""

from __future__ import annotations

from typing import Iterable, Union

from .causal_history import CausalHistory
from .comparison import Ordering
from .dot import Dot
from .dvv import DottedVersionVector
from .dvvset import DVVSet
from .version_vector import VersionVector

Clock = Union[CausalHistory, VersionVector, DottedVersionVector, DVVSet]


def denote_version_vector(vv: VersionVector) -> CausalHistory:
    """``C[[v]] = ⋃_j {j_m | 1 <= m <= v[j]}`` — contiguous prefixes only."""
    return CausalHistory(None, vv.dots())


def denote_dvv(dvv: DottedVersionVector) -> CausalHistory:
    """``C[[((i,n), v)]] = {i_n} ∪ C[[v]]`` — the paper's equation in Section 2."""
    return dvv.to_causal_history()


def denote_dvvset(clock: DVVSet) -> CausalHistory:
    """Every event recorded by any entry of the set (values are irrelevant here)."""
    return CausalHistory(None, (dot for dot, _ in clock.dots()))


def denote(clock: Clock) -> CausalHistory:
    """Dispatch to the appropriate denotation function."""
    if isinstance(clock, CausalHistory):
        return clock
    if isinstance(clock, VersionVector):
        return denote_version_vector(clock)
    if isinstance(clock, DottedVersionVector):
        return denote_dvv(clock)
    if isinstance(clock, DVVSet):
        return denote_dvvset(clock)
    raise TypeError(f"no denotation defined for {type(clock).__name__}")


def semantic_compare(a: Clock, b: Clock) -> Ordering:
    """Ground-truth ordering of two clocks, computed on their causal histories."""
    return denote(a).compare(denote(b))


def agrees_with_history(a: Clock, b: Clock) -> bool:
    """True iff the mechanism's own comparison matches the ground truth.

    For exact mechanisms this always holds; for lossy ones (e.g. server-id
    version vectors describing concurrent client writes) it is exactly the
    property that fails, and the test suite asserts the failure on the paper's
    Figure 1b scenario.
    """
    return a.compare(b) is semantic_compare(a, b)  # type: ignore[arg-type]


def covers(clock: Clock, dots: Iterable[Dot]) -> bool:
    """True iff every given dot is in the clock's denoted causal history."""
    history = denote(clock)
    return all(dot in history for dot in dots)
