"""Version vectors (Parker et al. 1983), the classic compact causality clock.

A version vector (VV) maps each actor ``s_i`` to an integer ``n_i`` and denotes
the causal history ``{(s_i, m) | 1 <= m <= n_i}`` — i.e. a *contiguous* prefix
of every actor's events.  Comparison is component-wise::

    V_a <= V_b  iff  ∀s. V_a[s] <= V_b[s]

which is exactly set inclusion on the denoted histories, but costs O(n) in the
number of entries.  The paper's critique is that storage systems use the same
VV both to *identify* a version and to record its *causal past*; dotted version
vectors (:mod:`repro.core.dvv`) split those roles.

``VersionVector`` is immutable; every mutating operation returns a new vector.
A mutable builder (:class:`VersionVectorBuilder`) is provided for hot paths in
the simulator where building a vector incrementally matters.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from .comparison import Ordering
from .dot import Actor, Dot
from .exceptions import InvalidClockError


class VersionVector:
    """An immutable mapping from actor ids to event counters.

    Missing actors implicitly map to 0 (no events seen from them), so vectors
    over different actor sets compare correctly without padding.
    """

    __slots__ = ("_entries", "_encoded", "_fingerprint")

    def __init__(self, entries: Optional[Mapping[Actor, int]] = None) -> None:
        clean: Dict[Actor, int] = {}
        if entries:
            for actor, counter in entries.items():
                if not isinstance(actor, str) or not actor:
                    raise InvalidClockError(f"actor must be a non-empty string, got {actor!r}")
                if not isinstance(counter, int) or isinstance(counter, bool) or counter < 0:
                    raise InvalidClockError(
                        f"counter for {actor!r} must be a non-negative int, got {counter!r}"
                    )
                if counter > 0:
                    clean[actor] = counter
        object.__setattr__(self, "_entries", clean)
        object.__setattr__(self, "_encoded", None)
        object.__setattr__(self, "_fingerprint", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"VersionVector is immutable; cannot set {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"VersionVector is immutable; cannot delete {name!r}"
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "VersionVector":
        """The zero vector (denotes the empty causal history)."""
        return cls()

    @classmethod
    def from_dots(cls, dots: Iterable[Dot]) -> "VersionVector":
        """Smallest vector whose denotation contains every given dot.

        Note that this *rounds up*: a vector can only represent contiguous
        prefixes, so ``from_dots([Dot("a", 3)])`` also (implicitly) includes
        ``(a,1)`` and ``(a,2)``.  Use :class:`repro.clocks.vve.VersionVectorWithExceptions`
        when gaps must be represented exactly.
        """
        entries: Dict[Actor, int] = {}
        for d in dots:
            entries[d.actor] = max(entries.get(d.actor, 0), d.counter)
        return cls(entries)

    @classmethod
    def single(cls, actor: Actor, counter: int) -> "VersionVector":
        """Vector with a single non-zero entry."""
        return cls({actor: counter})

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def get(self, actor: Actor) -> int:
        """Counter recorded for ``actor`` (0 when absent)."""
        return self._entries.get(actor, 0)

    def __getitem__(self, actor: Actor) -> int:
        return self.get(actor)

    def actors(self) -> FrozenSet[Actor]:
        """Actors with a non-zero entry."""
        return frozenset(self._entries)

    def entries(self) -> Dict[Actor, int]:
        """A copy of the non-zero entries."""
        return dict(self._entries)

    def items(self) -> Iterator[Tuple[Actor, int]]:
        """Iterate over ``(actor, counter)`` pairs in actor order."""
        return iter(sorted(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def total_events(self) -> int:
        """Number of events in the denoted causal history."""
        return sum(self._entries.values())

    def contains_dot(self, dot: Dot) -> bool:
        """True iff ``dot`` is in the causal history denoted by this vector.

        This is the O(1) containment test that makes dotted version vector
        comparison constant-time: ``dot ∈ V  iff  dot.counter <= V[dot.actor]``.
        """
        return dot.counter <= self.get(dot.actor)

    def dots(self) -> Iterator[Dot]:
        """Enumerate every dot in the denoted history (potentially large)."""
        for actor, counter in sorted(self._entries.items()):
            for n in range(1, counter + 1):
                yield Dot(actor, n)

    def max_dot(self, actor: Actor) -> Optional[Dot]:
        """The latest dot of ``actor`` in this vector, or None if absent."""
        counter = self.get(actor)
        if counter == 0:
            return None
        return Dot(actor, counter)

    # ------------------------------------------------------------------ #
    # Events and merging
    # ------------------------------------------------------------------ #
    def increment(self, actor: Actor) -> "VersionVector":
        """Return a new vector with ``actor``'s counter advanced by one."""
        entries = dict(self._entries)
        entries[actor] = entries.get(actor, 0) + 1
        return VersionVector(entries)

    def event(self, actor: Actor) -> Tuple["VersionVector", Dot]:
        """Record a new event at ``actor``; return the new vector and its dot."""
        new = self.increment(actor)
        return new, Dot(actor, new.get(actor))

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum (least upper bound in the vector lattice)."""
        entries = dict(self._entries)
        for actor, counter in other._entries.items():
            if counter > entries.get(actor, 0):
                entries[actor] = counter
        return VersionVector(entries)

    def with_entry(self, actor: Actor, counter: int) -> "VersionVector":
        """Return a copy with ``actor`` set to exactly ``counter``."""
        entries = dict(self._entries)
        if counter <= 0:
            entries.pop(actor, None)
        else:
            entries[actor] = counter
        return VersionVector(entries)

    def without(self, actors: Iterable[Actor]) -> "VersionVector":
        """Return a copy with the given actors' entries removed (used by pruning)."""
        drop = set(actors)
        return VersionVector({a: c for a, c in self._entries.items() if a not in drop})

    def restricted_to(self, actors: Iterable[Actor]) -> "VersionVector":
        """Return a copy keeping only the given actors' entries."""
        keep = set(actors)
        return VersionVector({a: c for a, c in self._entries.items() if a in keep})

    # ------------------------------------------------------------------ #
    # Comparison
    # ------------------------------------------------------------------ #
    def compare(self, other: "VersionVector") -> Ordering:
        """Component-wise causal comparison (O(n) in the number of entries)."""
        at_most = True   # self <= other
        at_least = True  # self >= other
        for actor in self._entries.keys() | other._entries.keys():
            mine = self.get(actor)
            theirs = other.get(actor)
            if mine > theirs:
                at_most = False
            elif mine < theirs:
                at_least = False
            if not at_most and not at_least:
                return Ordering.CONCURRENT
        if at_most and at_least:
            return Ordering.EQUAL
        return Ordering.BEFORE if at_most else Ordering.AFTER

    def descends(self, other: "VersionVector") -> bool:
        """True iff this vector's history includes ``other``'s (>=)."""
        return all(self.get(actor) >= counter for actor, counter in other._entries.items())

    def dominates(self, other: "VersionVector") -> bool:
        """True iff this vector strictly includes ``other``'s history (>)."""
        return self.descends(other) and self._entries != other._entries

    def concurrent_with(self, other: "VersionVector") -> bool:
        """True iff neither vector descends the other."""
        return self.compare(other) is Ordering.CONCURRENT

    # ------------------------------------------------------------------ #
    # Dunder / formatting
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(frozenset(self._entries.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{a!r}: {c}" for a, c in sorted(self._entries.items()))
        return f"VersionVector({{{inner}}})"

    def __str__(self) -> str:
        inner = ", ".join(f"{a}:{c}" for a, c in sorted(self._entries.items()))
        return "[" + inner + "]"


class VersionVectorBuilder:
    """Mutable accumulator for building a :class:`VersionVector` incrementally.

    The immutable vector is convenient for reasoning but allocates on every
    update; hot loops in the simulator (anti-entropy over many keys, workload
    replay) use the builder and call :meth:`freeze` once at the end.
    """

    __slots__ = ("_entries",)

    def __init__(self, initial: Optional[VersionVector] = None) -> None:
        self._entries: Dict[Actor, int] = dict(initial.entries()) if initial else {}

    def observe_dot(self, dot: Dot) -> None:
        """Advance the builder so the dot's actor counter is at least ``dot.counter``."""
        if dot.counter > self._entries.get(dot.actor, 0):
            self._entries[dot.actor] = dot.counter

    def increment(self, actor: Actor) -> Dot:
        """Record a fresh event for ``actor`` and return its dot."""
        counter = self._entries.get(actor, 0) + 1
        self._entries[actor] = counter
        return Dot(actor, counter)

    def merge(self, other: VersionVector) -> None:
        """Pointwise-max merge of another vector into the builder."""
        for actor, counter in other.entries().items():
            if counter > self._entries.get(actor, 0):
                self._entries[actor] = counter

    def get(self, actor: Actor) -> int:
        """Current counter for ``actor``."""
        return self._entries.get(actor, 0)

    def freeze(self) -> VersionVector:
        """Produce the immutable vector described by the builder."""
        return VersionVector(self._entries)
