"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch everything coming out of the package with a single
``except ReproError`` clause while still being able to discriminate more
precisely when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class ClockError(ReproError):
    """Base class for errors involving logical clocks."""


class InvalidDotError(ClockError):
    """A dot (actor, counter) is malformed (e.g. non-positive counter)."""


class InvalidClockError(ClockError):
    """A clock value is structurally invalid or internally inconsistent."""


class IncomparableError(ClockError):
    """Raised when a total order was requested from clocks that are concurrent."""


class ActorMismatchError(ClockError):
    """An operation received clocks belonging to incompatible actor spaces."""


class SerializationError(ReproError):
    """A clock or store value could not be encoded or decoded."""


class StoreError(ReproError):
    """Base class for errors raised by the simulated key-value store."""


class KeyNotFoundError(StoreError):
    """A GET was issued for a key that no replica holds."""


class StaleContextError(StoreError):
    """A PUT carried a causal context that the store cannot interpret."""


class QuorumError(StoreError):
    """A request could not gather the required number of replica replies."""


class NodeDownError(StoreError):
    """A request was routed to a node that is currently unavailable."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulator."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or after the simulation horizon."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters."""


class WorkloadError(ReproError):
    """A workload description or trace is invalid."""


class AnalysisError(ReproError):
    """An analysis step received inconsistent or incomplete run data."""
